//! Figure 5 at micro scale: end-to-end pipeline time of KnightKing, HuGE-D
//! and DistGER on a small Flickr stand-in.

use criterion::{criterion_group, criterion_main, Criterion};
use distger_bench::{bench_dataset, BenchScale};
use distger_core::{run_pipeline, DistGerConfig};
use distger_graph::generate::PaperDataset;
use std::hint::black_box;

fn small(config: DistGerConfig) -> DistGerConfig {
    let mut config = config;
    config.training.dim = 32;
    config.training.epochs = 1;
    config.training.sync_rounds_per_epoch = 2;
    config
}

fn bench_end_to_end(c: &mut Criterion) {
    let graph = bench_dataset(PaperDataset::Flickr, BenchScale::Smoke, 11);
    let mut group = c.benchmark_group("end_to_end_flickr_standin");
    group.sample_size(10);
    group.bench_function("knightking", |b| {
        b.iter(|| black_box(run_pipeline(&graph, &small(DistGerConfig::knightking(4)))))
    });
    group.bench_function("huge_d", |b| {
        b.iter(|| black_box(run_pipeline(&graph, &small(DistGerConfig::huge_d(4)))))
    });
    group.bench_function("distger", |b| {
        b.iter(|| black_box(run_pipeline(&graph, &small(DistGerConfig::distger(4)))))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
