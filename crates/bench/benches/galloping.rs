//! Micro-benchmark for the Galloping intersection used by MPGP (§3.2)
//! against the linear merge, on unbalanced sorted sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distger_graph::intersect::{galloping_intersect_count, merge_intersect_count};
use std::hint::black_box;

fn bench_intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorted_set_intersection");
    group.sample_size(40);
    for &(small, large) in &[(16usize, 4_096usize), (64, 65_536), (256, 65_536)] {
        let a: Vec<u32> = (0..small as u32)
            .map(|i| i * (large as u32 / small as u32))
            .collect();
        let b: Vec<u32> = (0..large as u32).collect();
        let id = format!("{small}x{large}");
        group.bench_with_input(
            BenchmarkId::new("galloping", &id),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(galloping_intersect_count(a, b))),
        );
        group.bench_with_input(
            BenchmarkId::new("merge", &id),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(merge_intersect_count(a, b))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_intersect);
criterion_main!(benches);
