//! Micro-benchmark for §3.1: InCoM's O(1) incremental measurement vs the
//! HuGE-D full-path recomputation, per accepted node, at several walk lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distger_walks::info::{FullPathInfo, IncrementalInfo};
use std::hint::black_box;

fn bench_info(c: &mut Criterion) {
    let mut group = c.benchmark_group("info_measurement_per_walk");
    group.sample_size(30);
    for &len in &[20usize, 80, 320] {
        // A synthetic walk cycling over 16 nodes.
        let walk: Vec<u32> = (0..len as u32).map(|i| i % 16).collect();

        group.bench_with_input(BenchmarkId::new("full_path", len), &walk, |b, walk| {
            b.iter(|| {
                let mut info = FullPathInfo::default();
                for &v in walk {
                    black_box(info.accept(v));
                }
                black_box(info.r_squared())
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", len), &walk, |b, walk| {
            b.iter(|| {
                let mut info = IncrementalInfo::default();
                let mut counts = std::collections::HashMap::new();
                for &v in walk {
                    let prev = counts.get(&v).copied().unwrap_or(0);
                    black_box(info.accept(prev));
                    *counts.entry(v).or_insert(0u64) += 1;
                }
                black_box(info.r_squared())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_info);
criterion_main!(benches);
