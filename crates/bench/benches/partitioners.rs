//! Table 5(a) at micro scale: partitioning time of the streaming
//! partitioners (LDG, FENNEL, MPGP, parallel MPGP) and the workload-balancing
//! scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use distger_bench::{bench_dataset, BenchScale};
use distger_graph::generate::PaperDataset;
use distger_partition::{
    balanced::workload_balanced_partition,
    fennel::{fennel_partition, FennelConfig},
    ldg::ldg_default,
    mpgp_partition, parallel_mpgp_partition, MpgpConfig,
};
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let graph = bench_dataset(PaperDataset::Youtube, BenchScale::Smoke, 5);
    let machines = 4;
    let mut group = c.benchmark_group("partitioners_youtube_standin");
    group.sample_size(10);
    group.bench_function("workload_balanced", |b| {
        b.iter(|| black_box(workload_balanced_partition(&graph, machines)))
    });
    group.bench_function("ldg", |b| {
        b.iter(|| black_box(ldg_default(&graph, machines, 1)))
    });
    group.bench_function("fennel", |b| {
        b.iter(|| {
            black_box(fennel_partition(
                &graph,
                machines,
                FennelConfig::default(),
                1,
            ))
        })
    });
    group.bench_function("mpgp", |b| {
        b.iter(|| black_box(mpgp_partition(&graph, machines, MpgpConfig::default())))
    });
    group.bench_function("mpgp_parallel", |b| {
        b.iter(|| {
            black_box(parallel_mpgp_partition(
                &graph,
                machines,
                4,
                MpgpConfig::parallel_default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
