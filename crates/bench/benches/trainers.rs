//! Figure 10(b) at micro scale: training throughput of SGNS/Hogwild,
//! Pword2vec and DSGL on the same corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use distger_bench::{bench_dataset, BenchScale};
use distger_embed::{train_distributed, TrainerConfig, TrainerKind};
use distger_graph::generate::PaperDataset;
use distger_partition::{mpgp_partition, MpgpConfig};
use distger_walks::{run_distributed_walks, WalkEngineConfig};
use std::hint::black_box;

fn bench_trainers(c: &mut Criterion) {
    let graph = bench_dataset(PaperDataset::Flickr, BenchScale::Smoke, 7);
    let partitioning = mpgp_partition(&graph, 4, MpgpConfig::default());
    let walks = run_distributed_walks(&graph, &partitioning, &WalkEngineConfig::distger());

    let mut group = c.benchmark_group("trainers_flickr_standin_corpus");
    group.sample_size(10);
    for (name, kind) in [
        ("sgns_hogwild", TrainerKind::Hogwild),
        ("pword2vec", TrainerKind::Pword2vec),
        ("dsgl_mw2", TrainerKind::Dsgl { multi_windows: 2 }),
        ("dsgl_mw4", TrainerKind::Dsgl { multi_windows: 4 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = TrainerConfig {
                    dim: 32,
                    epochs: 1,
                    kind,
                    sync_rounds_per_epoch: 1,
                    threads: 2,
                    ..TrainerConfig::default()
                };
                black_box(train_distributed(&walks.corpus, 4, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trainers);
criterion_main!(benches);
