//! Figure 10(a) at micro scale: random-walk time of the routine KnightKing
//! configuration, the HuGE-D full-path baseline, and DistGER's InCoM engine —
//! plus a steps-per-second throughput comparison of the flat frequency store
//! against the retained nested-HashMap reference path, exported to
//! `BENCH_walks.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use distger_bench::{bench_dataset, BenchScale, Report};
use distger_graph::generate::PaperDataset;
use distger_partition::{
    balanced::workload_balanced_partition, mpgp_partition, MpgpConfig, Partitioning,
};
use distger_walks::{
    run_distributed_walks, FreqBackend, WalkCountPolicy, WalkEngineConfig, WalkModel,
};
use std::hint::black_box;
use std::time::Instant;

fn bench_walks(c: &mut Criterion) {
    let graph = bench_dataset(PaperDataset::Flickr, BenchScale::Smoke, 3);
    let balanced = workload_balanced_partition(&graph, 4);
    let mpgp = mpgp_partition(&graph, 4, MpgpConfig::default());

    let mut group = c.benchmark_group("walk_engines_flickr_standin");
    group.sample_size(10);
    group.bench_function("knightking_routine", |b| {
        b.iter(|| {
            black_box(run_distributed_walks(
                &graph,
                &balanced,
                &WalkEngineConfig::knightking_routine(WalkModel::Huge),
            ))
        })
    });
    group.bench_function("huge_d_full_path", |b| {
        b.iter(|| {
            black_box(run_distributed_walks(
                &graph,
                &balanced,
                &WalkEngineConfig::huge_d(),
            ))
        })
    });
    group.bench_function("distger_incom", |b| {
        b.iter(|| {
            black_box(run_distributed_walks(
                &graph,
                &mpgp,
                &WalkEngineConfig::distger(),
            ))
        })
    });
    group.finish();
}

/// Steps-per-second throughput of the InCoM sampler under the two frequency
/// store backends.
///
/// The workload is shaped to expose the store, not the harness: DeepWalk
/// transitions keep the per-step transition cost minimal, a single simulated
/// machine collapses the BSP run to one superstep (so thread-spawn overhead
/// does not drown the per-step work), and the Default-scale Flickr stand-in
/// with several fixed rounds yields hundreds of thousands of steps per run.
fn bench_freq_store_throughput(c: &mut Criterion) {
    let graph = bench_dataset(PaperDataset::Flickr, BenchScale::Default, 3);
    let partitioning = Partitioning::single_machine(graph.num_nodes());
    let backends = [
        ("flat", FreqBackend::Flat),
        ("nested_reference", FreqBackend::NestedReference),
    ];
    let config_for = |backend| {
        let mut config = WalkEngineConfig::distger_general(WalkModel::DeepWalk)
            .with_seed(7)
            .with_freq_backend(backend);
        config.walks_per_node = WalkCountPolicy::Fixed(5);
        config
    };

    let mut group = c.benchmark_group("freq_store_steps_per_sec");
    group.sample_size(10);
    for (label, backend) in backends {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(run_distributed_walks(
                    &graph,
                    &partitioning,
                    &config_for(backend),
                ))
            })
        });
    }
    group.finish();

    // Timed steps/sec measurement exported for the repo's records. Best of
    // `reps` runs per backend to suppress scheduler noise.
    let reps = 5;
    let mut report = Report::new(
        "bench_walks",
        "InCoM sampler throughput: flat vs nested-HashMap frequency store",
        &["steps_per_sec", "total_steps", "best_secs"],
    );
    let mut per_backend = Vec::new();
    for (label, backend) in backends {
        let config = config_for(backend);
        let mut best_secs = f64::INFINITY;
        let mut total_steps = 0u64;
        for _ in 0..reps {
            let start = Instant::now();
            let result = black_box(run_distributed_walks(&graph, &partitioning, &config));
            let secs = start.elapsed().as_secs_f64();
            // Keep (time, steps) as a pair from the same rep so the ratio
            // stays meaningful even if the config ever turns nondeterministic.
            if secs < best_secs {
                best_secs = secs;
                total_steps = result.comm.total_steps();
            }
        }
        let steps_per_sec = total_steps as f64 / best_secs;
        println!(
            "freq_store_throughput/{label}: {steps_per_sec:.0} steps/s \
             ({total_steps} steps in {best_secs:.4}s best of {reps})"
        );
        report.push(label, vec![steps_per_sec, total_steps as f64, best_secs]);
        per_backend.push((label, steps_per_sec));
    }
    if let [(_, flat), (_, nested)] = per_backend[..] {
        println!(
            "freq_store_throughput: flat/nested speedup = {:.2}x",
            flat / nested
        );
    }
    // Benches run with the package directory as cwd; anchor the report at
    // the workspace root.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_walks.json");
    std::fs::write(&out, report.to_json().to_string_pretty()).expect("write BENCH_walks.json");
    println!("{}", report.to_text());
}

criterion_group!(benches, bench_walks, bench_freq_store_throughput);
criterion_main!(benches);
