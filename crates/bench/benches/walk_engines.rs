//! Figure 10(a) at micro scale: random-walk time of the routine KnightKing
//! configuration, the HuGE-D full-path baseline, and DistGER's InCoM engine.

use criterion::{criterion_group, criterion_main, Criterion};
use distger_bench::{bench_dataset, BenchScale};
use distger_graph::generate::PaperDataset;
use distger_partition::{balanced::workload_balanced_partition, mpgp_partition, MpgpConfig};
use distger_walks::{run_distributed_walks, WalkEngineConfig, WalkModel};
use std::hint::black_box;

fn bench_walks(c: &mut Criterion) {
    let graph = bench_dataset(PaperDataset::Flickr, BenchScale::Smoke, 3);
    let balanced = workload_balanced_partition(&graph, 4);
    let mpgp = mpgp_partition(&graph, 4, MpgpConfig::default());

    let mut group = c.benchmark_group("walk_engines_flickr_standin");
    group.sample_size(10);
    group.bench_function("knightking_routine", |b| {
        b.iter(|| {
            black_box(run_distributed_walks(
                &graph,
                &balanced,
                &WalkEngineConfig::knightking_routine(WalkModel::Huge),
            ))
        })
    });
    group.bench_function("huge_d_full_path", |b| {
        b.iter(|| {
            black_box(run_distributed_walks(
                &graph,
                &balanced,
                &WalkEngineConfig::huge_d(),
            ))
        })
    });
    group.bench_function("distger_incom", |b| {
        b.iter(|| {
            black_box(run_distributed_walks(
                &graph,
                &mpgp,
                &WalkEngineConfig::distger(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
