//! Figure 10(a) at micro scale: random-walk time of the routine KnightKing
//! configuration, the HuGE-D full-path baseline, and DistGER's InCoM engine —
//! plus steps-per-second throughput comparisons of the optimized hot-path
//! implementations against their retained reference paths (flat vs
//! nested-HashMap frequency store; alias-table vs linear-scan transition
//! sampling; run-scoped round loop vs per-round worker pool vs
//! spawn-per-superstep BSP execution)
//! and the serving layer's top-k query throughput (multi-probe LSH vs the
//! exact scan, with LSH recall@10 against the exact ground truth), exported
//! together to `BENCH_walks.json`. Every `*_speedup` report row is enforced
//! by the CI regression gate against `crates/bench/baselines.json` (see
//! `distger_bench::gate`).

use criterion::{criterion_group, criterion_main, Criterion};
use distger_bench::json::{object, Value};
use distger_bench::{bench_dataset, BenchScale, Report};
use distger_cluster::{machine_split, InMemoryTransport, SocketTransport};
use distger_eval::recall_at_k;
use distger_graph::generate::PaperDataset;
use distger_graph::{barabasi_albert, CsrGraph};
use distger_partition::{
    balanced::workload_balanced_partition, mpgp_partition, MpgpConfig, Partitioning,
};
use distger_serve::{
    gaussian_clusters, merge_topk, receive_shard, serve_shard, BatchPolicy, EmbeddingIndex,
    EngineShard, QueryBackend, QueryBatch, QueryEngine, Scheduler, SchedulerConfig, SchedulerStats,
    ServeConfig, ShardedQueryEngine, TopK,
};
use distger_walks::{
    run_distributed_walks, run_walks_over, run_walks_over_loopback, CheckpointPolicy,
    ExecutionBackend, FreqBackend, LengthPolicy, SamplingBackend, WalkCountPolicy,
    WalkEngineConfig, WalkModel, WalkResult,
};
use std::hint::black_box;
use std::time::Instant;

fn bench_walks(c: &mut Criterion) {
    let graph = bench_dataset(PaperDataset::Flickr, BenchScale::Smoke, 3);
    let balanced = workload_balanced_partition(&graph, 4);
    let mpgp = mpgp_partition(&graph, 4, MpgpConfig::default());

    let mut group = c.benchmark_group("walk_engines_flickr_standin");
    group.sample_size(10);
    group.bench_function("knightking_routine", |b| {
        b.iter(|| {
            black_box(run_distributed_walks(
                &graph,
                &balanced,
                &WalkEngineConfig::knightking_routine(WalkModel::Huge),
            ))
        })
    });
    group.bench_function("huge_d_full_path", |b| {
        b.iter(|| {
            black_box(run_distributed_walks(
                &graph,
                &balanced,
                &WalkEngineConfig::huge_d(),
            ))
        })
    });
    group.bench_function("distger_incom", |b| {
        b.iter(|| {
            black_box(run_distributed_walks(
                &graph,
                &mpgp,
                &WalkEngineConfig::distger(),
            ))
        })
    });
    group.finish();
}

/// Steps-per-second throughput of the InCoM sampler under the two frequency
/// store backends.
///
/// The workload is shaped to expose the store, not the harness: DeepWalk
/// transitions keep the per-step transition cost minimal, a single simulated
/// machine collapses the BSP run to one superstep (so thread-spawn overhead
/// does not drown the per-step work), and the Default-scale Flickr stand-in
/// with several fixed rounds yields hundreds of thousands of steps per run.
fn bench_freq_store_throughput(c: &mut Criterion) {
    let graph = freq_bench_graph();
    let partitioning = Partitioning::single_machine(graph.num_nodes());
    let mut group = c.benchmark_group("freq_store_steps_per_sec");
    group.sample_size(10);
    for (label, backend) in FREQ_BACKENDS {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(run_distributed_walks(
                    graph,
                    &partitioning,
                    &freq_store_config(backend),
                ))
            })
        });
    }
    group.finish();
}

/// Steps-per-second throughput of the transition draw under the two
/// sampling backends, on the skewed-weight Barabási–Albert graph where the
/// reference linear scan is at its worst (hub-heavy degrees, full-adjacency
/// weight sums every step).
fn bench_transition_sampling(c: &mut Criterion) {
    let (_, weighted) = sampling_bench_graphs();
    let partitioning = Partitioning::single_machine(weighted.num_nodes());
    let mut group = c.benchmark_group("transition_sampling_steps_per_sec");
    group.sample_size(10);
    for (label, backend) in SAMPLING_BACKENDS {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(run_distributed_walks(
                    weighted,
                    &partitioning,
                    &sampling_config(backend),
                ))
            })
        });
    }
    group.finish();
}

/// Superstep-coordination overhead of the two execution backends in the
/// many-small-rounds regime the worker pool exists for: many machines, short
/// fixed-length walks, several rounds — each superstep carries only a few
/// hundred walker steps per machine, so per-superstep thread spawn/join
/// dominates the reference backend.
fn bench_execution_backends(c: &mut Criterion) {
    let (graph, partitioning) = small_rounds_workload();
    let mut group = c.benchmark_group("execution_backend_steps_per_sec");
    group.sample_size(10);
    for (label, backend) in EXECUTION_BACKENDS {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(run_distributed_walks(
                    graph,
                    partitioning,
                    &small_rounds_config(backend),
                ))
            })
        });
    }
    group.finish();
}

/// Batched top-k query throughput of the serving layer's two backends on the
/// Gaussian-cluster fixture — exact brute-force scan vs multi-probe LSH with
/// exact re-rank (both fanned out over the same worker pool).
fn bench_query_backends(c: &mut Criterion) {
    let (index, batch) = query_workload();
    let mut group = c.benchmark_group("query_backend_qps");
    group.sample_size(10);
    for (label, backend) in QUERY_BACKENDS {
        let engine = QueryEngine::new(index.clone(), query_config(backend));
        group.bench_function(label, |b| b.iter(|| black_box(engine.top_k(batch))));
    }
    group.finish();
}

const QUERY_BACKENDS: [(&str, QueryBackend); 2] =
    [("exact", QueryBackend::Exact), ("lsh", QueryBackend::Lsh)];

/// Top-10 on 4 worker threads. The LSH signature scheme is tuned for the
/// 20k-node fixture: 14-bit signatures keep same-cluster nodes colliding,
/// 10 Hamming-1 probes recover the marginal ones — measured ~10x exact QPS
/// at recall@10 ≈ 0.97 (the gate floors sit well below both).
fn query_config(backend: QueryBackend) -> ServeConfig {
    ServeConfig {
        backend,
        k: 10,
        threads: 4,
        lsh: distger_serve::LshConfig {
            bits: 14,
            probes: 10,
            ..distger_serve::LshConfig::default()
        },
    }
}

/// The serving bench fixture, shared by the criterion group and the JSON
/// export: 20k nodes in 64 dims across 40 Gaussian clusters (σ = 0.08 noise
/// around unit centers keeps within-cluster angles small enough that a
/// query's true top-10 are cluster mates — the regime LSH recall is
/// meaningful in), queried with 250 node vectors spread across every
/// cluster.
fn query_workload() -> &'static (EmbeddingIndex, QueryBatch) {
    static WORKLOAD: std::sync::OnceLock<(EmbeddingIndex, QueryBatch)> = std::sync::OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let index = EmbeddingIndex::build(&gaussian_clusters(20_000, 64, 40, 0.08, 97));
        let nodes: Vec<u32> = (0..index.num_nodes() as u32).step_by(80).collect();
        let batch = QueryBatch::from_nodes(&index, &nodes);
        (index, batch)
    })
}

const FREQ_BACKENDS: [(&str, FreqBackend); 2] = [
    ("flat", FreqBackend::Flat),
    ("nested_reference", FreqBackend::NestedReference),
];

const SAMPLING_BACKENDS: [(&str, SamplingBackend); 2] = [
    ("alias", SamplingBackend::Alias),
    ("linear_scan", SamplingBackend::LinearScan),
];

const EXECUTION_BACKENDS: [(&str, ExecutionBackend); 3] = [
    ("round_loop", ExecutionBackend::RoundLoop),
    ("pool", ExecutionBackend::Pool),
    ("spawn_per_step", ExecutionBackend::SpawnPerStep),
];

fn freq_store_config(backend: FreqBackend) -> WalkEngineConfig {
    let mut config = WalkEngineConfig::distger_general(WalkModel::DeepWalk)
        .with_seed(7)
        .with_freq_backend(backend);
    config.walks_per_node = WalkCountPolicy::Fixed(5);
    config
}

/// Routine DeepWalk on a single machine: no measurement, no messages — the
/// per-step cost is almost entirely the neighbour draw under test.
fn sampling_config(backend: SamplingBackend) -> WalkEngineConfig {
    let mut config = WalkEngineConfig::knightking_routine(WalkModel::DeepWalk)
        .with_seed(13)
        .with_sampling_backend(backend);
    config.length = LengthPolicy::Fixed(80);
    config.walks_per_node = WalkCountPolicy::Fixed(3);
    config
}

/// A hub-heavy Barabási–Albert graph, unweighted and with Pareto(1.5)
/// weights, built once and shared by the criterion group and the JSON export.
/// The scan's expected per-step cost is `E[deg²]/E[deg]`, which the BA degree
/// tail makes much larger than the mean degree.
fn sampling_bench_graphs() -> &'static (CsrGraph, CsrGraph) {
    static GRAPHS: std::sync::OnceLock<(CsrGraph, CsrGraph)> = std::sync::OnceLock::new();
    GRAPHS.get_or_init(|| {
        let unweighted = barabasi_albert(4_000, 16, 11);
        let weighted = unweighted.with_skewed_weights(1.5, 11);
        (unweighted, weighted)
    })
}

/// The Default-scale Flickr stand-in shared by the frequency-store criterion
/// group and the JSON export.
fn freq_bench_graph() -> &'static CsrGraph {
    static GRAPH: std::sync::OnceLock<CsrGraph> = std::sync::OnceLock::new();
    GRAPH.get_or_init(|| bench_dataset(PaperDataset::Flickr, BenchScale::Default, 3))
}

/// Routine DeepWalk with short walks (`L = 8`) and many rounds (`r = 12`)
/// over 8 machines: with a workload-balanced partition most steps hop
/// machines, so each round runs ~8 supersteps of ~250 walkers per machine —
/// the many-short-rounds regime DistGER's early termination produces, where
/// per-superstep thread spawning dominates `spawn_per_step` and per-round
/// pool setup/teardown (8 spawns + joins × 12 rounds) is what the
/// run-scoped `round_loop` eliminates.
fn small_rounds_config(execution: ExecutionBackend) -> WalkEngineConfig {
    let mut config = WalkEngineConfig::knightking_routine(WalkModel::DeepWalk)
        .with_seed(29)
        .with_execution_backend(execution);
    config.length = LengthPolicy::Fixed(8);
    config.walks_per_node = WalkCountPolicy::Fixed(12);
    config
}

/// The graph and 8-machine partition shared by the execution-backend
/// criterion group and the JSON export.
fn small_rounds_workload() -> &'static (CsrGraph, Partitioning) {
    static WORKLOAD: std::sync::OnceLock<(CsrGraph, Partitioning)> = std::sync::OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let graph = barabasi_albert(2_000, 8, 19);
        let partitioning = workload_balanced_partition(&graph, 8);
        (graph, partitioning)
    })
}

/// Best-of-`reps` timed run; returns `(best_secs, result_of_best_rep)`.
fn best_of(
    reps: usize,
    graph: &CsrGraph,
    partitioning: &Partitioning,
    config: &WalkEngineConfig,
) -> (f64, WalkResult) {
    let mut best: Option<(f64, WalkResult)> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let result = black_box(run_distributed_walks(graph, partitioning, config));
        let secs = start.elapsed().as_secs_f64();
        // Keep (time, result) as a pair from the same rep so derived ratios
        // stay meaningful even if the config ever turns nondeterministic.
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, result));
        }
    }
    best.expect("reps >= 1")
}

/// Timed steps/sec measurements exported for the repo's records
/// (`BENCH_walks.json`): the frequency-store comparison from PR 1 and the
/// alias-vs-linear transition-sampling comparison, on both an unweighted and
/// a skewed-weight Barabási–Albert graph.
fn export_reports(_c: &mut Criterion) {
    let reps = 5;

    // Part 1: flat vs nested frequency store (InCoM measurement path).
    let graph = freq_bench_graph();
    let partitioning = Partitioning::single_machine(graph.num_nodes());
    let mut freq_report = Report::new(
        "freq_store",
        "InCoM sampler throughput: flat vs nested-HashMap frequency store",
        &["steps_per_sec", "total_steps", "best_secs"],
    );
    let mut freq_speedup_report = Report::new(
        "freq_store_speedup",
        "Flat-over-nested steps/sec ratio",
        &["flat_over_nested"],
    );
    let mut freq_rates = Vec::new();
    for (label, backend) in FREQ_BACKENDS {
        let (best_secs, result) = best_of(reps, graph, &partitioning, &freq_store_config(backend));
        let total_steps = result.comm.total_steps();
        let steps_per_sec = total_steps as f64 / best_secs;
        println!(
            "freq_store_throughput/{label}: {steps_per_sec:.0} steps/s \
             ({total_steps} steps in {best_secs:.4}s best of {reps})"
        );
        freq_report.push(label, vec![steps_per_sec, total_steps as f64, best_secs]);
        freq_rates.push(steps_per_sec);
    }
    if let [flat, nested] = freq_rates[..] {
        println!(
            "freq_store_throughput: flat/nested speedup = {:.2}x",
            flat / nested
        );
        freq_speedup_report.push("flat_over_nested", vec![flat / nested]);
    }

    // Part 2: alias tables vs linear scan (transition draw).
    let (unweighted, weighted) = sampling_bench_graphs();
    let partitioning = Partitioning::single_machine(unweighted.num_nodes());
    let mut sampling_report = Report::new(
        "transition_sampling",
        "Transition-draw throughput: alias tables vs linear scan \
         (Barabási–Albert n=4000 m=16, Pareto(1.5) weights)",
        &[
            "steps_per_sec",
            "total_steps",
            "best_secs",
            "table_build_secs",
            "table_bytes",
        ],
    );
    let mut speedup_report = Report::new(
        "transition_sampling_speedup",
        "Alias-over-linear steps/sec ratio per graph",
        &["alias_over_linear"],
    );
    for (graph_label, g) in [("unweighted_ba", unweighted), ("skewed_ba", weighted)] {
        let mut rates = Vec::new();
        for (label, backend) in SAMPLING_BACKENDS {
            let (best_secs, result) = best_of(reps, g, &partitioning, &sampling_config(backend));
            let total_steps = result.comm.total_steps();
            // The run times the whole engine including the one-time table
            // construction; subtract it so `steps_per_sec` measures the draw
            // throughput the column claims (the build cost is reported
            // separately in `table_build_secs`).
            let draw_secs = (best_secs - result.alias_build_secs).max(f64::EPSILON);
            let steps_per_sec = total_steps as f64 / draw_secs;
            println!(
                "transition_sampling/{label}@{graph_label}: {steps_per_sec:.0} steps/s \
                 ({total_steps} steps in {best_secs:.4}s, table {} bytes built in {:.4}s)",
                result.alias_table_bytes, result.alias_build_secs
            );
            sampling_report.push(
                format!("{label}@{graph_label}"),
                vec![
                    steps_per_sec,
                    total_steps as f64,
                    best_secs,
                    result.alias_build_secs,
                    result.alias_table_bytes as f64,
                ],
            );
            rates.push(steps_per_sec);
        }
        if let [alias, linear] = rates[..] {
            println!(
                "transition_sampling@{graph_label}: alias/linear speedup = {:.2}x",
                alias / linear
            );
            speedup_report.push(graph_label, vec![alias / linear]);
        }
    }

    // Part 3: the three execution backends — run-scoped round loop,
    // per-round worker pool, spawn-per-superstep — end-to-end walk
    // throughput on the many-small-rounds workload. `sync_secs` is the
    // engine's own superstep-overhead accounting (the quantity the pools
    // shrink) and `thread_spawns` the run's thread-spawn count (the
    // quantity the round loop collapses from machines × rounds to
    // machines).
    let (graph, partitioning) = small_rounds_workload();
    let mut execution_report = Report::new(
        "execution_backend",
        "End-to-end walk throughput: run-scoped round loop vs per-round worker pool vs \
         spawn-per-superstep (Barabási–Albert n=2000 m=8, 8 machines, L=8, r=12)",
        &[
            "steps_per_sec",
            "total_steps",
            "best_secs",
            "sync_secs",
            "thread_spawns",
        ],
    );
    let mut execution_speedup_report = Report::new(
        "execution_backend_speedup",
        "Pool-over-spawn end-to-end walk throughput ratio on many small supersteps",
        &["pool_over_spawn"],
    );
    let mut round_loop_speedup_report = Report::new(
        "round_loop_speedup",
        "Run-scoped round loop end-to-end walk throughput ratio over the per-round \
         references (thread spawns per run: machines vs machines x rounds)",
        &["round_loop_over_reference"],
    );
    let mut rates = Vec::new();
    for (label, backend) in EXECUTION_BACKENDS {
        let (best_secs, result) = best_of(reps, graph, partitioning, &small_rounds_config(backend));
        let total_steps = result.comm.total_steps();
        let steps_per_sec = total_steps as f64 / best_secs;
        println!(
            "execution_backend/{label}: {steps_per_sec:.0} steps/s \
             ({total_steps} steps in {best_secs:.4}s, {:.4}s superstep sync overhead, \
             {} thread spawns)",
            result.superstep_sync_secs, result.pool_spawn_count
        );
        execution_report.push(
            label,
            vec![
                steps_per_sec,
                total_steps as f64,
                best_secs,
                result.superstep_sync_secs,
                result.pool_spawn_count as f64,
            ],
        );
        rates.push(steps_per_sec);
    }
    if let [round_loop, pool, spawn] = rates[..] {
        println!(
            "execution_backend: pool/spawn speedup = {:.2}x, \
             round_loop/pool = {:.2}x, round_loop/spawn = {:.2}x",
            pool / spawn,
            round_loop / pool,
            round_loop / spawn
        );
        execution_speedup_report.push("small_rounds", vec![pool / spawn]);
        round_loop_speedup_report.push("over_per_round_pool", vec![round_loop / pool]);
        round_loop_speedup_report.push("over_spawn_per_step", vec![round_loop / spawn]);
    }

    // Part 4: the serving layer — batched top-k query throughput of the
    // exact scan vs multi-probe LSH, plus LSH recall@10 against the exact
    // ground truth. Both rows of the speedup report are gated: the QPS
    // advantage is what the LSH complexity buys, and recall is the quality
    // it must not buy it with.
    let (index, batch) = query_workload();
    let k = query_config(QueryBackend::Exact).k;
    let mut query_report = Report::new(
        "query_throughput",
        "Top-10 query throughput: exact scan vs multi-probe LSH \
         (20k nodes x 64 dims, 40 Gaussian clusters, 250-query batches, 4 threads)",
        &[
            "qps",
            "queries",
            "best_secs",
            "candidate_cpu_secs",
            "rerank_cpu_secs",
            "candidates_scored",
            "recall_at_10",
        ],
    );
    let mut query_speedup_report = Report::new(
        "query_backend_speedup",
        "LSH-over-exact QPS ratio and LSH recall@10 vs the exact ground truth",
        &["value"],
    );
    let mut query_rates = Vec::new();
    let mut backend_results: Vec<Vec<TopK>> = Vec::new();
    for (label, backend) in QUERY_BACKENDS {
        let engine = QueryEngine::new(index.clone(), query_config(backend));
        let mut best: Option<(f64, distger_serve::BatchResults)> = None;
        for _ in 0..reps {
            let started = Instant::now();
            let out = black_box(engine.top_k(batch));
            let secs = started.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(b, _)| secs < *b) {
                best = Some((secs, out));
            }
        }
        let (best_secs, out) = best.expect("reps >= 1");
        backend_results.push(out.results);
        let qps = batch.len() as f64 / best_secs;
        println!(
            "query_throughput/{label}: {qps:.0} queries/s \
             ({} queries in {best_secs:.4}s best of {reps}, {} candidates scored)",
            batch.len(),
            out.stats.candidates_scored
        );
        query_report.push(
            label,
            vec![
                qps,
                batch.len() as f64,
                best_secs,
                out.stats.candidate_secs,
                out.stats.rerank_secs,
                out.stats.candidates_scored as f64,
                f64::NAN, // recall column patched below once both backends ran
            ],
        );
        query_rates.push(qps);
    }
    let recall = recall_at_k(&backend_results[0], &backend_results[1]);
    for (row, value) in query_report.rows.iter_mut().zip([1.0, recall]) {
        *row.values.last_mut().expect("recall column") = value;
    }
    if let [exact, lsh] = query_rates[..] {
        println!(
            "query_throughput: lsh/exact speedup = {:.2}x at recall@{k} {recall:.3}",
            lsh / exact
        );
        query_speedup_report.push("lsh_over_exact_qps", vec![lsh / exact]);
        query_speedup_report.push("lsh_recall_at_10", vec![recall]);
    }

    // Part 5: fault-tolerance overhead — the round-loop walk engine with an
    // every-round checkpoint policy vs the plain fault-free run, on the same
    // many-small-rounds workload as Part 3 (many rounds means many
    // checkpoints: the worst case for the policy). `checkpoint_secs` and
    // `checkpoint_bytes` are the engine's own accounting of the snapshot
    // cost. The gated ratio row follows the `lsh_recall_at_10` idiom: a 1.06
    // floor under the 15% tolerance makes the *effective* floor 0.90 — i.e.
    // every-round checkpointing must cost at most 10% of the fault-free
    // throughput, which is the robustness PR's acceptance contract.
    let (graph, partitioning) = small_rounds_workload();
    let mut checkpoint_report = Report::new(
        "checkpoint_overhead",
        "Walk throughput with round-granular checkpointing (every round) vs fault-free \
         (Barabási–Albert n=2000 m=8, 8 machines, L=8, r=12)",
        &[
            "steps_per_sec",
            "total_steps",
            "best_secs",
            "checkpoint_secs",
            "checkpoint_bytes",
        ],
    );
    let mut checkpoint_speedup_report = Report::new(
        "checkpoint_overhead_speedup",
        "Checkpointed-over-fault-free walk throughput ratio (>= 0.90 effective floor: \
         every-round snapshots may cost at most 10%)",
        &["checkpointed_over_fault_free"],
    );
    let base_config = small_rounds_config(ExecutionBackend::RoundLoop);
    let checkpointed_config = base_config.with_checkpoint_policy(CheckpointPolicy::every(1));
    // The two configs run the identical walk and differ by ~1 ms of snapshot
    // encoding on a ~17 ms run, so the ratio is noise-sensitive: reps are
    // interleaved (fault-free, checkpointed, fault-free, ...) at triple the
    // usual count so both sides sample the same machine-load phases and
    // reliably reach their floor times.
    let checkpoint_configs = [
        ("fault_free", &base_config),
        ("checkpointed", &checkpointed_config),
    ];
    let mut checkpoint_best: [Option<(f64, WalkResult)>; 2] = [None, None];
    for _ in 0..3 * reps {
        for (slot, (_, config)) in checkpoint_configs.iter().enumerate() {
            let start = Instant::now();
            let result = black_box(run_distributed_walks(graph, partitioning, config));
            let secs = start.elapsed().as_secs_f64();
            if checkpoint_best[slot]
                .as_ref()
                .is_none_or(|(best, _)| secs < *best)
            {
                checkpoint_best[slot] = Some((secs, result));
            }
        }
    }
    let mut checkpoint_rates = Vec::new();
    for ((label, _), slot) in checkpoint_configs.into_iter().zip(checkpoint_best) {
        let (best_secs, result) = slot.expect("reps >= 1");
        let total_steps = result.comm.total_steps();
        let steps_per_sec = total_steps as f64 / best_secs;
        println!(
            "checkpoint_overhead/{label}: {steps_per_sec:.0} steps/s \
             ({total_steps} steps in {best_secs:.4}s, {:.4}s checkpointing, \
             {} checkpoint bytes)",
            result.checkpoint_secs, result.checkpoint_bytes
        );
        checkpoint_report.push(
            label,
            vec![
                steps_per_sec,
                total_steps as f64,
                best_secs,
                result.checkpoint_secs,
                result.checkpoint_bytes as f64,
            ],
        );
        checkpoint_rates.push(steps_per_sec);
    }
    if let [fault_free, checkpointed] = checkpoint_rates[..] {
        println!(
            "checkpoint_overhead: checkpointed/fault_free = {:.3}x \
             ({:.1}% overhead at an every-round policy)",
            checkpointed / fault_free,
            (1.0 - checkpointed / fault_free) * 100.0
        );
        checkpoint_speedup_report.push(
            "checkpointed_over_fault_free",
            vec![checkpointed / fault_free],
        );
    }

    // Part 6: the serving front door — N closed-loop callers submitting
    // single queries through the dynamic-batching scheduler, vs the serial
    // one-query-at-a-time reference (`top_k_one` in a loop, which is what a
    // caller without the scheduler would do). Three reports: absolute
    // concurrent QPS (gated — the serving capacity contract), the
    // scheduled-over-serial ratio (gated with the checkpoint-overhead idiom:
    // on a single-core runner batching cannot beat a serial loop by much,
    // so the contract is that the dispatcher + batching machinery costs at
    // most ~20% of raw serial throughput — on multicore it wins outright),
    // and the p99-under-SLO headroom (gated as
    // `slo / p99` so bigger-is-better holds — the tail-latency contract).
    // `serve_latency` itself is informational: the full latency/batch-size
    // picture behind those gates.
    let (index, _) = query_workload();
    let serve_queries: Vec<u32> = (0..index.num_nodes() as u32).step_by(80).collect();
    let scheduler_policy = BatchPolicy {
        max_batch: 64,
        max_delay: std::time::Duration::from_micros(300),
    };
    // Enough closed-loop callers that batches actually fill: below ~16
    // concurrent callers the average batch stays tiny and the per-batch
    // pool fan-out overhead eats the batching win.
    let serve_callers = 32usize;
    let queries_per_caller = 100usize;

    let serial_engine = QueryEngine::new(index.clone(), query_config(QueryBackend::Lsh));
    let mut serial_best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        for &node in &serve_queries {
            black_box(serial_engine.top_k_one(index.unit_vector(node)));
        }
        serial_best = serial_best.min(started.elapsed().as_secs_f64());
    }
    // The `QueryStats::qps` contract, enforced here too: a non-positive
    // wall time is a degenerate measurement, not a 0-QPS data point.
    assert!(
        serial_best > 0.0,
        "degenerate serve bench: zero serial wall time"
    );
    let serial_qps = serve_queries.len() as f64 / serial_best;

    let mut serve_best: Option<(f64, SchedulerStats)> = None;
    for _ in 0..3 {
        // A fresh scheduler per rep so each rep's stats cover exactly one
        // run (the engine build is outside the timed window).
        let engine = QueryEngine::new(index.clone(), query_config(QueryBackend::Lsh));
        let scheduler = Scheduler::new(
            engine,
            SchedulerConfig::default()
                .with_batch(scheduler_policy)
                .with_max_inflight(8192),
        );
        let started = Instant::now();
        std::thread::scope(|scope| {
            for caller in 0..serve_callers {
                let client = scheduler.client();
                let queries = &serve_queries;
                scope.spawn(move || {
                    for i in 0..queries_per_caller {
                        let node = queries[(caller * 31 + i * 7) % queries.len()];
                        let answer = client
                            .submit(index.unit_vector(node))
                            .expect("max_inflight not reached")
                            .wait()
                            .expect("scheduler alive");
                        black_box(answer);
                    }
                });
            }
        });
        let secs = started.elapsed().as_secs_f64();
        if serve_best.as_ref().is_none_or(|(best, _)| secs < *best) {
            serve_best = Some((secs, scheduler.stats()));
        }
    }
    let (serve_secs, serve_stats) = serve_best.expect("reps >= 1");
    assert!(
        serve_secs > 0.0,
        "degenerate serve bench: zero concurrent wall time"
    );
    let total_served = (serve_callers * queries_per_caller) as f64;
    assert_eq!(
        serve_stats.completed + serve_stats.cache_hits,
        total_served as u64
    );
    assert_eq!(
        serve_stats.shed, 0,
        "bench must not shed at max_inflight 8192"
    );
    let concurrent_qps = total_served / serve_secs;
    let p50_ms = serve_stats.latency_quantile(0.50).as_secs_f64() * 1e3;
    let p95_ms = serve_stats.latency_quantile(0.95).as_secs_f64() * 1e3;
    let p99_ms = serve_stats.latency_quantile(0.99).as_secs_f64() * 1e3;
    let max_ms = serve_stats.latency.max() as f64 / 1e6;
    const SLO_MS: f64 = 50.0;
    let slo_headroom = SLO_MS / p99_ms.max(f64::EPSILON);
    println!(
        "serve_concurrent/callers_{serve_callers}: {concurrent_qps:.0} qps \
         ({total_served:.0} queries in {serve_secs:.4}s best of 3, \
         p50 {p50_ms:.2}ms p95 {p95_ms:.2}ms p99 {p99_ms:.2}ms, \
         avg batch {:.1} over {} batches)",
        serve_stats.avg_batch(),
        serve_stats.batches
    );
    println!(
        "serve_concurrent: scheduled/serial qps = {:.2}x \
         (serial {serial_qps:.0} qps), p99 SLO headroom = {slo_headroom:.1}x of {SLO_MS}ms",
        concurrent_qps / serial_qps
    );

    let mut serve_latency_report = Report::new(
        "serve_latency",
        "Scheduler request latency and batching under 32 closed-loop callers \
         (LSH top-10, max_batch 64, max_delay 300us; quantiles are log2-bucket \
         upper bounds)",
        &[
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
            "avg_batch",
            "batches",
            "shed",
        ],
    );
    serve_latency_report.push(
        format!("callers_{serve_callers}"),
        vec![
            p50_ms,
            p95_ms,
            p99_ms,
            max_ms,
            serve_stats.avg_batch(),
            serve_stats.batches as f64,
            serve_stats.shed as f64,
        ],
    );
    let mut serve_qps_report = Report::new(
        "serve_concurrent_qps",
        "Concurrent serving throughput through the dynamic-batching scheduler \
         (32 closed-loop callers x 100 queries, LSH top-10)",
        &["qps", "queries", "best_secs"],
    );
    serve_qps_report.push(
        format!("callers_{serve_callers}"),
        vec![concurrent_qps, total_served, serve_secs],
    );
    let mut serve_speedup_report = Report::new(
        "serve_scheduler_speedup",
        "Scheduled-concurrent over serial one-at-a-time QPS ratio \
         (>= 0.80 effective floor: the dispatcher and batching machinery may \
         cost at most ~20% vs top_k_one in a loop — on multicore runners the \
         engine fan-out makes this a win, on single-core it is a wash)",
        &["scheduled_over_serial"],
    );
    serve_speedup_report.push(
        "scheduled_over_serial_qps",
        vec![concurrent_qps / serial_qps],
    );
    let mut serve_slo_report = Report::new(
        "serve_latency_slo",
        "p99 latency headroom under the 50ms serving SLO (slo / p99, so the \
         gate's bigger-is-better contract holds; 1.0 = exactly at the SLO)",
        &["headroom", "p99_ms", "slo_ms"],
    );
    serve_slo_report.push("p99_under_50ms_slo", vec![slo_headroom, p99_ms, SLO_MS]);

    // Part 7: the transport layer — the Transport-threaded round loop vs the
    // in-process engine it re-arranges, on the same many-small-rounds
    // workload as Parts 3 and 5. Three rows: the classic in-process engine
    // (`run_distributed_walks`), the same job driven through an
    // `InMemoryTransport` (`run_walks_over` — the abstraction cost in
    // isolation, no sockets), and a 4-endpoint loopback-TCP run (real
    // frames, real sockets, one process). The gated ratio follows the
    // serve-scheduler idiom — interleaved reps, 0.94 floor, effective 0.80
    // under the 15% tolerance: the Transport driver hosts its machines
    // sequentially and pays the round-harvest codec it shares with the
    // socket path, so against the 8-thread in-process engine it records
    // 0.88-0.93x, and the contract is that the whole abstraction stack may
    // cost at most ~20%. The socket rows also
    // carry the measured wire traffic, checked here against the analytic
    // `CommStats` byte estimate: the two must agree within an order of
    // magnitude, or the simulated cluster's network model is pricing a
    // fiction.
    let mut transport_report = Report::new(
        "transport_overhead",
        "Walk throughput of the in-process engine vs the Transport-threaded \
         round loop, in-memory and over loopback TCP with 4 worker processes' \
         worth of endpoints (Barabási–Albert n=2000 m=8, 8 machines, L=8, r=12)",
        &[
            "steps_per_sec",
            "total_steps",
            "best_secs",
            "wire_frames",
            "wire_batch_bytes",
        ],
    );
    let mut transport_speedup_report = Report::new(
        "transport_overhead_speedup",
        "InMemoryTransport-over-classic walk throughput ratio (>= 0.80 \
         effective floor: the sequential Transport-threaded round loop plus \
         the round-harvest codec may cost at most ~20% vs the 8-thread \
         in-process engine)",
        &["in_memory_over_classic"],
    );
    let transport_config = small_rounds_config(ExecutionBackend::RoundLoop);
    // Like Part 5, the gated ratio compares two runs of the identical walk
    // that differ only in dispatch plumbing, so reps are interleaved at
    // triple the usual count to sample the same machine-load phases.
    let mut transport_best: [Option<(f64, WalkResult)>; 2] = [None, None];
    for _ in 0..3 * reps {
        for (slot, best) in transport_best.iter_mut().enumerate() {
            let start = Instant::now();
            let result = if slot == 0 {
                black_box(run_distributed_walks(
                    graph,
                    partitioning,
                    &transport_config,
                ))
            } else {
                let mut transport = InMemoryTransport::new(partitioning.num_machines());
                black_box(
                    run_walks_over(&mut transport, graph, partitioning, &transport_config)
                        .expect("in-memory transport cannot fail")
                        .expect("single endpoint is the coordinator"),
                )
            };
            let secs = start.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(b, _)| secs < *b) {
                *best = Some((secs, result));
            }
        }
    }
    let (socket_secs, socket_result) = {
        let mut best: Option<(f64, WalkResult)> = None;
        for _ in 0..reps {
            let start = Instant::now();
            let result = black_box(run_walks_over_loopback(
                graph,
                partitioning,
                &transport_config,
                4,
            ));
            let secs = start.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(b, _)| secs < *b) {
                best = Some((secs, result));
            }
        }
        best.expect("reps >= 1")
    };
    let mut transport_rates = Vec::new();
    let transport_rows = [
        ("classic_in_process", &transport_best[0]),
        ("in_memory_transport", &transport_best[1]),
        ("socket_loopback_4", &Some((socket_secs, socket_result))),
    ];
    for (label, slot) in transport_rows {
        let (best_secs, result) = slot.as_ref().expect("reps >= 1");
        let total_steps = result.comm.total_steps();
        let steps_per_sec = total_steps as f64 / best_secs;
        println!(
            "transport_overhead/{label}: {steps_per_sec:.0} steps/s \
             ({total_steps} steps in {best_secs:.4}s, {} frames, \
             {} batch bytes on the wire)",
            result.comm.wire.frames_sent, result.comm.wire.batch_bytes_sent
        );
        transport_report.push(
            label,
            vec![
                steps_per_sec,
                total_steps as f64,
                *best_secs,
                result.comm.wire.frames_sent as f64,
                result.comm.wire.batch_bytes_sent as f64,
            ],
        );
        transport_rates.push(steps_per_sec);

        // Whatever the path, the walk itself must be the bit-identical job:
        // the transport layer is plumbing, not semantics.
        let classic = &transport_best[0].as_ref().expect("reps >= 1").1;
        assert_eq!(
            result.corpus, classic.corpus,
            "transport path {label} changed the corpus"
        );
    }
    if let [classic_rate, in_memory_rate, _] = transport_rates[..] {
        println!(
            "transport_overhead: in_memory/classic = {:.3}x \
             ({:.1}% abstraction overhead)",
            in_memory_rate / classic_rate,
            (1.0 - in_memory_rate / classic_rate) * 100.0
        );
        transport_speedup_report.push(
            "in_memory_over_classic",
            vec![in_memory_rate / classic_rate],
        );
    }
    // The estimate-vs-measured contract: the analytic byte count the
    // NetworkModel prices must agree with the bytes actually shipped in
    // BATCH frames within an order of magnitude.
    let socket = &transport_rows[2].1.as_ref().expect("reps >= 1").1;
    assert!(
        socket.comm.wire.batch_bytes_sent > 0,
        "loopback run must measure real traffic"
    );
    let estimate_over_measured =
        socket.comm.bytes as f64 / socket.comm.wire.batch_bytes_sent as f64;
    println!(
        "transport_overhead: {} estimated bytes vs {} measured batch bytes \
         ({estimate_over_measured:.2}x)",
        socket.comm.bytes, socket.comm.wire.batch_bytes_sent
    );
    assert!(
        (0.1..=10.0).contains(&estimate_over_measured),
        "CommStats byte estimate ({}) and measured wire batch bytes ({}) \
         disagree by more than an order of magnitude",
        socket.comm.bytes,
        socket.comm.wire.batch_bytes_sent
    );

    // Part 8: the observability layer — end-to-end walk throughput with span
    // tracing enabled vs disabled, on the same many-small-rounds workload as
    // Parts 3, 5 and 7 (many rounds means many `superstep`/`round` spans:
    // the worst case for the per-span cost). Like Part 5, the two sides run
    // the identical walk and differ only by the ring-buffer writes, so reps
    // are interleaved at triple the usual count. The gated ratio follows the
    // scheduled_over_serial idiom — min 0.98, effective 0.833 under the 15%
    // tolerance: enabling tracing on the walk hot path may cost at most a
    // few percent (recorded ~1.00x; the floor absorbs runner noise, and the
    // disabled path's cost is bounded transitively by every other gated
    // throughput floor in this file, all measured with tracing off).
    let obs_config = small_rounds_config(ExecutionBackend::RoundLoop);
    let mut obs_best: [Option<(f64, WalkResult)>; 2] = [None, None];
    let mut traced_events = 0usize;
    for _ in 0..3 * reps {
        for (slot, best) in obs_best.iter_mut().enumerate() {
            distger_obs::set_tracing(slot == 1);
            let start = Instant::now();
            let result = black_box(run_distributed_walks(graph, partitioning, &obs_config));
            let secs = start.elapsed().as_secs_f64();
            distger_obs::set_tracing(false);
            // Drain outside the timed window so ring contents never pile up
            // across reps (a full ring drops events, not time).
            let events = distger_obs::drain_all();
            if slot == 1 {
                traced_events = events.len();
                assert!(!events.is_empty(), "enabled runs must record spans");
            } else {
                assert!(events.is_empty(), "disabled runs must record nothing");
            }
            if best.as_ref().is_none_or(|(b, _)| secs < *b) {
                *best = Some((secs, result));
            }
        }
    }
    let mut obs_report = Report::new(
        "obs_overhead",
        "Walk throughput with span tracing disabled vs enabled \
         (Barabási–Albert n=2000 m=8, 8 machines, L=8, r=12; trace_events is \
         the per-run span event count of the enabled side)",
        &["steps_per_sec", "total_steps", "best_secs", "trace_events"],
    );
    let mut obs_speedup_report = Report::new(
        "obs_overhead_speedup",
        "Tracing-enabled over tracing-disabled walk throughput ratio \
         (>= 0.833 effective floor: recording every superstep/round span on \
         the hot path may cost at most a few percent plus runner noise)",
        &["enabled_over_disabled"],
    );
    let mut obs_rates = Vec::new();
    for (label, slot) in [("disabled", &obs_best[0]), ("enabled", &obs_best[1])] {
        let (best_secs, result) = slot.as_ref().expect("reps >= 1");
        let total_steps = result.comm.total_steps();
        let steps_per_sec = total_steps as f64 / best_secs;
        let events = if label == "enabled" { traced_events } else { 0 };
        println!(
            "obs_overhead/{label}: {steps_per_sec:.0} steps/s \
             ({total_steps} steps in {best_secs:.4}s, {events} trace events)"
        );
        obs_report.push(
            label,
            vec![steps_per_sec, total_steps as f64, *best_secs, events as f64],
        );
        obs_rates.push(steps_per_sec);
    }
    if let [disabled, enabled] = obs_rates[..] {
        println!(
            "obs_overhead: enabled/disabled = {:.3}x ({:.1}% tracing overhead)",
            enabled / disabled,
            (1.0 - enabled / disabled) * 100.0
        );
        obs_speedup_report.push("enabled_over_disabled", vec![enabled / disabled]);
    }

    // Part 9: sharded serving over the transport layer. Two measurements:
    // the scatter-gather fleet's end-to-end QPS (4 endpoints over real
    // loopback TCP serving the Part 4 query workload, answers asserted
    // bit-identical to the single-process engine before timing), gated as an
    // absolute catastrophic-regression floor like serve_concurrent_qps; and
    // the coordinator's k-way bounded merge against a naive
    // concatenate-and-resort of the same per-shard heaps (16 shards x k=10 —
    // the merge pops only k of the 160 candidates, the resort pays for all
    // of them), interleaved reps, gated as a genuine speedup.
    let serve_embeddings = gaussian_clusters(20_000, 64, 40, 0.08, 97);
    let (shard_index, shard_batch) = query_workload();
    let shard_serve_config = query_config(QueryBackend::Lsh);
    let shard_expected = QueryEngine::new(shard_index.clone(), shard_serve_config)
        .top_k(shard_batch)
        .results;

    const SHARD_ENDPOINTS: usize = 4;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let shard_addr = listener.local_addr().expect("loopback addr");
    let (sharded_qps, sharded_best) = std::thread::scope(|scope| {
        for _ in 1..SHARD_ENDPOINTS {
            scope.spawn(move || {
                let mut channel =
                    SocketTransport::worker(shard_addr, std::time::Duration::from_secs(60))
                        .expect("connect");
                let shard = receive_shard(&mut channel).expect("receive shard");
                serve_shard(&mut channel, &shard, None).expect("serve loop");
            });
        }
        let channel = SocketTransport::coordinator(&listener, SHARD_ENDPOINTS, SHARD_ENDPOINTS)
            .expect("coordinator");
        let engine = ShardedQueryEngine::new(channel, &serve_embeddings, shard_serve_config)
            .expect("load shards");
        let warmup = engine.top_k(shard_batch);
        assert_eq!(
            warmup
                .results
                .iter()
                .flat_map(|t| t.neighbors())
                .collect::<Vec<_>>(),
            shard_expected
                .iter()
                .flat_map(|t| t.neighbors())
                .collect::<Vec<_>>(),
            "sharded answers must be bit-identical before they are timed"
        );
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            black_box(engine.top_k(shard_batch));
            best = best.min(start.elapsed().as_secs_f64());
        }
        engine.shutdown().expect("shutdown collective");
        (shard_batch.len() as f64 / best, best)
    });
    let mut sharded_qps_report = Report::new(
        "sharded_serve_qps",
        "Scatter-gather top-k over 4 shard endpoints on loopback TCP \
         (Part 4 fixture: 20k nodes x 64 dims, 250-query batches, LSH \
         backend, answers bit-identical to the single-process engine; \
         floor is a catastrophic-regression bound far below the recording)",
        &["queries_per_sec", "queries_per_batch", "best_secs"],
    );
    sharded_qps_report.push(
        "loopback_4_shards",
        vec![sharded_qps, shard_batch.len() as f64, sharded_best],
    );
    println!(
        "sharded_serve_qps/loopback_4_shards: {sharded_qps:.0} qps \
         ({} queries in {sharded_best:.4}s best-of-{reps})",
        shard_batch.len()
    );

    const MERGE_SHARDS: usize = 16;
    let merge_k = shard_serve_config.k;
    let shard_parts: Vec<Vec<TopK>> = (0..MERGE_SHARDS)
        .map(|endpoint| {
            let range = machine_split(serve_embeddings.num_nodes(), MERGE_SHARDS, endpoint);
            EngineShard::from_rows(&serve_embeddings, range, shard_serve_config)
                .top_k(shard_batch)
                .results
        })
        .collect();
    let merge_queries = shard_batch.len();
    let mut merge_best = f64::INFINITY;
    let mut resort_best = f64::INFINITY;
    for _ in 0..3 * reps {
        let start = Instant::now();
        for q in 0..merge_queries {
            let parts: Vec<&TopK> = shard_parts.iter().map(|s| &s[q]).collect();
            black_box(merge_topk(&parts, merge_k));
        }
        merge_best = merge_best.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        for q in 0..merge_queries {
            let mut all: Vec<_> = shard_parts
                .iter()
                .flat_map(|s| s[q].neighbors().iter().copied())
                .collect();
            all.sort_unstable_by(|a, b| b.cmp(a));
            all.truncate(merge_k);
            black_box(all);
        }
        resort_best = resort_best.min(start.elapsed().as_secs_f64());
    }
    let mut shard_merge_report = Report::new(
        "shard_merge",
        "Coordinator-side gather merge: bounded k-way heap merge vs naive \
         concatenate-and-resort of the same 16 per-shard top-10 heaps \
         (250 queries per rep, interleaved best-of reps)",
        &["merges_per_sec", "best_secs"],
    );
    shard_merge_report.push(
        "kway_heap",
        vec![merge_queries as f64 / merge_best, merge_best],
    );
    shard_merge_report.push(
        "concat_resort",
        vec![merge_queries as f64 / resort_best, resort_best],
    );
    let mut shard_merge_speedup_report = Report::new(
        "shard_merge_speedup",
        "Bounded k-way merge over concatenate-and-resort throughput ratio \
         on 16 shards x k=10 (the merge inspects s + k*log(s) heads, the \
         resort sorts all s*k candidates)",
        &["merge_over_resort"],
    );
    shard_merge_speedup_report.push("merge_over_resort", vec![resort_best / merge_best]);
    println!(
        "shard_merge: heap {:.0}/s vs resort {:.0}/s -> {:.2}x",
        merge_queries as f64 / merge_best,
        merge_queries as f64 / resort_best,
        resort_best / merge_best,
    );

    let combined = object([
        ("id", Value::from("bench_walks".to_string())),
        (
            "title",
            Value::from(
                "Walk-engine hot-path throughput: optimized vs reference backends".to_string(),
            ),
        ),
        (
            "reports",
            Value::Array(vec![
                freq_report.to_json(),
                freq_speedup_report.to_json(),
                sampling_report.to_json(),
                speedup_report.to_json(),
                execution_report.to_json(),
                execution_speedup_report.to_json(),
                round_loop_speedup_report.to_json(),
                query_report.to_json(),
                query_speedup_report.to_json(),
                checkpoint_report.to_json(),
                checkpoint_speedup_report.to_json(),
                serve_latency_report.to_json(),
                serve_qps_report.to_json(),
                serve_speedup_report.to_json(),
                serve_slo_report.to_json(),
                transport_report.to_json(),
                transport_speedup_report.to_json(),
                obs_report.to_json(),
                obs_speedup_report.to_json(),
                sharded_qps_report.to_json(),
                shard_merge_report.to_json(),
                shard_merge_speedup_report.to_json(),
            ]),
        ),
    ]);
    // Benches run with the package directory as cwd; anchor the report at
    // the workspace root.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_walks.json");
    std::fs::write(&out, combined.to_string_pretty()).expect("write BENCH_walks.json");
    println!("{}", freq_report.to_text());
    println!("{}", freq_speedup_report.to_text());
    println!("{}", sampling_report.to_text());
    println!("{}", speedup_report.to_text());
    println!("{}", execution_report.to_text());
    println!("{}", execution_speedup_report.to_text());
    println!("{}", round_loop_speedup_report.to_text());
    println!("{}", query_report.to_text());
    println!("{}", query_speedup_report.to_text());
    println!("{}", checkpoint_report.to_text());
    println!("{}", checkpoint_speedup_report.to_text());
    println!("{}", serve_latency_report.to_text());
    println!("{}", serve_qps_report.to_text());
    println!("{}", serve_speedup_report.to_text());
    println!("{}", serve_slo_report.to_text());
    println!("{}", transport_report.to_text());
    println!("{}", transport_speedup_report.to_text());
    println!("{}", obs_report.to_text());
    println!("{}", obs_speedup_report.to_text());
    println!("{}", sharded_qps_report.to_text());
    println!("{}", shard_merge_report.to_text());
    println!("{}", shard_merge_speedup_report.to_text());
}

criterion_group!(
    benches,
    bench_walks,
    bench_freq_store_throughput,
    bench_transition_sampling,
    bench_execution_backends,
    bench_query_backends,
    export_reports
);
criterion_main!(benches);
