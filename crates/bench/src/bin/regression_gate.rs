//! CI throughput-regression gate.
//!
//! Parses the `BENCH_walks.json` written by `cargo bench -p distger-bench
//! --bench walk_engines` and fails (exit code 1) if any `*_speedup` report
//! row named in `crates/bench/baselines.json` dropped below its committed
//! floor (after tolerance). Run it from CI right after the bench:
//!
//! ```sh
//! cargo bench -p distger-bench --bench walk_engines
//! cargo run -p distger-bench --release --bin regression_gate
//! ```
//!
//! Optional arguments override the default paths:
//! `regression_gate [BENCH_walks.json] [baselines.json]`.

use distger_bench::gate::{collect_speedups, evaluate, unfloored, Baselines, GateCheck};
use distger_bench::json::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn default_paths() -> (PathBuf, PathBuf) {
    // The binary may run from the workspace root or the package directory;
    // anchor on the manifest like the bench's JSON export does.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    (
        manifest.join("../../BENCH_walks.json"),
        manifest.join("baselines.json"),
    )
}

fn load(path: &Path, what: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {what} at {}: {e}", path.display()))?;
    Value::parse(&text).map_err(|e| format!("malformed {what} at {}: {e}", path.display()))
}

fn run() -> Result<(Vec<GateCheck>, Vec<String>), String> {
    let (default_bench, default_baselines) = default_paths();
    let mut args = std::env::args().skip(1);
    let bench_path = args.next().map_or(default_bench, PathBuf::from);
    let baselines_path = args.next().map_or(default_baselines, PathBuf::from);

    let bench = load(&bench_path, "bench report")?;
    let baselines = Baselines::from_json(&load(&baselines_path, "baselines")?)?;
    let speedups = collect_speedups(&bench);

    println!(
        "regression gate: {} measured speedup(s) from {}, {} floor(s) from {} (tolerance {:.0}%)",
        speedups.len(),
        bench_path.display(),
        baselines.floors.len(),
        baselines_path.display(),
        baselines.tolerance * 100.0,
    );
    Ok((
        evaluate(&baselines, &speedups),
        unfloored(&baselines, &speedups),
    ))
}

fn main() -> ExitCode {
    match run() {
        Ok((checks, unfloored_keys)) => {
            for check in &checks {
                println!("{}", check.render());
            }
            for key in &unfloored_keys {
                println!(
                    "FAIL  {key:<52} measured but has no floor in baselines.json — \
                     commit one so this speedup stays enforced"
                );
            }
            let failures = checks.iter().filter(|c| !c.passed()).count() + unfloored_keys.len();
            if failures == 0 {
                println!("regression gate: all {} check(s) passed", checks.len());
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "regression gate: {failures} of {} check(s) FAILED — a committed \
                     speedup floor regressed, its report went missing, or a new \
                     speedup report lacks a committed floor",
                    checks.len() + unfloored_keys.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("regression gate: {message}");
            ExitCode::FAILURE
        }
    }
}
