//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§6, §8) on the synthetic stand-in datasets.
//!
//! Usage:
//! ```text
//! cargo run -p distger-bench --release --bin repro -- all
//! cargo run -p distger-bench --release --bin repro -- fig5 fig10 table4
//! cargo run -p distger-bench --release --bin repro -- --smoke all
//! ```
//!
//! Each experiment prints a paper-style table and also writes
//! `target/experiments/<id>.json`.

use std::time::Instant;

use distger_bench::{bench_dataset, labelled_dataset, BenchScale, Report};
use distger_core::{
    baselines::{run_gnn_like, run_pbg_like, GnnLikeConfig, PbgLikeConfig},
    run_pipeline, run_system, DistGerConfig, RunScale, SystemKind,
};
use distger_embed::{train_distributed, SyncStrategy, TrainerConfig, TrainerKind};
use distger_eval::{evaluate_classification, evaluate_link_prediction, split_edges};
use distger_graph::generate::PaperDataset;
use distger_graph::{rmat, GraphStats};
use distger_obs::Stopwatch;
use distger_partition::{
    balanced::workload_balanced_partition,
    fennel::{fennel_partition, FennelConfig},
    ldg::ldg_default,
    mpgp_partition, parallel_mpgp_partition, MpgpConfig, Partitioning, StreamingOrder,
};
use distger_walks::{run_distributed_walks, WalkEngineConfig, WalkModel};

const MACHINES: usize = 4;
const SEED: u64 = 7;

/// Datasets used by most experiments (the Twitter stand-in is reserved for
/// the scalability experiments to keep the harness laptop-friendly).
const CORE_DATASETS: [PaperDataset; 3] = [
    PaperDataset::Flickr,
    PaperDataset::Youtube,
    PaperDataset::LiveJournal,
];

fn harness_scale(scale: BenchScale) -> RunScale {
    let _ = scale;
    RunScale {
        dim: 32,
        epochs: 1,
        seed: SEED,
    }
}

fn distger_config(machines: usize) -> DistGerConfig {
    let mut config = DistGerConfig::distger(machines).with_seed(SEED);
    config.training.dim = 32;
    config.training.epochs = 1;
    config.training.sync_rounds_per_epoch = 2;
    config
}

fn knightking_config(machines: usize) -> DistGerConfig {
    let mut config = DistGerConfig::knightking(machines).with_seed(SEED);
    config.training.dim = 32;
    config.training.epochs = 1;
    config.training.sync_rounds_per_epoch = 2;
    config
}

// ---------------------------------------------------------------------------
// Table 2: dataset statistics
// ---------------------------------------------------------------------------
fn table2(scale: BenchScale) -> Vec<Report> {
    let mut report = Report::new(
        "table2",
        "dataset statistics (synthetic stand-ins)",
        &["nodes", "edges", "avg degree", "max degree"],
    );
    for ds in PaperDataset::ALL {
        let factor = if ds == PaperDataset::Twitter {
            scale.factor() * 0.4
        } else {
            scale.factor()
        };
        let g = ds.generate(factor, SEED);
        let stats = GraphStats::compute(&g);
        report.push(
            ds.short_name(),
            vec![
                stats.num_nodes as f64,
                stats.num_edges as f64,
                stats.avg_degree,
                stats.max_degree as f64,
            ],
        );
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Table 3 / Table 8: memory footprints
// ---------------------------------------------------------------------------
fn table3(scale: BenchScale) -> Vec<Report> {
    let mut sampling = Report::new(
        "table3-sampling",
        "avg per-machine sampling memory (MB): KnightKing vs HuGE-D vs DistGER",
        &["KnightKing", "HuGE-D", "DistGER"],
    );
    let mut training = Report::new(
        "table3-training",
        "avg per-machine training memory (MB): KnightKing vs DistGER",
        &["KnightKing", "DistGER"],
    );
    for ds in CORE_DATASETS {
        let g = bench_dataset(ds, scale, SEED);
        let kk = run_pipeline(&g, &knightking_config(MACHINES));
        let hd = run_pipeline(&g, &DistGerConfig::huge_d(MACHINES).with_seed(SEED).small());
        let dg = run_pipeline(&g, &distger_config(MACHINES));
        sampling.push(
            ds.short_name(),
            vec![
                kk.sampling_memory.total_bytes() as f64 / 1e6,
                hd.sampling_memory.total_bytes() as f64 / 1e6,
                dg.sampling_memory.total_bytes() as f64 / 1e6,
            ],
        );
        training.push(
            ds.short_name(),
            vec![
                kk.training_memory.total_bytes() as f64 / 1e6,
                dg.training_memory.total_bytes() as f64 / 1e6,
            ],
        );
    }
    vec![sampling, training]
}

// ---------------------------------------------------------------------------
// Figure 5: end-to-end running time per system
// ---------------------------------------------------------------------------
fn fig5(scale: BenchScale) -> Vec<Report> {
    let mut report = Report::new(
        "figure5",
        "end-to-end running time (s) per system and dataset",
        &["PBG", "DistDGL", "KnightKing", "HuGE-D", "DistGER"],
    );
    for ds in CORE_DATASETS {
        let g = bench_dataset(ds, scale, SEED);
        let mut row = Vec::new();
        for system in SystemKind::ALL {
            let run = run_system(system, &g, MACHINES, harness_scale(scale));
            row.push(run.end_to_end_secs());
        }
        report.push(ds.short_name(), row);
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Figure 6: scalability with the number of machines
// ---------------------------------------------------------------------------
fn fig6(scale: BenchScale) -> Vec<Report> {
    let g = bench_dataset(PaperDataset::LiveJournal, scale, SEED);
    let mut report = Report::new(
        "figure6",
        "end-to-end time (s) on the LJ stand-in vs number of machines",
        &["1", "2", "4", "8"],
    );
    for system in [
        SystemKind::KnightKing,
        SystemKind::HugeD,
        SystemKind::DistGer,
    ] {
        let mut row = Vec::new();
        for machines in [1usize, 2, 4, 8] {
            let run = run_system(system, &g, machines, harness_scale(scale));
            row.push(run.end_to_end_secs());
        }
        report.push(system.name(), row);
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Figure 7: scalability on synthetic R-MAT graphs
// ---------------------------------------------------------------------------
fn fig7(scale: BenchScale) -> Vec<Report> {
    let mut report = Report::new(
        "figure7",
        "DistGER on R-MAT graphs: walk + training time (s) vs node count",
        &["nodes", "edges", "walk time (s)", "training time (s)"],
    );
    let scales: &[u32] = match scale {
        BenchScale::Smoke => &[9, 10, 11],
        BenchScale::Default => &[10, 11, 12, 13],
    };
    for &s in scales {
        let g = rmat(s, 10, (0.57, 0.19, 0.19, 0.05), SEED);
        let result = run_pipeline(&g, &distger_config(MACHINES));
        report.push(
            format!("2^{s}"),
            vec![
                g.num_nodes() as f64,
                g.num_edges() as f64,
                result.times.sampling_secs,
                result.times.training_secs,
            ],
        );
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Figure 8: effectiveness vs running time
// ---------------------------------------------------------------------------
fn fig8(scale: BenchScale) -> Vec<Report> {
    let g = bench_dataset(PaperDataset::LiveJournal, scale, SEED);
    let split = split_edges(&g, 0.5, SEED);
    let mut report = Report::new(
        "figure8",
        "AUC vs cumulative running time (s) on the LJ stand-in",
        &[
            "time@1ep", "AUC@1ep", "time@2ep", "AUC@2ep", "time@4ep", "AUC@4ep",
        ],
    );
    for system in [SystemKind::KnightKing, SystemKind::DistGer, SystemKind::Pbg] {
        let mut row = Vec::new();
        for epochs in [1usize, 2, 4] {
            let run = run_system(
                system,
                &split.train_graph,
                MACHINES,
                RunScale {
                    epochs,
                    ..harness_scale(scale)
                },
            );
            row.push(run.end_to_end_secs());
            row.push(evaluate_link_prediction(&run.embeddings, &split));
        }
        report.push(system.name(), row);
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Table 4: link-prediction AUC per system
// ---------------------------------------------------------------------------
fn table4(scale: BenchScale) -> Vec<Report> {
    let mut report = Report::new(
        "table4",
        "link-prediction AUC per system and dataset",
        &["PBG", "DistDGL", "KnightKing", "DistGER"],
    );
    for ds in CORE_DATASETS {
        let g = bench_dataset(ds, scale, SEED);
        let split = split_edges(&g, 0.5, SEED);
        let mut row = Vec::new();
        for system in [
            SystemKind::Pbg,
            SystemKind::DistDgl,
            SystemKind::KnightKing,
            SystemKind::DistGer,
        ] {
            let run = run_system(
                system,
                &split.train_graph,
                MACHINES,
                RunScale {
                    epochs: 3,
                    ..harness_scale(scale)
                },
            );
            row.push(evaluate_link_prediction(&run.embeddings, &split));
        }
        report.push(ds.short_name(), row);
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Figure 9: multi-label node classification
// ---------------------------------------------------------------------------
fn fig9(scale: BenchScale) -> Vec<Report> {
    let mut reports = Vec::new();
    for name in ["FL", "YT"] {
        let labelled = labelled_dataset(name, scale, SEED);
        let mut micro = Report::new(
            &format!("figure9-{name}-micro"),
            &format!("Micro-F1 vs training ratio ({name} stand-in)"),
            &["10%", "30%", "50%", "70%", "90%"],
        );
        let mut macro_r = Report::new(
            &format!("figure9-{name}-macro"),
            &format!("Macro-F1 vs training ratio ({name} stand-in)"),
            &["10%", "30%", "50%", "70%", "90%"],
        );
        for system in [SystemKind::KnightKing, SystemKind::DistGer] {
            let run = run_system(
                system,
                &labelled.graph,
                MACHINES,
                RunScale {
                    epochs: 3,
                    ..harness_scale(scale)
                },
            );
            let mut micro_row = Vec::new();
            let mut macro_row = Vec::new();
            for ratio in [0.1, 0.3, 0.5, 0.7, 0.9] {
                let scores = evaluate_classification(
                    &run.embeddings,
                    &labelled.labels,
                    labelled.num_labels,
                    ratio,
                    3,
                    SEED,
                );
                micro_row.push(scores.micro_f1);
                macro_row.push(scores.macro_f1);
            }
            micro.push(system.name(), micro_row);
            macro_r.push(system.name(), macro_row);
        }
        reports.push(micro);
        reports.push(macro_r);
    }
    reports
}

// ---------------------------------------------------------------------------
// Figure 10: component efficiency
// ---------------------------------------------------------------------------
fn fig10(scale: BenchScale) -> Vec<Report> {
    let mut walk_time = Report::new(
        "figure10a",
        "random-walk time (s): KnightKing vs HuGE-D vs DistGER",
        &["KnightKing", "HuGE-D", "DistGER"],
    );
    let mut train_eff = Report::new(
        "figure10b",
        "training throughput (M pairs/s): Pword2vec vs DSGL (same corpus)",
        &["Pword2vec", "DSGL"],
    );
    let mut messages = Report::new(
        "figure10c",
        "cross-machine walker messages: workload-balancing vs MPGP",
        &["Workload-balancing", "MPGP"],
    );
    let mut mpgp_walk = Report::new(
        "figure10d",
        "random-walk time (s): workload-balancing vs MPGP (same walks)",
        &["Workload-balancing", "MPGP"],
    );

    for ds in CORE_DATASETS {
        let g = bench_dataset(ds, scale, SEED);
        let balanced = workload_balanced_partition(&g, MACHINES);
        let mpgp = mpgp_partition(&g, MACHINES, MpgpConfig::default());

        // (a) walk time per engine on its own partitioning scheme.
        let mut watch = Stopwatch::start();
        let kk = run_distributed_walks(
            &g,
            &balanced,
            &WalkEngineConfig::knightking_routine(WalkModel::Huge).with_seed(SEED),
        );
        let kk_time = watch.lap();
        let hd = run_distributed_walks(&g, &balanced, &WalkEngineConfig::huge_d().with_seed(SEED));
        let hd_time = watch.lap();
        let dg = run_distributed_walks(&g, &mpgp, &WalkEngineConfig::distger().with_seed(SEED));
        let dg_time = watch.lap();
        walk_time.push(ds.short_name(), vec![kk_time, hd_time, dg_time]);

        // (b) training throughput on the same (DistGER) corpus.
        let mut row = Vec::new();
        for kind in [
            TrainerKind::Pword2vec,
            TrainerKind::Dsgl { multi_windows: 2 },
        ] {
            let cfg = TrainerConfig {
                dim: 32,
                epochs: 1,
                kind,
                sync_rounds_per_epoch: 2,
                ..TrainerConfig::default()
            };
            let (_, stats) = train_distributed(&dg.corpus, MACHINES, &cfg);
            row.push(stats.throughput_pairs_per_sec / 1e6);
        }
        train_eff.push(ds.short_name(), row);

        // (c)+(d): same engine (DistGER walks) under the two partitionings.
        let mut watch = Stopwatch::start();
        let wb_walk =
            run_distributed_walks(&g, &balanced, &WalkEngineConfig::distger().with_seed(SEED));
        let wb_time = watch.lap();
        let mp_walk =
            run_distributed_walks(&g, &mpgp, &WalkEngineConfig::distger().with_seed(SEED));
        let mp_time = watch.lap();
        messages.push(
            ds.short_name(),
            vec![wb_walk.comm.messages as f64, mp_walk.comm.messages as f64],
        );
        mpgp_walk.push(ds.short_name(), vec![wb_time, mp_time]);
        let _ = (kk, hd);
    }
    vec![walk_time, train_eff, messages, mpgp_walk]
}

// ---------------------------------------------------------------------------
// Figure 11: streaming orders
// ---------------------------------------------------------------------------
fn fig11(scale: BenchScale) -> Vec<Report> {
    let g = bench_dataset(PaperDataset::LiveJournal, scale, SEED);
    let mut report = Report::new(
        "figure11",
        "MPGP streaming orders on the LJ stand-in (4 machines)",
        &[
            "partition time (s)",
            "walk time (s)",
            "local steps",
            "cross-machine msgs",
        ],
    );
    for order in StreamingOrder::ALL {
        let mut watch = Stopwatch::start();
        let p = mpgp_partition(
            &g,
            MACHINES,
            MpgpConfig {
                order,
                seed: SEED,
                ..MpgpConfig::default()
            },
        );
        let partition_time = watch.lap();
        let walk = run_distributed_walks(&g, &p, &WalkEngineConfig::distger().with_seed(SEED));
        let walk_time = watch.lap();
        report.push(
            order.name(),
            vec![
                partition_time,
                walk_time,
                walk.comm.local_steps as f64,
                walk.comm.messages as f64,
            ],
        );
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Table 5: partitioning efficiency
// ---------------------------------------------------------------------------
fn table5(scale: BenchScale) -> Vec<Report> {
    let mut a = Report::new(
        "table5a",
        "partitioning time (s): LDG vs FENNEL vs MPGP vs MPGP-P",
        &["LDG", "FENNEL", "MPGP", "MPGP-P"],
    );
    for ds in CORE_DATASETS {
        let g = bench_dataset(ds, scale, SEED);
        let time = |f: &dyn Fn() -> Partitioning| -> f64 {
            let start = Instant::now();
            let p = f();
            assert_eq!(p.num_nodes(), g.num_nodes());
            start.elapsed().as_secs_f64()
        };
        a.push(
            ds.short_name(),
            vec![
                time(&|| ldg_default(&g, MACHINES, SEED)),
                time(&|| fennel_partition(&g, MACHINES, FennelConfig::default(), SEED)),
                time(&|| mpgp_partition(&g, MACHINES, MpgpConfig::default())),
                time(&|| parallel_mpgp_partition(&g, MACHINES, 4, MpgpConfig::parallel_default())),
            ],
        );
    }

    let mut b = Report::new(
        "table5b",
        "parallel MPGP: DFS+degree vs BFS+degree (partition / walk time, s)",
        &[
            "DFS+deg part",
            "DFS+deg walk",
            "BFS+deg part",
            "BFS+deg walk",
        ],
    );
    for ds in [PaperDataset::LiveJournal, PaperDataset::ComOrkut] {
        let g = bench_dataset(ds, scale, SEED);
        let mut row = Vec::new();
        for order in [StreamingOrder::DfsDegree, StreamingOrder::BfsDegree] {
            let mut watch = Stopwatch::start();
            let p = parallel_mpgp_partition(
                &g,
                MACHINES,
                4,
                MpgpConfig {
                    order,
                    seed: SEED,
                    ..MpgpConfig::default()
                },
            );
            row.push(watch.lap());
            run_distributed_walks(&g, &p, &WalkEngineConfig::distger().with_seed(SEED));
            row.push(watch.lap());
        }
        b.push(ds.short_name(), row);
    }
    vec![a, b]
}

// ---------------------------------------------------------------------------
// Figure 12: generality (DeepWalk / node2vec / HuGE+ on DistGER)
// ---------------------------------------------------------------------------
fn fig12(scale: BenchScale) -> Vec<Report> {
    let mut report = Report::new(
        "figure12",
        "generality on the YT stand-in: routine (KnightKing) vs info-driven (DistGER)",
        &[
            "walk time routine (s)",
            "walk time DistGER (s)",
            "corpus routine (tokens)",
            "corpus DistGER (tokens)",
            "AUC ratio (DistGER/KnightKing)",
        ],
    );
    let g = bench_dataset(PaperDataset::Youtube, scale, SEED);
    let split = split_edges(&g, 0.5, SEED);
    let balanced = workload_balanced_partition(&split.train_graph, MACHINES);
    let mpgp = mpgp_partition(&split.train_graph, MACHINES, MpgpConfig::default());

    for model in [
        WalkModel::DeepWalk,
        WalkModel::Node2Vec { p: 4.0, q: 1.0 },
        WalkModel::Huge,
    ] {
        let mut watch = Stopwatch::start();
        let routine = run_distributed_walks(
            &split.train_graph,
            &balanced,
            &WalkEngineConfig::knightking_routine(model).with_seed(SEED),
        );
        let routine_time = watch.lap();
        let info = run_distributed_walks(
            &split.train_graph,
            &mpgp,
            &WalkEngineConfig::distger_general(model).with_seed(SEED),
        );
        let info_time = watch.lap();

        let train = |corpus| {
            let cfg = TrainerConfig {
                dim: 32,
                epochs: 2,
                sync_rounds_per_epoch: 2,
                ..TrainerConfig::default()
            };
            let (emb, _) = train_distributed(corpus, MACHINES, &cfg);
            evaluate_link_prediction(&emb, &split)
        };
        let auc_routine = train(&routine.corpus);
        let auc_info = train(&info.corpus);

        report.push(
            model.name(),
            vec![
                routine_time,
                info_time,
                routine.corpus.total_tokens() as f64,
                info.corpus.total_tokens() as f64,
                auc_info / auc_routine.max(1e-9),
            ],
        );
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Figure 13: varying the load-balancing slack γ
// ---------------------------------------------------------------------------
fn fig13(scale: BenchScale) -> Vec<Report> {
    let g = bench_dataset(PaperDataset::LiveJournal, scale, SEED);
    let mut report = Report::new(
        "figure13",
        "MPGP slack γ on the LJ stand-in: balance vs walk efficiency",
        &["balance factor", "local edge fraction", "walk time (s)"],
    );
    for gamma in [1.0, 2.0, 4.0, 8.0] {
        let p = mpgp_partition(
            &g,
            MACHINES,
            MpgpConfig {
                gamma,
                seed: SEED,
                ..MpgpConfig::default()
            },
        );
        let mut watch = Stopwatch::start();
        run_distributed_walks(&g, &p, &WalkEngineConfig::distger().with_seed(SEED));
        let walk_time = watch.lap();
        report.push(
            format!("gamma={gamma}"),
            vec![p.balance_factor(), p.local_edge_fraction(&g), walk_time],
        );
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Table 6: weighted vs unweighted graphs
// ---------------------------------------------------------------------------
fn table6(scale: BenchScale) -> Vec<Report> {
    let mut report = Report::new(
        "table6",
        "DistGER end-to-end time (s): unweighted vs weighted graphs",
        &["unweighted", "weighted [1,5)"],
    );
    for ds in CORE_DATASETS {
        let g = bench_dataset(ds, scale, SEED);
        let gw = g.with_random_weights(1.0, 5.0, SEED);
        let unweighted = run_pipeline(&g, &distger_config(MACHINES));
        let weighted = run_pipeline(&gw, &distger_config(MACHINES));
        report.push(
            ds.short_name(),
            vec![unweighted.end_to_end_secs(), weighted.end_to_end_secs()],
        );
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Table 7: directed vs undirected
// ---------------------------------------------------------------------------
fn table7(scale: BenchScale) -> Vec<Report> {
    let g = bench_dataset(PaperDataset::LiveJournal, scale, SEED);
    let directed = distger_graph::generate::randomly_orient(&g, SEED);
    let mut report = Report::new(
        "table7",
        "DistGER on the LJ stand-in: undirected vs directed",
        &[
            "edges",
            "partition (s)",
            "sampling (s)",
            "training (s)",
            "memory (MB)",
        ],
    );
    for (name, graph) in [("undirected", &g), ("directed", &directed)] {
        let result = run_pipeline(graph, &distger_config(MACHINES));
        report.push(
            name,
            vec![
                graph.num_edges() as f64,
                result.times.partition_secs,
                result.times.sampling_secs,
                result.times.training_secs,
                (result.sampling_memory.total_bytes() + result.training_memory.total_bytes())
                    as f64
                    / 1e6,
            ],
        );
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// Extra ablation: DSGL design choices (local buffers / multi-window / sync)
// ---------------------------------------------------------------------------
fn ablation(scale: BenchScale) -> Vec<Report> {
    let g = bench_dataset(PaperDataset::Youtube, scale, SEED);
    let p = mpgp_partition(&g, MACHINES, MpgpConfig::default());
    let walks = run_distributed_walks(&g, &p, &WalkEngineConfig::distger().with_seed(SEED));
    let mut report = Report::new(
        "ablation-dsgl",
        "DSGL ablation on the YT stand-in corpus",
        &["throughput (M pairs/s)", "sync MB"],
    );
    let variants: [(&str, TrainerKind, SyncStrategy); 4] = [
        ("SGNS + full sync", TrainerKind::Hogwild, SyncStrategy::Full),
        (
            "Pword2vec + full sync",
            TrainerKind::Pword2vec,
            SyncStrategy::Full,
        ),
        (
            "DSGL (mw=1) + hotness",
            TrainerKind::Dsgl { multi_windows: 1 },
            SyncStrategy::HotnessBlock,
        ),
        (
            "DSGL (mw=4) + hotness",
            TrainerKind::Dsgl { multi_windows: 4 },
            SyncStrategy::HotnessBlock,
        ),
    ];
    for (name, kind, sync) in variants {
        let cfg = TrainerConfig {
            dim: 32,
            epochs: 1,
            kind,
            sync,
            sync_rounds_per_epoch: 2,
            ..TrainerConfig::default()
        };
        let (_, stats) = train_distributed(&walks.corpus, MACHINES, &cfg);
        report.push(
            name,
            vec![
                stats.throughput_pairs_per_sec / 1e6,
                stats.sync_comm.bytes as f64 / 1e6,
            ],
        );
    }
    vec![report]
}

// ---------------------------------------------------------------------------
// PBG / DistDGL traits (supporting evidence for the substitution notes)
// ---------------------------------------------------------------------------
fn baseline_traits(scale: BenchScale) -> Vec<Report> {
    let g = bench_dataset(PaperDataset::Flickr, scale, SEED);
    let mut report = Report::new(
        "baseline-traits",
        "baseline communication profiles on the FL stand-in",
        &["messages", "MB", "time (s)"],
    );
    let pbg = run_pbg_like(&g, MACHINES, &PbgLikeConfig::default());
    let gnn = run_gnn_like(&g, MACHINES, &GnnLikeConfig::default());
    let dg = run_pipeline(&g, &distger_config(MACHINES));
    report.push(
        "PBG-like (param server)",
        vec![
            pbg.comm.messages as f64,
            pbg.comm.bytes as f64 / 1e6,
            pbg.times.end_to_end_secs(),
        ],
    );
    report.push(
        "DistDGL-like (per-batch sync)",
        vec![
            gnn.comm.messages as f64,
            gnn.comm.bytes as f64 / 1e6,
            gnn.times.end_to_end_secs(),
        ],
    );
    report.push(
        "DistGER (walk msgs + hotness sync)",
        vec![
            dg.total_messages() as f64,
            (dg.walk_comm.bytes + dg.train_stats.sync_comm.bytes) as f64 / 1e6,
            dg.end_to_end_secs(),
        ],
    );
    vec![report]
}

// ---------------------------------------------------------------------------
// main
// ---------------------------------------------------------------------------
type Experiment = (&'static str, fn(BenchScale) -> Vec<Report>);

const EXPERIMENTS: &[Experiment] = &[
    ("table2", table2),
    ("table3", table3),
    ("fig5", fig5),
    ("fig6", fig6),
    ("fig7", fig7),
    ("fig8", fig8),
    ("table4", table4),
    ("fig9", fig9),
    ("fig10", fig10),
    ("fig11", fig11),
    ("table5", table5),
    ("fig12", fig12),
    ("fig13", fig13),
    ("table6", table6),
    ("table7", table7),
    ("ablation", ablation),
    ("baselines", baseline_traits),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let selected: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    let scale = if smoke {
        BenchScale::Smoke
    } else {
        BenchScale::Default
    };

    if selected.is_empty() {
        eprintln!("usage: repro [--smoke] <experiment...|all>");
        eprintln!(
            "experiments: {}",
            EXPERIMENTS
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }

    let run_all = selected.iter().any(|s| s == "all");
    let out_dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(out_dir).expect("create output directory");

    let mut all_json = Vec::new();
    for (name, f) in EXPERIMENTS {
        if !run_all && !selected.iter().any(|s| s == name) {
            continue;
        }
        let start = Instant::now();
        let reports = f(scale);
        let elapsed = start.elapsed().as_secs_f64();
        for report in &reports {
            println!("{}", report.to_text());
            let path = out_dir.join(format!("{}.json", report.id));
            std::fs::write(&path, report.to_json().to_string_pretty()).expect("write report JSON");
            all_json.push(report.to_json());
        }
        println!("[{name} completed in {elapsed:.1}s]\n");
    }
    std::fs::write(
        out_dir.join("all.json"),
        distger_bench::json::Value::Array(all_json).to_string_pretty(),
    )
    .expect("write combined JSON");
}
