//! CI well-formedness check for an exported Chrome trace-event file.
//!
//! Parses the JSON written by `--trace-out` (the `distger-node` binary or the
//! `multi_process_walks` example) and fails (exit code 1) unless:
//!
//! * the file is valid JSON with a `traceEvents` array of events that carry
//!   `name` / `ph` / `ts` / `pid` / `tid`;
//! * events come from at least `min_pids` distinct processes (the
//!   multi-process smoke run must merge all four endpoints' timelines);
//! * per `(pid, tid)` timeline, every `B` (begin) event is matched by an `E`
//!   (end) of the same span name, properly nested, with no dangling opens;
//! * per `(pid, tid)` timeline, timestamps never decrease (each thread's
//!   ring records a strictly monotonic clock, and the constant per-process
//!   offset applied by the merge preserves the order);
//! * when a `required_span` name is given, that span occurs on *every*
//!   process in the trace (the serve-phase smoke requires `shard_scan` on
//!   all four endpoints — proof each process actually scanned its shard).
//!
//! ```sh
//! cargo run --release --example multi_process_walks -- --trace-out trace.json
//! cargo run -p distger-bench --release --bin trace_check trace.json 4 shard_scan
//! ```

use distger_bench::json::Value;
use std::collections::HashMap;
use std::process::ExitCode;

fn check(text: &str, min_pids: usize, required_span: Option<&str>) -> Result<(), String> {
    let root = Value::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    let events = root["traceEvents"]
        .as_array()
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }

    let mut pids: Vec<i64> = Vec::new();
    let mut span_pids: Vec<i64> = Vec::new();
    let mut stacks: HashMap<(i64, i64), Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<(i64, i64), f64> = HashMap::new();
    for (i, event) in events.iter().enumerate() {
        let name = event["name"]
            .as_str()
            .ok_or(format!("event {i}: missing name"))?;
        let ph = event["ph"]
            .as_str()
            .ok_or(format!("event {i}: missing ph"))?;
        let ts = event["ts"]
            .as_f64()
            .ok_or(format!("event {i}: missing ts"))?;
        let pid = event["pid"]
            .as_f64()
            .ok_or(format!("event {i}: missing pid"))? as i64;
        let tid = event["tid"]
            .as_f64()
            .ok_or(format!("event {i}: missing tid"))? as i64;
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        if required_span == Some(name) && !span_pids.contains(&pid) {
            span_pids.push(pid);
        }
        let thread = (pid, tid);
        if let Some(&prev) = last_ts.get(&thread) {
            if ts < prev {
                return Err(format!(
                    "event {i} ({name}): ts {ts} before {prev} on pid {pid} tid {tid}"
                ));
            }
        }
        last_ts.insert(thread, ts);
        let stack = stacks.entry(thread).or_default();
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: end of '{name}' closes '{open}' on pid {pid} tid {tid}"
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: end of '{name}' without a begin on pid {pid} tid {tid}"
                    ))
                }
            },
            "i" => {}
            other => return Err(format!("event {i} ({name}): unknown phase '{other}'")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "span '{open}' on pid {pid} tid {tid} never ended ({} dangling)",
                stack.len()
            ));
        }
    }
    if pids.len() < min_pids {
        return Err(format!(
            "trace covers {} process(es) {pids:?}, expected at least {min_pids}",
            pids.len()
        ));
    }
    if let Some(span) = required_span {
        let missing: Vec<i64> = pids
            .iter()
            .copied()
            .filter(|pid| !span_pids.contains(pid))
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "span '{span}' missing on pid(s) {missing:?} (present on {span_pids:?})"
            ));
        }
    }
    println!(
        "trace_check: {} events from {} process(es), {} thread timeline(s), all spans matched",
        events.len(),
        pids.len(),
        stacks.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check <trace.json> [min_pids] [required_span]");
        return ExitCode::FAILURE;
    };
    let min_pids = match args.next().map(|s| s.parse::<usize>()) {
        None => 1,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("trace_check: min_pids must be an integer");
            return ExitCode::FAILURE;
        }
    };
    let required_span = args.next();
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text, min_pids, required_span.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_check: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::check;

    #[test]
    fn accepts_a_well_formed_two_process_trace() {
        let text = r#"{"traceEvents":[
            {"name":"round","ph":"B","ts":10,"pid":0,"tid":0},
            {"name":"exchange","ph":"B","ts":11,"pid":0,"tid":0},
            {"name":"exchange","ph":"E","ts":12,"pid":0,"tid":0},
            {"name":"round","ph":"E","ts":13,"pid":0,"tid":0},
            {"name":"fault_delay","ph":"i","ts":5,"pid":1,"tid":0},
            {"name":"round","ph":"B","ts":6,"pid":1,"tid":0},
            {"name":"round","ph":"E","ts":9,"pid":1,"tid":0}
        ]}"#;
        check(text, 2, None).expect("well-formed trace");
        check(text, 2, Some("round")).expect("'round' is on both pids");
    }

    #[test]
    fn requires_the_named_span_on_every_process() {
        let text = r#"{"traceEvents":[
            {"name":"shard_scan","ph":"B","ts":1,"pid":0,"tid":0},
            {"name":"shard_scan","ph":"E","ts":2,"pid":0,"tid":0},
            {"name":"round","ph":"B","ts":1,"pid":1,"tid":0},
            {"name":"round","ph":"E","ts":2,"pid":1,"tid":0}
        ]}"#;
        let err = check(text, 2, Some("shard_scan")).unwrap_err();
        assert!(err.contains("'shard_scan' missing on pid(s) [1]"), "{err}");
        assert!(check(text, 2, Some("absent")).is_err(), "span nowhere");
    }

    #[test]
    fn rejects_dangling_interleaved_and_backward_traces() {
        let dangling = r#"{"traceEvents":[{"name":"round","ph":"B","ts":1,"pid":0,"tid":0}]}"#;
        assert!(check(dangling, 1, None)
            .unwrap_err()
            .contains("never ended"));
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":0,"tid":0},
            {"name":"b","ph":"B","ts":2,"pid":0,"tid":0},
            {"name":"a","ph":"E","ts":3,"pid":0,"tid":0}
        ]}"#;
        assert!(check(crossed, 1, None).unwrap_err().contains("closes"));
        let backward = r#"{"traceEvents":[
            {"name":"a","ph":"i","ts":5,"pid":0,"tid":0},
            {"name":"b","ph":"i","ts":4,"pid":0,"tid":0}
        ]}"#;
        assert!(check(backward, 1, None).unwrap_err().contains("before"));
        let too_few = r#"{"traceEvents":[{"name":"a","ph":"i","ts":1,"pid":0,"tid":0}]}"#;
        assert!(check(too_few, 4, None)
            .unwrap_err()
            .contains("expected at least 4"));
    }
}
