//! Benchmark-scale dataset stand-ins.
//!
//! The paper's real graphs (Table 2) are replaced by synthetic stand-ins with
//! the same relative shape (see `distger-graph::generate::PaperDataset`).
//! The harness runs them at a configurable scale so that a full `repro -- all`
//! pass finishes in minutes on a laptop while relative trends survive.

use distger_graph::generate::PaperDataset;
use distger_graph::{planted_partition, CsrGraph, LabeledGraph};

/// How large the harness workloads are.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BenchScale {
    /// Tiny graphs for CI smoke runs (seconds).
    Smoke,
    /// The default: every experiment finishes in at most a few minutes.
    Default,
}

impl BenchScale {
    /// Multiplier applied to the stand-in node counts.
    pub fn factor(self) -> f64 {
        match self {
            BenchScale::Smoke => 0.05,
            BenchScale::Default => 0.25,
        }
    }
}

/// Generates the stand-in for one of the paper's datasets at the given scale.
pub fn bench_dataset(dataset: PaperDataset, scale: BenchScale, seed: u64) -> CsrGraph {
    dataset.generate(scale.factor(), seed)
}

/// Labelled graphs standing in for Flickr / YouTube in the classification
/// experiments (Figure 9): planted communities with a multi-label fraction.
pub fn labelled_dataset(name: &str, scale: BenchScale, seed: u64) -> LabeledGraph {
    let (n, communities, p_in) = match name {
        "FL" => (800, 16, 0.10),
        _ => (1_200, 12, 0.06),
    };
    let n = ((n as f64) * (scale.factor() / 0.25)).round().max(60.0) as usize;
    planted_partition(n, communities.min(n / 5), p_in, 0.003, 0.3, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_generate_at_both_scales() {
        for scale in [BenchScale::Smoke, BenchScale::Default] {
            let g = bench_dataset(PaperDataset::Flickr, scale, 1);
            assert!(g.num_nodes() > 10);
            let l = labelled_dataset("FL", scale, 1);
            assert_eq!(l.labels.len(), l.graph.num_nodes());
        }
    }
}
