//! Bench throughput regression gate.
//!
//! Two PRs of hot-path speedups (flat frequency store, alias transition
//! sampling) and the worker-pool superstep engine are only worth their
//! complexity while they actually stay fast — and random-walk embedding
//! pipelines are dominated by sampling throughput, so a silent regression
//! there is the costliest kind. The gate turns `BENCH_walks.json` from a
//! passive artifact into an enforced contract: every row of every report
//! whose id ends in a [`GATED_SUFFIXES`] suffix (`_speedup` ratios, `_qps`
//! absolute throughput, `_slo` latency headroom) is compared against a floor
//! committed in `crates/bench/baselines.json`, and CI fails when a measured
//! value drops below `floor × (1 − tolerance)`.
//!
//! The tolerance absorbs runner-to-runner noise (shared CI machines easily
//! wobble ±10%); the floors themselves are deliberately set well below the
//! speedups recorded in the committed `BENCH_walks.json`, so only a genuine
//! regression — not an unlucky scheduler — trips the gate. Completeness is
//! enforced in both directions: a floor whose key is *missing* from the
//! measurements fails (silently dropping a report must not pass), and a
//! measured speedup with *no committed floor* fails too (see [`unfloored`] —
//! a new speedup report must land together with its floor).

use crate::json::Value;

/// The committed floors (`crates/bench/baselines.json`).
#[derive(Clone, Debug, PartialEq)]
pub struct Baselines {
    /// Fractional slack applied to every floor: a check passes while
    /// `measured ≥ min_speedup × (1 − tolerance)`.
    pub tolerance: f64,
    /// `(key, min_speedup)` pairs; keys are `"<report_id>/<row_label>"`.
    pub floors: Vec<(String, f64)>,
}

impl Baselines {
    /// Parses the baselines document.
    ///
    /// Expected shape:
    /// ```json
    /// {
    ///   "tolerance": 0.15,
    ///   "floors": [
    ///     { "key": "transition_sampling_speedup/skewed_ba", "min_speedup": 2.0 }
    ///   ]
    /// }
    /// ```
    pub fn from_json(doc: &Value) -> Result<Baselines, String> {
        let tolerance = doc["tolerance"]
            .as_f64()
            .ok_or("baselines: missing numeric `tolerance`")?;
        if !(0.0..1.0).contains(&tolerance) {
            return Err(format!("baselines: tolerance {tolerance} outside [0, 1)"));
        }
        let entries = doc["floors"]
            .as_array()
            .ok_or("baselines: missing `floors` array")?;
        if entries.is_empty() {
            return Err("baselines: `floors` is empty — the gate would check nothing".to_string());
        }
        let mut floors = Vec::with_capacity(entries.len());
        for entry in entries {
            let key = entry["key"]
                .as_str()
                .ok_or("baselines: floor entry missing string `key`")?;
            let min = entry["min_speedup"]
                .as_f64()
                .filter(|m| *m > 0.0)
                .ok_or_else(|| {
                    format!("baselines: floor {key:?} missing positive `min_speedup`")
                })?;
            floors.push((key.to_string(), min));
        }
        Ok(Baselines { tolerance, floors })
    }
}

/// Report-id suffixes the gate enforces: `_speedup` (ratio contracts),
/// `_qps` (absolute-throughput contracts — the serving front door's
/// concurrent QPS) and `_slo` (latency-headroom contracts — e.g. p99 under
/// the serving SLO, expressed as `slo / p99` so "bigger is better" holds
/// for every gated number).
pub const GATED_SUFFIXES: [&str; 3] = ["_speedup", "_qps", "_slo"];

/// Extracts every gated measurement from a `BENCH_walks.json` document:
/// each row of each report whose `id` ends in one of [`GATED_SUFFIXES`],
/// keyed as `"<report_id>/<row_label>"` with the row's first value.
pub fn collect_speedups(bench: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(reports) = bench["reports"].as_array() else {
        return out;
    };
    for report in reports {
        let Some(id) = report["id"].as_str() else {
            continue;
        };
        if !GATED_SUFFIXES.iter().any(|suffix| id.ends_with(suffix)) {
            continue;
        }
        let Some(rows) = report["rows"].as_array() else {
            continue;
        };
        for row in rows {
            if let (Some(label), Some(value)) = (row["label"].as_str(), row["values"][0].as_f64()) {
                out.push((format!("{id}/{label}"), value));
            }
        }
    }
    out
}

/// One floor comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct GateCheck {
    /// `"<report_id>/<row_label>"`.
    pub key: String,
    /// The committed floor.
    pub min_speedup: f64,
    /// `min_speedup × (1 − tolerance)` — the enforced threshold.
    pub effective_floor: f64,
    /// The measured speedup, or `None` when the key is absent from the
    /// bench report (which fails the check).
    pub measured: Option<f64>,
}

impl GateCheck {
    /// Whether this check passes.
    pub fn passed(&self) -> bool {
        self.measured.is_some_and(|m| m >= self.effective_floor)
    }

    /// One aligned human-readable line for the gate's output.
    pub fn render(&self) -> String {
        match self.measured {
            Some(m) => format!(
                "{}  {:<52} measured {m:>7.3}x  floor {:.3}x (≥ {:.3}x after {:.0}% tolerance)",
                if self.passed() { "PASS" } else { "FAIL" },
                self.key,
                self.min_speedup,
                self.effective_floor,
                (1.0 - self.effective_floor / self.min_speedup) * 100.0,
            ),
            None => format!(
                "FAIL  {:<52} missing from bench report (floor {:.3}x)",
                self.key, self.min_speedup
            ),
        }
    }
}

/// Compares every committed floor against the measured speedups.
pub fn evaluate(baselines: &Baselines, measured: &[(String, f64)]) -> Vec<GateCheck> {
    baselines
        .floors
        .iter()
        .map(|(key, min_speedup)| GateCheck {
            key: key.clone(),
            min_speedup: *min_speedup,
            effective_floor: min_speedup * (1.0 - baselines.tolerance),
            measured: measured
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, value)| *value),
        })
        .collect()
}

/// Measured speedup keys that have **no** committed floor. The gate fails on
/// these too: "every `*_speedup` row is enforced" is the contract, so a new
/// speedup report must land together with its `baselines.json` floor — an
/// unfloored speedup would otherwise be silently unprotected against
/// regression.
pub fn unfloored(baselines: &Baselines, measured: &[(String, f64)]) -> Vec<String> {
    measured
        .iter()
        .filter(|(key, _)| {
            !baselines
                .floors
                .iter()
                .any(|(floor_key, _)| floor_key == key)
        })
        .map(|(key, _)| key.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc() -> Value {
        Value::parse(
            r#"{
              "id": "bench_walks",
              "reports": [
                { "id": "freq_store", "rows": [ {"label": "flat", "values": [100.0]} ] },
                { "id": "freq_store_speedup",
                  "rows": [ {"label": "flat_over_nested", "values": [1.9]} ] },
                { "id": "transition_sampling_speedup",
                  "rows": [ {"label": "unweighted_ba", "values": [1.0]},
                            {"label": "skewed_ba", "values": [3.5]} ] },
                { "id": "serve_latency",
                  "rows": [ {"label": "callers_32", "values": [1.2]} ] },
                { "id": "serve_concurrent_qps",
                  "rows": [ {"label": "callers_32", "values": [12000.0]} ] },
                { "id": "serve_latency_slo",
                  "rows": [ {"label": "p99_under_50ms_slo", "values": [40.0]} ] }
              ]
            }"#,
        )
        .unwrap()
    }

    fn baselines_doc() -> Value {
        Value::parse(
            r#"{
              "tolerance": 0.2,
              "floors": [
                { "key": "freq_store_speedup/flat_over_nested", "min_speedup": 1.5 },
                { "key": "transition_sampling_speedup/skewed_ba", "min_speedup": 2.0 },
                { "key": "serve_concurrent_qps/callers_32", "min_speedup": 1000.0 },
                { "key": "serve_latency_slo/p99_under_50ms_slo", "min_speedup": 1.2 }
              ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn collects_only_gated_suffixes() {
        // `freq_store` (plain measurements) and `serve_latency`
        // (informational distribution) are skipped; `_speedup`, `_qps` and
        // `_slo` reports are all collected.
        let speedups = collect_speedups(&bench_doc());
        assert_eq!(
            speedups,
            vec![
                ("freq_store_speedup/flat_over_nested".to_string(), 1.9),
                ("transition_sampling_speedup/unweighted_ba".to_string(), 1.0),
                ("transition_sampling_speedup/skewed_ba".to_string(), 3.5),
                ("serve_concurrent_qps/callers_32".to_string(), 12000.0),
                ("serve_latency_slo/p99_under_50ms_slo".to_string(), 40.0),
            ]
        );
    }

    #[test]
    fn passing_floors_pass() {
        let baselines = Baselines::from_json(&baselines_doc()).unwrap();
        let checks = evaluate(&baselines, &collect_speedups(&bench_doc()));
        assert_eq!(checks.len(), 4);
        assert!(checks.iter().all(GateCheck::passed), "{checks:?}");
    }

    #[test]
    fn tolerance_absorbs_noise_but_not_regressions() {
        let baselines = Baselines::from_json(&baselines_doc()).unwrap();
        let rest = [
            ("transition_sampling_speedup/skewed_ba".to_string(), 2.0),
            ("serve_concurrent_qps/callers_32".to_string(), 12000.0),
            ("serve_latency_slo/p99_under_50ms_slo".to_string(), 40.0),
        ];
        // 1.25 is below the 1.5 floor but above 1.5 × 0.8 = 1.2: noise, pass.
        let mut measured = rest.to_vec();
        measured.push(("freq_store_speedup/flat_over_nested".to_string(), 1.25));
        let checks = evaluate(&baselines, &measured);
        assert!(checks.iter().all(GateCheck::passed));
        // 1.19 is below the effective floor: regression, fail.
        let mut measured = rest.to_vec();
        measured.insert(0, ("freq_store_speedup/flat_over_nested".to_string(), 1.19));
        let checks = evaluate(&baselines, &measured);
        assert!(!checks[0].passed());
        assert!(checks[1].passed());
        assert!(checks[0].render().starts_with("FAIL"));
    }

    #[test]
    fn unfloored_speedups_are_reported() {
        let baselines = Baselines::from_json(&baselines_doc()).unwrap();
        // `transition_sampling_speedup/unweighted_ba` is measured in the
        // bench doc but has no floor committed.
        let missing = unfloored(&baselines, &collect_speedups(&bench_doc()));
        assert_eq!(
            missing,
            vec!["transition_sampling_speedup/unweighted_ba".to_string()]
        );
        // With every measurement floored, nothing is reported.
        assert!(unfloored(
            &baselines,
            &[("freq_store_speedup/flat_over_nested".to_string(), 1.9)]
        )
        .is_empty());
    }

    #[test]
    fn missing_measurement_fails_the_gate() {
        let baselines = Baselines::from_json(&baselines_doc()).unwrap();
        let checks = evaluate(&baselines, &[]);
        assert!(checks.iter().all(|c| !c.passed()));
        assert!(checks[0].render().contains("missing"));
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        for bad in [
            r#"{}"#,
            r#"{"tolerance": 1.5, "floors": [{"key": "a", "min_speedup": 1.0}]}"#,
            r#"{"tolerance": 0.1, "floors": []}"#,
            r#"{"tolerance": 0.1, "floors": [{"key": "a"}]}"#,
            r#"{"tolerance": 0.1, "floors": [{"min_speedup": 2.0}]}"#,
            r#"{"tolerance": 0.1, "floors": [{"key": "a", "min_speedup": -1.0}]}"#,
        ] {
            let doc = Value::parse(bad).unwrap();
            assert!(Baselines::from_json(&doc).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn render_is_humane() {
        let baselines = Baselines::from_json(&baselines_doc()).unwrap();
        let checks = evaluate(&baselines, &collect_speedups(&bench_doc()));
        let line = checks[0].render();
        assert!(line.starts_with("PASS"), "{line}");
        assert!(line.contains("freq_store_speedup/flat_over_nested"));
        assert!(line.contains("1.900x"));
    }
}
