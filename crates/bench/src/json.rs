//! Minimal JSON value type and serializer for experiment reports.
//!
//! The build environment has no crates.io access, so `serde_json` is not
//! available; reports only ever need to *emit* JSON (never parse it), which
//! this small module covers.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (serialized via `f64`; integers print without a fraction).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// layout compatible with `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Number(x) => write_number(out, *x),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(x)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::Number(x as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Value::Object`] from `(key, value)` pairs.
pub fn object<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_round_trips_structure() {
        let v = object([
            ("name", Value::from("walks")),
            ("count", Value::from(3usize)),
            ("ratio", Value::from(0.5)),
            ("tags", Value::from(vec!["a", "b"])),
            ("empty", Value::Array(vec![])),
        ]);
        let text = v.to_string_pretty();
        assert!(text.contains("\"name\": \"walks\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"empty\": []"));
    }

    #[test]
    fn indexing_and_comparisons() {
        let v = object([("cols", Value::from(vec!["a", "b"]))]);
        assert_eq!(v["cols"][1], "b");
        assert_eq!(v["cols"].as_array().unwrap().len(), 2);
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["cols"][99], Value::Null);
    }

    #[test]
    fn escaping_and_non_finite() {
        let v = Value::String("a\"b\\c\nd".to_string());
        assert_eq!(v.to_string_pretty(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Value::Number(f64::NAN).to_string_pretty(), "null");
        assert_eq!(
            Value::Number(2e20).to_string_pretty(),
            "200000000000000000000"
        );
    }
}
