//! Minimal JSON value type, serializer and parser for experiment reports.
//!
//! The build environment has no crates.io access, so `serde_json` is not
//! available. Reports *emit* JSON through [`Value::to_string_pretty`]; the
//! bench regression gate *parses* `BENCH_walks.json` and the committed
//! baselines back in through [`Value::parse`] — a small recursive-descent
//! parser covering the full JSON grammar (sufficient for, and tested
//! against, everything the serializer can produce).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (serialized via `f64`; integers print without a fraction).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Parses a JSON document. Returns a human-readable error (with byte
    /// offset) on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// layout compatible with `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Number(x) => write_number(out, *x),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Error raised by [`Value::parse`]: what went wrong and the byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the malformed construct.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("malformed \\u escape"))?;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(lead) => {
                    // Consume one UTF-8 character. The input is a `&str` and
                    // this arm starts at a character boundary, so the lead
                    // byte alone determines the width — O(1), no
                    // re-validation of the remaining input.
                    let ch_len = match lead {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let rest = &self.bytes[self.pos..self.pos + ch_len];
                    out.push_str(std::str::from_utf8(rest).expect("input is valid UTF-8"));
                    self.pos += ch_len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|x| x.is_finite())
            .map(Value::Number)
            .ok_or_else(|| self.error("malformed number"))
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(x)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::Number(x as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Value::Object`] from `(key, value)` pairs.
pub fn object<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_round_trips_structure() {
        let v = object([
            ("name", Value::from("walks")),
            ("count", Value::from(3usize)),
            ("ratio", Value::from(0.5)),
            ("tags", Value::from(vec!["a", "b"])),
            ("empty", Value::Array(vec![])),
        ]);
        let text = v.to_string_pretty();
        assert!(text.contains("\"name\": \"walks\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"empty\": []"));
    }

    #[test]
    fn indexing_and_comparisons() {
        let v = object([("cols", Value::from(vec!["a", "b"]))]);
        assert_eq!(v["cols"][1], "b");
        assert_eq!(v["cols"].as_array().unwrap().len(), 2);
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["cols"][99], Value::Null);
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let v = object([
            ("name", Value::from("walks \"quoted\" \\ path\nline")),
            ("count", Value::from(3usize)),
            ("ratio", Value::from(-0.5)),
            ("big", Value::from(1.5e12)),
            ("flag", Value::from(true)),
            ("nothing", Value::Null),
            ("tags", Value::from(vec!["a", "b"])),
            ("empty_arr", Value::Array(vec![])),
            ("empty_obj", Value::Object(vec![])),
            (
                "nested",
                object([("rows", Value::from(vec![1.0, 2.25, 3.5]))]),
            ),
        ]);
        let parsed = Value::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_handles_multibyte_utf8_strings() {
        // The bench titles contain multi-byte characters ("Barabási–Albert");
        // the width-from-lead-byte fast path must walk them correctly.
        let v = Value::parse(r#"{"title": "Barabási–Albert ≥2x 🚀"}"#).unwrap();
        assert_eq!(v["title"], "Barabási–Albert ≥2x 🚀");
        let round_trip = Value::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(round_trip, v);
    }

    #[test]
    fn parse_accepts_compact_json() {
        let v = Value::parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"A"},"d":false}"#).unwrap();
        assert_eq!(v["a"][2].as_f64(), Some(-300.0));
        assert_eq!(v["b"]["c"], "A");
        assert_eq!(v["d"], Value::Bool(false));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"unterminated",
            "[1] trailing",
            "{\"a\": 1e999}",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
        let err = Value::parse("[1, }").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn escaping_and_non_finite() {
        let v = Value::String("a\"b\\c\nd".to_string());
        assert_eq!(v.to_string_pretty(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Value::Number(f64::NAN).to_string_pretty(), "null");
        assert_eq!(
            Value::Number(2e20).to_string_pretty(),
            "200000000000000000000"
        );
    }
}
