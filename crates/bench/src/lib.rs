//! Shared infrastructure for the experiment harness and the Criterion
//! micro-benchmarks: dataset stand-ins at benchmark scale, table formatting,
//! JSON result export/parsing, and the CI throughput-regression gate.

pub mod datasets;
pub mod gate;
pub mod json;
pub mod report;

pub use datasets::{bench_dataset, labelled_dataset, BenchScale};
pub use gate::{collect_speedups, evaluate, unfloored, Baselines, GateCheck};
pub use report::{Report, Row};
