//! Shared infrastructure for the experiment harness and the Criterion
//! micro-benchmarks: dataset stand-ins at benchmark scale, table formatting,
//! and JSON result export.

pub mod datasets;
pub mod json;
pub mod report;

pub use datasets::{bench_dataset, labelled_dataset, BenchScale};
pub use report::{Report, Row};
