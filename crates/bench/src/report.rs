//! Minimal table/JSON reporting for the experiment harness.

use std::fmt::Write as _;

/// One labelled row of numeric cells.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (e.g. a dataset or system name).
    pub label: String,
    /// Cell values in column order.
    pub values: Vec<f64>,
}

/// A named table with column headers, printable as text and exportable as
/// JSON for EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment identifier (e.g. "figure5").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers (not counting the row label).
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Renders the report as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let label_width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let _ = write!(out, "{:<width$}", "", width = label_width + 2);
        for c in &self.columns {
            let _ = write!(out, "{c:>16}");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{:<width$}", row.label, width = label_width + 2);
            for v in &row.values {
                if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    let _ = write!(out, "{v:>16.3e}");
                } else {
                    let _ = write!(out, "{v:>16.3}");
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the report as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = write!(out, "| |");
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.columns {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "| {} |", row.label);
            for v in &row.values {
                let _ = write!(out, " {v:.3} |");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serializes the report to a JSON value.
    pub fn to_json(&self) -> crate::json::Value {
        use crate::json::{object, Value};
        object([
            ("id", Value::from(self.id.clone())),
            ("title", Value::from(self.title.clone())),
            ("columns", Value::from(self.columns.clone())),
            (
                "rows",
                Value::Array(
                    self.rows
                        .iter()
                        .map(|r| {
                            object([
                                ("label", Value::from(r.label.clone())),
                                ("values", Value::from(r.values.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t1", "sample", &["a", "b"]);
        r.push("x", vec![1.0, 2.0]);
        r.push("longer-label", vec![3.5, 4_000.0]);
        r
    }

    #[test]
    fn text_render_contains_all_cells() {
        let text = sample().to_text();
        assert!(text.contains("t1"));
        assert!(text.contains("longer-label"));
        assert!(text.contains("1.000"));
        assert!(text.contains("4.000e3"));
    }

    #[test]
    fn markdown_and_json_render() {
        let r = sample();
        let md = r.to_markdown();
        assert!(md.contains("| x | 1.000 | 2.000 |"));
        let json = r.to_json();
        assert_eq!(json["rows"].as_array().unwrap().len(), 2);
        assert_eq!(json["columns"][1], "b");
    }
}
