//! Property test of trace-export well-formedness (ISSUE 9): for randomized
//! pipeline runs with tracing enabled, the exported Chrome trace-event JSON
//! must always be well-formed — valid JSON under the repo's own parser,
//! every `B` (begin) matched by a properly nested `E` (end) of the same name
//! on its `(pid, tid)` timeline, and strictly monotonic per-thread
//! timestamps.
//!
//! This file holds *only* tracing tests: the tracing flag is process-global,
//! so sharing a test binary with tests that assume tracing-off would race
//! under the parallel test runner. Proptest runs its cases sequentially
//! within the one `#[test]`, and every case drains the rings before and
//! after itself.

use distger_bench::json::Value;
use distger_core::{launch_over_loopback, run_pipeline, DistGerConfig, JobSpec};
use distger_graph::barabasi_albert;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;

/// The tracing flag and the ring registry are process-global, and the two
/// `#[test]` functions below run on parallel test threads: each case takes
/// this lock so one test's `drain_all` never steals the other's in-flight
/// events.
static TRACING: Mutex<()> = Mutex::new(());

/// Asserts the well-formedness properties over an exported trace string.
fn assert_well_formed(json: &str, context: &str) {
    let root = Value::parse(json).unwrap_or_else(|e| panic!("{context}: invalid JSON: {e}"));
    let events = root["traceEvents"]
        .as_array()
        .unwrap_or_else(|| panic!("{context}: missing traceEvents"));
    assert!(!events.is_empty(), "{context}: no events recorded");

    let mut stacks: HashMap<(i64, i64), Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<(i64, i64), f64> = HashMap::new();
    for (i, event) in events.iter().enumerate() {
        let name = event["name"]
            .as_str()
            .unwrap_or_else(|| panic!("{context}: event {i} has no name"));
        let ph = event["ph"]
            .as_str()
            .unwrap_or_else(|| panic!("{context}: event {i} has no ph"));
        let ts = event["ts"]
            .as_f64()
            .unwrap_or_else(|| panic!("{context}: event {i} has no ts"));
        let pid = event["pid"].as_f64().expect("pid") as i64;
        let tid = event["tid"].as_f64().expect("tid") as i64;
        let thread = (pid, tid);
        if let Some(&prev) = last_ts.get(&thread) {
            assert!(
                ts > prev,
                "{context}: event {i} ({name}) ts {ts} not strictly after {prev} \
                 on pid {pid} tid {tid}"
            );
        }
        last_ts.insert(thread, ts);
        let stack = stacks.entry(thread).or_default();
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => {
                let open = stack
                    .pop()
                    .unwrap_or_else(|| panic!("{context}: event {i} ends '{name}' with no begin"));
                assert_eq!(
                    open, name,
                    "{context}: event {i} ends '{name}' but '{open}' is open"
                );
            }
            "i" => {}
            other => panic!("{context}: event {i} has unknown phase '{other}'"),
        }
    }
    for ((pid, tid), stack) in &stacks {
        assert!(
            stack.is_empty(),
            "{context}: pid {pid} tid {tid} left spans open: {stack:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// In-process pipeline runs of random shape always export a well-formed
    /// trace, and the rings drain to empty afterwards.
    #[test]
    fn pipeline_trace_export_is_well_formed(
        seed in 0u64..1_000,
        machines in 1usize..5,
        nodes in 80usize..200,
    ) {
        let _guard = TRACING.lock().unwrap_or_else(|e| e.into_inner());
        distger_obs::drain_all();
        distger_obs::set_tracing(true);
        let graph = barabasi_albert(nodes, 3, seed);
        let config = DistGerConfig::distger(machines).small().with_seed(seed);
        let result = run_pipeline(&graph, &config);
        distger_obs::set_tracing(false);
        let events = distger_obs::drain_all();
        prop_assert!(result.corpus_tokens > 0);
        let json = distger_obs::chrome_trace_json(&events);
        assert_well_formed(&json, &format!("pipeline seed={seed} machines={machines}"));
        prop_assert!(distger_obs::drain_all().is_empty(), "rings must drain to empty");
    }

    /// Multi-endpoint loopback launches (the cross-process merge path:
    /// workers ship event batches through `gather_trace_events`, the
    /// coordinator absorbs them) always produce a well-formed merged trace
    /// covering every endpoint.
    #[test]
    fn merged_loopback_trace_is_well_formed(
        seed in 0u64..1_000,
        workers in 1usize..4,
    ) {
        let _guard = TRACING.lock().unwrap_or_else(|e| e.into_inner());
        distger_obs::drain_all();
        let spec = JobSpec {
            graph_nodes: 120,
            machines: 4,
            seed,
            trace: true,
            ..JobSpec::default()
        };
        let report = launch_over_loopback(&spec, workers);
        distger_obs::set_tracing(false);
        distger_obs::drain_all();
        let mut pids: Vec<u32> = report.trace.iter().map(|e| e.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        prop_assert_eq!(
            pids.len(),
            workers + 1,
            "merged trace must cover every endpoint"
        );
        let json = distger_obs::chrome_trace_json(&report.trace);
        assert_well_formed(&json, &format!("loopback seed={seed} workers={workers}"));
    }
}
