//! Bulk Synchronous Parallel execution over simulated machines.
//!
//! KnightKing (§2.2) coordinates walkers with the BSP model \[56\]: in every
//! superstep each machine processes the messages addressed to it and emits
//! messages for the next superstep; machines synchronize at the superstep
//! boundary. [`run_bsp`] reproduces this scheme with one OS thread per
//! machine — by default a **persistent worker pool** created once per
//! invocation and reused for every superstep ([`ExecutionBackend::Pool`],
//! see [`pool`](crate::pool)); the original spawn-one-thread-per-machine-
//! per-superstep scheme is retained as [`ExecutionBackend::SpawnPerStep`]
//! and selectable through [`run_bsp_with`]. Every cross-machine message is
//! accounted through [`CommStats`], and the coordination overhead of the
//! superstep boundaries themselves is reported as
//! [`BspOutcome::sync_secs`].
//!
//! The message queues are **double-buffered**: every machine owns a
//! persistent [`Outbox`] whose per-destination queues survive across
//! supersteps, and inboxes are refilled by *moving* messages out of those
//! queues at the superstep boundary ([`Vec::append`] keeps both allocations
//! alive). After the first few supersteps the exchange runs without any
//! queue reallocation — the steady state is allocation-free. Both backends
//! perform the exchange in the same machine order, so inbox contents — and
//! therefore entire runs — are bit-identical between them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::comm::{CommStats, MessageSize};
use crate::fault::{panic_message, FaultInjector, RecoveryExhausted, RecoveryPolicy};
use crate::pool::{run_rounds, ExecutionBackend};
use crate::transport::{InMemoryTransport, Transport};
use crate::MachineId;

/// Per-machine outgoing message buffer handed to the step function.
///
/// Outboxes persist across supersteps; their queues are drained (not
/// dropped) at every superstep boundary so queue capacity is reused.
pub struct Outbox<M> {
    owner: MachineId,
    pub(crate) queues: Vec<Vec<M>>,
    pub(crate) stats: CommStats,
}

impl<M: MessageSize> Outbox<M> {
    /// An empty outbox for machine `owner` in a `num_machines`-machine job.
    /// Public so out-of-process drivers (the walks crate's distributed round
    /// loop) can own their machines' outboxes and hand them to a
    /// [`Transport`].
    pub fn new(owner: MachineId, num_machines: usize) -> Self {
        Self {
            owner,
            queues: (0..num_machines).map(|_| Vec::new()).collect(),
            stats: CommStats::new(),
        }
    }

    /// Communication statistics accumulated by this outbox.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Queues `msg` for delivery to machine `to` at the next superstep.
    /// Messages to the owner machine itself are delivered but not counted as
    /// cross-machine traffic.
    pub fn send(&mut self, to: MachineId, msg: M) {
        if to != self.owner {
            self.stats.record_message(msg.size_bytes());
        } else {
            self.stats.record_local_step();
        }
        self.queues[to].push(msg);
    }

    /// Records a unit of work that completed without any message (e.g. a walk
    /// step whose destination stayed on this machine).
    pub fn record_local_step(&mut self) {
        self.stats.record_local_step();
    }

    /// The machine that owns this outbox.
    pub fn owner(&self) -> MachineId {
        self.owner
    }
}

/// Messages delivered to one machine at the start of a superstep.
///
/// The messages are drained out of the machine's persistent inbox so the
/// inbox allocation is reused by the next superstep (any message left
/// unconsumed is dropped when the mailbox goes out of scope).
pub struct Mailbox<'a, M> {
    /// The messages, in arbitrary order.
    pub messages: std::vec::Drain<'a, M>,
}

/// Result of a BSP run.
#[derive(Debug)]
pub struct BspOutcome<S> {
    /// Final per-machine states, indexed by machine id.
    pub states: Vec<S>,
    /// Aggregated communication statistics over all machines and supersteps.
    pub comm: CommStats,
    /// Number of supersteps executed.
    pub supersteps: u64,
    /// Thread-coordination overhead of the superstep boundaries. For the
    /// pooled backends this is **measured from barrier waits**
    /// ([`PoolStats::sync_secs`](crate::pool::PoolStats::sync_secs)): the
    /// coordinator's round-start waits plus the minimum worker's round-end
    /// waits, i.e. the barrier-crossing cost with straggler slack (compute
    /// imbalance) excluded. For spawn-per-step — which has no barrier to
    /// measure — it remains the historical wall-minus-slowest inference of
    /// the spawn/join cost the pool exists to eliminate; the pool regression
    /// test pins both accountings to agree within scheduling noise. The
    /// message exchange itself runs on the coordinator between supersteps
    /// and is not included (it is identical work under both backends).
    pub sync_secs: f64,
    /// OS threads spawned over the run: `machines` for the pooled backends
    /// (including the whole multi-round loop of [`run_bsp_round_loop`]),
    /// `machines × supersteps` for [`ExecutionBackend::SpawnPerStep`].
    pub spawn_count: u64,
}

/// Runs BSP supersteps until no machine has pending messages, on the default
/// [`ExecutionBackend::Pool`]. See [`run_bsp_with`].
pub fn run_bsp<S, M, F>(
    states: Vec<S>,
    initial: Vec<Vec<M>>,
    max_supersteps: u64,
    step: F,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
{
    run_bsp_with(
        ExecutionBackend::Pool,
        states,
        initial,
        max_supersteps,
        step,
    )
}

/// Runs BSP supersteps until no machine has pending messages.
///
/// * `backend` — how machine threads are managed across supersteps:
///   a persistent worker pool ([`ExecutionBackend::Pool`], the default used
///   by [`run_bsp`]; [`ExecutionBackend::RoundLoop`] is identical for a
///   *single* invocation — its run-scoped behaviour only differs when a
///   multi-round caller drives all rounds through [`run_bsp_round_loop`])
///   or one fresh thread per machine per superstep
///   ([`ExecutionBackend::SpawnPerStep`], the reference).
/// * `states` — one mutable state per machine (e.g. its graph partition plus
///   local walker bookkeeping).
/// * `initial` — initial messages per machine (superstep 0 input).
/// * `step` — called once per machine per superstep as
///   `step(machine, &mut state, mailbox, &mut outbox)`; it may emit messages
///   to any machine through the outbox.
///
/// Machines run concurrently within a superstep; the superstep boundary is a
/// barrier (a [`pool::EpochBarrier`](crate::pool::EpochBarrier) generation
/// for the pool, a thread join for spawn-per-step). Both backends produce
/// bit-identical message schedules and final states.
///
/// # Panics
/// Panics if `states.len() != initial.len()`, if there are zero machines, or
/// if the run exceeds `max_supersteps` (a runaway-loop guard). A panic inside
/// `step` propagates to the caller with either backend; the pool's poisoned
/// barrier guarantees the surviving workers shut down instead of
/// deadlocking.
pub fn run_bsp_with<S, M, F>(
    backend: ExecutionBackend,
    states: Vec<S>,
    initial: Vec<Vec<M>>,
    max_supersteps: u64,
    step: F,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
{
    let num_machines = states.len();
    assert!(num_machines > 0, "need at least one machine");
    assert_eq!(states.len(), initial.len(), "one inbox per machine");
    match backend {
        ExecutionBackend::RoundLoop | ExecutionBackend::Pool => {
            run_bsp_pooled(states, initial, max_supersteps, step)
        }
        ExecutionBackend::SpawnPerStep => {
            run_bsp_spawn_per_step(states, initial, max_supersteps, step)
        }
    }
}

/// One machine's mutable triple. Workers lock their own slot during the
/// compute phase and the coordinator locks slots during the exchange phase;
/// the phases never overlap (the pool barrier separates them), so the
/// mutexes exist to satisfy the borrow checker and are never contended.
struct MachineSlot<S, M> {
    state: S,
    inbox: Vec<M>,
    outbox: Outbox<M>,
}

/// Superstep boundary for the pooled backends, routed through the machine's
/// [`Transport`]: lock every slot (the coordinator has exclusive access —
/// workers are parked at the barrier), project the guards into outbox/inbox
/// reference slices, and let the transport move the queues. For the
/// in-process engine the transport is always [`InMemoryTransport`], which
/// delivers each inbox's messages in ascending source order — exactly like
/// the spawn-per-step boundary — so inbox contents are bit-identical across
/// backends. `append` transfers elements and keeps both allocations.
fn exchange_messages<S, M: MessageSize>(
    transport: &mut InMemoryTransport,
    slots: &[Mutex<MachineSlot<S, M>>],
    superstep: u64,
) {
    // Safety of the unwraps: the exchange runs in the coordinator's
    // exclusive control phase with every worker parked at the barrier, and a
    // worker panic poisons the barrier before the coordinator can get here —
    // the locks are never contended and never poisoned.
    let mut guards: Vec<_> = slots.iter().map(|slot| slot.lock().unwrap()).collect();
    let mut outboxes: Vec<&mut Outbox<M>> = Vec::with_capacity(guards.len());
    let mut inboxes: Vec<&mut Vec<M>> = Vec::with_capacity(guards.len());
    for guard in guards.iter_mut() {
        let slot = &mut **guard;
        outboxes.push(&mut slot.outbox);
        inboxes.push(&mut slot.inbox);
    }
    transport
        .exchange(superstep, &mut outboxes, &mut inboxes)
        .expect("the in-memory transport is infallible");
}

/// The pool backend: `num_machines` persistent worker threads, one pinned to
/// each machine index, separated from the coordinator's exchange phase by a
/// reusable two-phase barrier (see [`pool::run_rounds`](crate::pool::run_rounds)).
///
/// A single BSP invocation is exactly a one-round round loop, so this is a
/// thin wrapper over [`run_bsp_round_loop`]: seed `initial` at the first
/// boundary, stop at the second. Keeping one copy of the coordinator
/// (exchange order, pending check, superstep cap) is what makes the
/// per-round and run-scoped backends bit-identical by construction.
fn run_bsp_pooled<S, M, F>(
    states: Vec<S>,
    initial: Vec<Vec<M>>,
    max_supersteps: u64,
    step: F,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
{
    let mut initial = Some(initial);
    run_bsp_round_loop(states, max_supersteps, step, move |_states| initial.take())
}

/// Runs a **multi-round** BSP computation on one run-scoped worker pool: the
/// entire round loop — every superstep of every round — executes inside a
/// single [`run_rounds`] invocation, so exactly
/// `machines` threads are spawned for the whole run no matter how many
/// rounds the caller's convergence logic ends up executing. This is the
/// driver behind [`ExecutionBackend::RoundLoop`]; a per-round driver calling
/// [`run_bsp`] in a loop pays `machines × rounds` spawns instead.
///
/// Within a round, supersteps run exactly as in [`run_bsp`] (same message
/// exchange, same ascending-machine order, bit-identical schedules). When a
/// round drains — no machine has pending messages — the coordinator calls
/// `boundary` **exclusively**, with every worker parked at the barrier and
/// mutable access to all machine states. The callback harvests whatever the
/// finished round produced, runs its convergence logic, and either returns
/// the next round's initial per-machine messages (`Some(inboxes)`) or ends
/// the run (`None`). This is the early-termination handshake: because the
/// decision executes in a control phase, the coordinator simply stops
/// scheduling further generations and the pool releases the workers once
/// more to observe the stop flag — no participant can be left blocked on
/// the barrier.
///
/// `boundary` is first called before any superstep ran (states untouched) to
/// seed round 0. A round seeded with all-empty inboxes is skipped without
/// burning a barrier generation — the callback is invoked again immediately,
/// so a caller that never seeds and never returns `None` would spin; return
/// `None` to stop.
///
/// The outcome aggregates over all rounds: `comm` sums traffic,
/// [`BspOutcome::supersteps`] is the total across rounds, and
/// `comm.supersteps` is the **maximum supersteps of any single round** — the
/// same value a per-round driver accumulates through [`CommStats::merge`]'s
/// max semantics, so multi-round statistics are directly comparable across
/// backends. `max_supersteps` caps each round individually, exactly like one
/// `run_bsp` call per round.
///
/// # Panics
/// Panics if there are zero machines, if a round exceeds `max_supersteps`,
/// or if `step`/`boundary` panics (the pool's poisoned barrier guarantees an
/// orderly shutdown before the payload propagates).
pub fn run_bsp_round_loop<S, M, F, C>(
    states: Vec<S>,
    max_supersteps: u64,
    step: F,
    mut boundary: C,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
    C: FnMut(&mut [&mut S]) -> Option<Vec<Vec<M>>>,
{
    run_bsp_round_loop_with(
        states,
        max_supersteps,
        step,
        |states, _comm| boundary(states),
        None,
    )
}

/// [`run_bsp_round_loop`] with the two hooks the fault-tolerance layer
/// needs; the plain variant delegates here with both disabled, so the
/// default path pays nothing.
///
/// * **Comm-aware boundary** — the callback additionally receives the
///   communication statistics accumulated *so far in this invocation*
///   (traffic summed over all machines; `supersteps` is the max of any
///   completed round). A checkpointing caller must persist traffic totals at
///   the round boundary: a later crash discards the machine slots — and the
///   partial round's traffic with them — so the statistics cannot be
///   reconstructed after the fact.
/// * **Fault injection** — when `faults` is `Some`, every worker calls
///   [`trip(machine, round, superstep)`](FaultInjector::trip) at the top of
///   its compute phase, with 0-based round/superstep coordinates published
///   by the coordinator (the barrier orders the writes before the reads).
///   The trip runs *before* the worker locks its slot, so an injected panic
///   poisons the barrier — exactly like a real crash — but never the slot
///   mutex.
pub fn run_bsp_round_loop_with<S, M, F, C>(
    states: Vec<S>,
    max_supersteps: u64,
    step: F,
    mut boundary: C,
    faults: Option<&FaultInjector>,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
    C: FnMut(&mut [&mut S], &CommStats) -> Option<Vec<Vec<M>>>,
{
    let num_machines = states.len();
    assert!(num_machines > 0, "need at least one machine");
    // The in-process engine always exchanges through the in-memory
    // transport; out-of-process runs use their own driver (see the walks
    // crate's distributed round loop) with a `SocketTransport`.
    let mut transport = InMemoryTransport::new(num_machines);
    let slots: Vec<Mutex<MachineSlot<S, M>>> = states
        .into_iter()
        .enumerate()
        .map(|(machine, state)| {
            Mutex::new(MachineSlot {
                state,
                inbox: Vec::new(),
                outbox: Outbox::new(machine, num_machines),
            })
        })
        .collect();

    let mut total_supersteps: u64 = 0;
    let mut round_supersteps: u64 = 0;
    let mut max_round_supersteps: u64 = 0;
    // Rounds seeded so far; `cur_round`/`cur_superstep` publish the 0-based
    // coordinates of the superstep about to run, written by the coordinator
    // and read by the workers for fault injection (Relaxed suffices: the
    // round-start barrier crossing orders the store before the loads).
    let mut seeded_rounds: u64 = 0;
    let cur_round = AtomicU64::new(0);
    let cur_superstep = AtomicU64::new(0);

    // Safety of the slot-lock unwraps below: a slot mutex is only ever
    // locked by its pinned worker during the compute phase and by the
    // coordinator during the exclusive control phase, which the pool barrier
    // strictly alternates — so the locks are never contended. Nor can they
    // be poisoned here: a worker that panics inside `step` poisons the
    // *barrier* during unwinding, the coordinator's next wait fails, and the
    // panic is re-raised from the join before any of these sites runs again.
    let stats = run_rounds(
        num_machines,
        |generation| {
            // Exchange phase for the superstep that just finished (a no-op
            // right after a round boundary: all outboxes are drained).
            if generation > 0 {
                let _span = distger_obs::span!("exchange", round = total_supersteps);
                exchange_messages(&mut transport, &slots, total_supersteps);
            }
            let pending = slots
                .iter()
                .any(|slot| !slot.lock().unwrap().inbox.is_empty());
            if pending {
                assert!(
                    round_supersteps < max_supersteps,
                    "BSP exceeded {max_supersteps} supersteps — runaway walk?"
                );
                round_supersteps += 1;
                total_supersteps += 1;
                cur_superstep.store(round_supersteps - 1, Ordering::Relaxed);
                return true;
            }
            // Round boundary: every inbox drained, so the previous round (if
            // any) is complete. Hand exclusive state access to the caller,
            // which either seeds the next round or ends the run.
            max_round_supersteps = max_round_supersteps.max(round_supersteps);
            round_supersteps = 0;
            let mut guards: Vec<_> = slots.iter().map(|slot| slot.lock().unwrap()).collect();
            // Traffic accumulated over all completed rounds of this
            // invocation (partial rounds cannot reach a boundary).
            let mut comm_so_far = CommStats::new();
            for guard in guards.iter() {
                comm_so_far.merge(&guard.outbox.stats);
            }
            comm_so_far.supersteps = max_round_supersteps;
            loop {
                let mut states: Vec<&mut S> =
                    guards.iter_mut().map(|guard| &mut guard.state).collect();
                let seeds = boundary(&mut states, &comm_so_far);
                drop(states);
                let Some(mut seeds) = seeds else {
                    return false;
                };
                assert_eq!(seeds.len(), num_machines, "one seed inbox per machine");
                let mut seeded = false;
                for (guard, seed) in guards.iter_mut().zip(seeds.iter_mut()) {
                    seeded |= !seed.is_empty();
                    guard.inbox.append(seed);
                }
                if seeded {
                    assert!(
                        max_supersteps > 0,
                        "BSP exceeded {max_supersteps} supersteps — runaway walk?"
                    );
                    round_supersteps = 1;
                    total_supersteps += 1;
                    cur_round.store(seeded_rounds, Ordering::Relaxed);
                    cur_superstep.store(0, Ordering::Relaxed);
                    seeded_rounds += 1;
                    return true;
                }
                // All-empty seeds: retry the boundary instead of running a
                // no-op superstep generation.
            }
        },
        |machine, _generation| {
            if let Some(injector) = faults {
                injector.trip(
                    machine,
                    cur_round.load(Ordering::Relaxed),
                    cur_superstep.load(Ordering::Relaxed),
                );
            }
            let mut slot = slots[machine].lock().unwrap();
            let slot = &mut *slot;
            let mailbox = Mailbox {
                messages: slot.inbox.drain(..),
            };
            step(machine, &mut slot.state, mailbox, &mut slot.outbox);
        },
    );

    let mut comm = CommStats::new();
    let mut states = Vec::with_capacity(num_machines);
    for slot in slots {
        // Safety of the unwrap: reaching this line means `run_rounds`
        // returned normally, so no participant panicked while holding a slot
        // (a worker panic would have re-raised from the join above).
        let slot = slot.into_inner().unwrap();
        comm.merge(&slot.outbox.stats);
        states.push(slot.state);
    }
    comm.supersteps = max_round_supersteps;
    BspOutcome {
        states,
        comm,
        supersteps: total_supersteps,
        sync_secs: stats.sync_secs,
        spawn_count: stats.spawn_count,
    }
}

/// Supervised wrapper around [`run_bsp_round_loop_with`]: catches a poisoned
/// run, lets the caller restore its coordinator state from the latest valid
/// checkpoint, rebuilds the worker pool, and retries under a bounded
/// [`RecoveryPolicy`] with capped exponential backoff.
///
/// The division of labour follows from what survives a crash. Machine slots
/// (per-machine states, in-flight messages, outbox statistics) die with the
/// poisoned pool; only the caller's coordinator context `ctx` — everything
/// harvested at round boundaries — survives. So:
///
/// * `restore(ctx, attempt)` opens every attempt (`attempt` is 0 for the
///   first). It rolls `ctx` back to the latest checkpoint (for attempt 0, the
///   initial state) and returns **fresh per-machine states** for the new
///   pool.
/// * `boundary(ctx, states, comm)` is the comm-aware round boundary of
///   [`run_bsp_round_loop_with`], additionally given `ctx` — this is where a
///   caller harvests the finished round into `ctx` and snapshots it.
/// * A panic anywhere in the attempt (worker step, boundary, injected fault)
///   is caught; if the policy allows another attempt the supervisor backs
///   off and retries, otherwise it returns [`RecoveryExhausted`] carrying
///   the last panic message.
///
/// The returned [`BspOutcome`] is the successful attempt's: its `comm`
/// covers only that attempt's rounds, so a restoring caller merges it with
/// the checkpointed statistics ([`CommStats::merge`] sums traffic and takes
/// the max of the per-round superstep peaks, which composes correctly across
/// the attempt boundary).
pub fn run_bsp_supervised<T, S, M, F, R, C>(
    policy: RecoveryPolicy,
    ctx: &mut T,
    mut restore: R,
    max_supersteps: u64,
    step: F,
    mut boundary: C,
    faults: Option<&FaultInjector>,
) -> Result<BspOutcome<S>, RecoveryExhausted>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
    R: FnMut(&mut T, u32) -> Vec<S>,
    C: FnMut(&mut T, &mut [&mut S], &CommStats) -> Option<Vec<Vec<M>>>,
{
    let mut attempt: u32 = 0;
    loop {
        let states = restore(ctx, attempt);
        // AssertUnwindSafe: on a caught panic the closure's captures are
        // only touched again *after* `restore` rolled `ctx` back to a
        // checkpointed (consistent) state — crash-time partial mutations of
        // `ctx` are discarded, which is the whole point of the protocol.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_bsp_round_loop_with(
                states,
                max_supersteps,
                &step,
                |states, comm| boundary(ctx, states, comm),
                faults,
            )
        }));
        match result {
            Ok(outcome) => return Ok(outcome),
            Err(payload) => {
                attempt += 1;
                let last_panic = panic_message(payload.as_ref());
                if attempt > policy.max_retries {
                    distger_obs::instant("recovery_exhausted", -1, -1);
                    return Err(RecoveryExhausted {
                        attempts: attempt,
                        last_panic,
                    });
                }
                distger_obs::instant("recovery_attempt", -1, attempt as i64);
                std::thread::sleep(policy.backoff_for(attempt));
            }
        }
    }
}

/// The reference backend: one fresh OS thread per machine per superstep, the
/// superstep boundary being the thread join.
fn run_bsp_spawn_per_step<S, M, F>(
    states: Vec<S>,
    initial: Vec<Vec<M>>,
    max_supersteps: u64,
    step: F,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
{
    let num_machines = states.len();
    let mut states = states;
    let mut inboxes: Vec<Vec<M>> = initial;
    // One persistent outbox per machine: queue capacity is recycled across
    // supersteps instead of reallocated.
    let mut outboxes: Vec<Outbox<M>> = (0..num_machines)
        .map(|machine| Outbox::new(machine, num_machines))
        .collect();
    let mut supersteps: u64 = 0;
    let mut sync_secs = 0.0f64;
    // Per-machine compute time of the current superstep, for the same
    // `wall - slowest` overhead accounting the pool backend reports.
    let compute_nanos: Vec<AtomicU64> = (0..num_machines).map(|_| AtomicU64::new(0)).collect();

    while inboxes.iter().any(|q| !q.is_empty()) {
        assert!(
            supersteps < max_supersteps,
            "BSP exceeded {max_supersteps} supersteps — runaway walk?"
        );
        supersteps += 1;

        // Run every machine on its own freshly spawned scoped thread.
        let step_ref = &step;
        let superstep_started = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .iter_mut()
                .zip(inboxes.iter_mut())
                .zip(outboxes.iter_mut())
                .enumerate()
                .map(|(machine, ((state, inbox), outbox))| {
                    let slot = &compute_nanos[machine];
                    scope.spawn(move || {
                        let started = Instant::now();
                        let mailbox = Mailbox {
                            messages: inbox.drain(..),
                        };
                        step_ref(machine, state, mailbox, outbox);
                        slot.store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("BSP worker thread panicked");
            }
        });
        let wall = superstep_started.elapsed().as_secs_f64();
        let slowest = compute_nanos
            .iter()
            .map(|nanos| nanos.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0) as f64
            / 1e9;
        sync_secs += (wall - slowest).max(0.0);

        // Superstep boundary: move queued messages into the (now empty)
        // inboxes. `append` transfers elements and keeps both allocations.
        for outbox in &mut outboxes {
            for (to, queue) in outbox.queues.iter_mut().enumerate() {
                inboxes[to].append(queue);
            }
        }
    }

    let mut comm = CommStats::new();
    for outbox in &outboxes {
        comm.merge(&outbox.stats);
    }
    comm.supersteps = supersteps;
    BspOutcome {
        states,
        comm,
        supersteps,
        sync_secs,
        spawn_count: num_machines as u64 * supersteps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A token that hops `remaining` more times round-robin across machines.
    struct Token {
        remaining: u32,
    }

    impl MessageSize for Token {
        fn size_bytes(&self) -> usize {
            16
        }
    }

    const BACKENDS: [ExecutionBackend; 3] = [
        ExecutionBackend::RoundLoop,
        ExecutionBackend::Pool,
        ExecutionBackend::SpawnPerStep,
    ];

    #[test]
    fn token_ring_counts_messages_on_both_backends() {
        for backend in BACKENDS {
            let machines = 4;
            let states: Vec<u64> = vec![0; machines]; // counts tokens seen
            let initial: Vec<Vec<Token>> = (0..machines)
                .map(|m| {
                    if m == 0 {
                        vec![Token { remaining: 7 }]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let outcome = run_bsp_with(
                backend,
                states,
                initial,
                1000,
                |machine, state, mailbox, outbox| {
                    for token in mailbox.messages {
                        *state += 1;
                        if token.remaining > 0 {
                            let next = (machine + 1) % machines;
                            outbox.send(
                                next,
                                Token {
                                    remaining: token.remaining - 1,
                                },
                            );
                        }
                    }
                },
            );
            // The token visits 8 machines in total (initial + 7 hops).
            assert_eq!(outcome.states.iter().sum::<u64>(), 8);
            assert_eq!(outcome.comm.messages, 7);
            assert_eq!(outcome.comm.bytes, 7 * 16);
            assert_eq!(outcome.supersteps, 8);
            assert!(outcome.sync_secs >= 0.0, "{}", backend.name());
        }
    }

    /// The exchange order — and therefore the inbox message order every step
    /// function observes — must be identical across backends.
    #[test]
    fn backends_deliver_identical_message_orders() {
        // Every machine floods every machine for a few supersteps; states
        // record the exact observation order as (superstep, payload) pairs.
        let run = |backend| {
            let machines = 3;
            let states: Vec<Vec<u32>> = vec![Vec::new(); machines];
            let initial: Vec<Vec<Token>> = (0..machines)
                .map(|m| {
                    vec![Token {
                        remaining: 3 + m as u32,
                    }]
                })
                .collect();
            run_bsp_with(
                backend,
                states,
                initial,
                100,
                |machine, state, mailbox, outbox| {
                    for token in mailbox.messages {
                        state.push(token.remaining);
                        if token.remaining > 0 {
                            outbox.send(
                                (machine + 1) % machines,
                                Token {
                                    remaining: token.remaining - 1,
                                },
                            );
                            outbox.send(
                                (machine + 2) % machines,
                                Token {
                                    remaining: token.remaining - 1,
                                },
                            );
                        }
                    }
                },
            )
        };
        let pool = run(ExecutionBackend::Pool);
        let spawn = run(ExecutionBackend::SpawnPerStep);
        assert_eq!(pool.states, spawn.states);
        assert_eq!(pool.comm, spawn.comm);
        assert_eq!(pool.supersteps, spawn.supersteps);
    }

    #[test]
    fn self_messages_are_local() {
        let states = vec![0u64, 0u64];
        let initial = vec![vec![Token { remaining: 3 }], vec![]];
        let outcome = run_bsp(states, initial, 100, |machine, state, mailbox, outbox| {
            for token in mailbox.messages {
                *state += 1;
                if token.remaining > 0 {
                    // Always send to self: no cross-machine traffic.
                    outbox.send(
                        machine,
                        Token {
                            remaining: token.remaining - 1,
                        },
                    );
                }
            }
        });
        assert_eq!(outcome.comm.messages, 0);
        assert_eq!(outcome.comm.local_steps, 3);
        assert_eq!(outcome.states[0], 4);
    }

    #[test]
    fn empty_initial_messages_finish_immediately() {
        let outcome = run_bsp(
            vec![(), ()],
            vec![Vec::<Token>::new(), Vec::new()],
            10,
            |_, _, _, _| {},
        );
        assert_eq!(outcome.supersteps, 0);
        assert_eq!(outcome.comm.messages, 0);
    }

    #[test]
    #[should_panic(expected = "supersteps")]
    fn runaway_loop_is_capped() {
        let states = vec![(), ()];
        let initial = vec![vec![Token { remaining: 1 }], vec![]];
        run_bsp(states, initial, 5, |machine, _, mailbox, outbox| {
            for _ in mailbox.messages {
                outbox.send(1 - machine, Token { remaining: 1 });
            }
        });
    }

    #[test]
    #[should_panic(expected = "supersteps")]
    fn runaway_loop_is_capped_with_spawn_per_step() {
        let states = vec![(), ()];
        let initial = vec![vec![Token { remaining: 1 }], vec![]];
        run_bsp_with(
            ExecutionBackend::SpawnPerStep,
            states,
            initial,
            5,
            |machine, _, mailbox, outbox| {
                for _ in mailbox.messages {
                    outbox.send(1 - machine, Token { remaining: 1 });
                }
            },
        );
    }

    /// A ring step over `M` machines: count the token, pass it on.
    fn ring_step<const MACHINES: usize>(
        machine: MachineId,
        state: &mut u64,
        mailbox: Mailbox<'_, Token>,
        outbox: &mut Outbox<Token>,
    ) {
        for token in mailbox.messages {
            *state += 1;
            if token.remaining > 0 {
                outbox.send(
                    (machine + 1) % MACHINES,
                    Token {
                        remaining: token.remaining - 1,
                    },
                );
            }
        }
    }

    /// The whole multi-round loop through one `run_bsp_round_loop` must be
    /// observably identical to one `run_bsp` call per round — states, comm
    /// stats (including the max-per-round superstep semantics) and superstep
    /// totals — while spawning `machines` threads instead of
    /// `machines × rounds`.
    #[test]
    fn round_loop_matches_per_round_bsp() {
        let rounds = 4u64;
        let seeds = |round: u64| -> Vec<Vec<Token>> {
            (0..3)
                .map(|m| {
                    vec![Token {
                        remaining: 2 + (round as u32 + m as u32) % 3,
                    }]
                })
                .collect()
        };

        let mut per_round_states = vec![0u64; 3];
        let mut per_round_comm = CommStats::new();
        let mut per_round_supersteps = 0u64;
        let mut per_round_spawns = 0u64;
        for round in 0..rounds {
            let outcome = run_bsp(per_round_states, seeds(round), 100, ring_step::<3>);
            per_round_states = outcome.states;
            per_round_comm.merge(&outcome.comm);
            per_round_supersteps += outcome.supersteps;
            per_round_spawns += outcome.spawn_count;
        }

        let mut next_round = 0u64;
        let outcome = run_bsp_round_loop(vec![0u64; 3], 100, ring_step::<3>, |_states| {
            if next_round == rounds {
                return None;
            }
            next_round += 1;
            Some(seeds(next_round - 1))
        });

        assert_eq!(outcome.states, per_round_states);
        assert_eq!(outcome.comm, per_round_comm);
        assert_eq!(outcome.supersteps, per_round_supersteps);
        assert_eq!(outcome.spawn_count, 3, "one spawn per machine for the run");
        assert_eq!(
            per_round_spawns,
            3 * rounds,
            "per-round pays spawns × rounds"
        );
    }

    /// The coordinator ends the loop from a control phase the moment its
    /// convergence criterion is met — workers exit cleanly, nobody blocks.
    #[test]
    fn round_loop_coordinator_terminates_early_without_deadlock() {
        let mut seeded_rounds = 0u64;
        let outcome = run_bsp_round_loop(vec![0u64; 4], 100, ring_step::<4>, |states| {
            // "Converged": the harvested state total crossed a threshold
            // well before the nominal 100-round budget.
            let total: u64 = states.iter().map(|state| **state).sum();
            if total >= 12 {
                return None;
            }
            seeded_rounds += 1;
            Some((0..4).map(|_| vec![Token { remaining: 1 }]).collect())
        });
        // Each round: 4 tokens × 2 visits = 8 counts, so 2 rounds suffice.
        assert_eq!(seeded_rounds, 2);
        assert_eq!(outcome.states.iter().sum::<u64>(), 16);
        assert_eq!(outcome.supersteps, 4);
        assert_eq!(outcome.comm.supersteps, 2, "max supersteps of one round");
        assert_eq!(outcome.spawn_count, 4);
    }

    fn no_work(_: MachineId, _: &mut u64, _: Mailbox<'_, Token>, _: &mut Outbox<Token>) {
        panic!("no superstep should run");
    }

    /// All-empty seeds re-enter the boundary immediately instead of running
    /// a no-op superstep generation.
    #[test]
    fn round_loop_skips_all_empty_seed_rounds() {
        let mut calls = 0u64;
        let outcome = run_bsp_round_loop(vec![0u64; 2], 10, no_work, |_states| {
            calls += 1;
            if calls < 3 {
                Some(vec![Vec::new(), Vec::new()])
            } else {
                None
            }
        });
        assert_eq!(calls, 3);
        assert_eq!(outcome.supersteps, 0);
        assert_eq!(outcome.comm.supersteps, 0);
        assert_eq!(outcome.spawn_count, 2);
    }

    /// A panic in the boundary control phase poisons the barrier (workers
    /// exit instead of blocking) and the payload propagates.
    #[test]
    #[should_panic(expected = "boundary exploded")]
    fn round_loop_boundary_panic_propagates() {
        let mut rounds = 0u64;
        run_bsp_round_loop(vec![0u64; 3], 100, ring_step::<3>, |_states| {
            if rounds == 2 {
                panic!("boundary exploded");
            }
            rounds += 1;
            Some((0..3).map(|_| vec![Token { remaining: 2 }]).collect())
        });
    }

    /// The comm-aware boundary sees cumulative completed-round traffic, and
    /// the final outcome matches the last boundary's view.
    #[test]
    fn round_loop_boundary_observes_cumulative_comm() {
        let mut boundary_comm: Vec<CommStats> = Vec::new();
        let mut next_round = 0u64;
        let outcome = run_bsp_round_loop_with(
            vec![0u64; 3],
            100,
            ring_step::<3>,
            |_states, comm| {
                boundary_comm.push(comm.clone());
                if next_round == 3 {
                    return None;
                }
                next_round += 1;
                Some((0..3).map(|_| vec![Token { remaining: 2 }]).collect())
            },
            None,
        );
        assert_eq!(boundary_comm.len(), 4);
        assert_eq!(boundary_comm[0], CommStats::new(), "nothing ran yet");
        // Each round: 3 tokens × 2 hops, all cross-machine.
        for (i, comm) in boundary_comm.iter().enumerate() {
            assert_eq!(comm.messages, 6 * i as u64);
            assert_eq!(comm.bytes, 6 * 16 * i as u64);
        }
        assert_eq!(outcome.comm, boundary_comm[3]);
    }

    /// An injected fault at exact `(machine, round, superstep)` coordinates
    /// panics the run with a message naming those coordinates.
    #[test]
    fn round_loop_fault_injection_hits_exact_coordinates() {
        let injector = crate::fault::FaultPlan::new().panic_at(1, 2, 1).build();
        let mut next_round = 0u64;
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_bsp_round_loop_with(
                vec![0u64; 3],
                100,
                ring_step::<3>,
                |_states, _comm| {
                    if next_round == 5 {
                        return None;
                    }
                    next_round += 1;
                    Some((0..3).map(|_| vec![Token { remaining: 3 }]).collect())
                },
                Some(&injector),
            )
        }))
        .unwrap_err();
        assert_eq!(
            crate::fault::panic_message(err.as_ref()),
            "injected fault: machine 1 round 2 superstep 1"
        );
        assert_eq!(injector.injected_faults(), 1);
    }

    /// The supervised loop recovers an injected crash from the caller's
    /// checkpoint and finishes with results identical to a fault-free run —
    /// including the comm statistics stitched across the attempt boundary.
    #[test]
    fn supervised_run_recovers_to_fault_free_results() {
        let rounds = 4u64;
        let fault_free = {
            let mut next_round = 0u64;
            run_bsp_round_loop(vec![0u64; 3], 100, ring_step::<3>, |_states| {
                if next_round == rounds {
                    return None;
                }
                next_round += 1;
                Some((0..3).map(|_| vec![Token { remaining: 2 }]).collect())
            })
        };

        // Coordinator context: harvested per-machine token counts, completed
        // rounds, and checkpointed comm — everything a crash must not lose.
        #[derive(Clone, Default)]
        struct Ctx {
            counts: Vec<u64>,
            rounds: u64,
            comm: CommStats,
            checkpoint: Option<(Vec<u64>, u64, CommStats)>,
            restores: u32,
        }
        let mut ctx = Ctx {
            counts: vec![0; 3],
            ..Ctx::default()
        };
        let injector = crate::fault::FaultPlan::new().panic_at(2, 2, 0).build();
        let outcome = run_bsp_supervised(
            RecoveryPolicy::retries(2),
            &mut ctx,
            |ctx, attempt| {
                if attempt > 0 {
                    ctx.restores += 1;
                    let (counts, rounds, comm) = ctx
                        .checkpoint
                        .clone()
                        .expect("crash happened after a checkpoint");
                    ctx.counts = counts;
                    ctx.rounds = rounds;
                    ctx.comm = comm;
                }
                // Fresh machine states; harvested counts live in ctx.
                vec![0u64; 3]
            },
            100,
            ring_step::<3>,
            |ctx, states, comm| {
                for (total, state) in ctx.counts.iter_mut().zip(states.iter()) {
                    *total += **state;
                    // Consumed into ctx: zero so re-harvesting can't double
                    // count (states accumulate across this attempt's rounds).
                }
                for state in states.iter_mut() {
                    **state = 0;
                }
                if ctx.rounds == rounds {
                    return None;
                }
                // Checkpoint every completed round: harvested counts plus
                // base comm merged with this attempt's traffic so far.
                let mut total_comm = ctx.comm.clone();
                total_comm.merge(comm);
                ctx.checkpoint = Some((ctx.counts.clone(), ctx.rounds, total_comm));
                ctx.rounds += 1;
                Some((0..3).map(|_| vec![Token { remaining: 2 }]).collect())
            },
            Some(&injector),
        )
        .expect("policy allows recovery");

        assert_eq!(ctx.restores, 1, "exactly one recovery");
        assert_eq!(injector.injected_faults(), 1);
        assert_eq!(ctx.rounds, rounds);
        let fault_free_total: u64 = fault_free.states.iter().sum();
        assert_eq!(ctx.counts.iter().sum::<u64>(), fault_free_total);
        // Comm across the attempt boundary: checkpointed base + final
        // attempt's outcome equals the fault-free totals exactly.
        let mut recovered_comm = ctx.comm.clone();
        recovered_comm.merge(&outcome.comm);
        assert_eq!(recovered_comm, fault_free.comm);
    }

    /// When the policy disallows retries (or they run out), the supervisor
    /// returns a clean error carrying the last panic message — no deadlock,
    /// no propagated panic.
    #[test]
    fn supervised_run_exhausts_policy_into_clean_error() {
        // The second fault sits in a later round so the two crashes cannot
        // race within one superstep: attempt 0 dies at round 0 (machine 0),
        // the retry replays round 0 cleanly and dies at round 1 (machine 1).
        let injector = crate::fault::FaultPlan::new()
            .panic_at(0, 0, 0)
            .panic_at(1, 1, 0)
            .build();
        let mut ctx = ();
        let err = run_bsp_supervised(
            RecoveryPolicy::retries(1),
            &mut ctx,
            |_ctx, _attempt| vec![0u64; 2],
            100,
            ring_step::<2>,
            |_ctx, _states, _comm| Some((0..2).map(|_| vec![Token { remaining: 2 }]).collect()),
            Some(&injector),
        )
        .unwrap_err();
        assert_eq!(err.attempts, 2);
        assert!(
            err.last_panic.contains("injected fault: machine 1 round 1"),
            "{}",
            err.last_panic
        );
    }

    /// A panicking machine must poison the pool's barrier so the other
    /// workers shut down and the panic propagates — not deadlock the run.
    #[test]
    #[should_panic(expected = "machine 2 step failed")]
    fn pool_worker_panic_propagates_instead_of_deadlocking() {
        let machines = 4;
        let states = vec![0u64; machines];
        // Every machine gets work, so all four workers are live inside the
        // superstep when machine 2 panics.
        let initial: Vec<Vec<Token>> = (0..machines)
            .map(|_| vec![Token { remaining: 4 }])
            .collect();
        run_bsp_with(
            ExecutionBackend::Pool,
            states,
            initial,
            100,
            |machine, state, mailbox, outbox| {
                for token in mailbox.messages {
                    *state += 1;
                    if *state >= 2 && machine == 2 {
                        panic!("machine 2 step failed");
                    }
                    if token.remaining > 0 {
                        outbox.send(
                            (machine + 1) % machines,
                            Token {
                                remaining: token.remaining - 1,
                            },
                        );
                    }
                }
            },
        );
    }
}
