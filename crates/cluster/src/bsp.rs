//! Bulk Synchronous Parallel execution over simulated machines.
//!
//! KnightKing (§2.2) coordinates walkers with the BSP model \[56\]: in every
//! superstep each machine processes the messages addressed to it and emits
//! messages for the next superstep; machines synchronize at the superstep
//! boundary. [`run_bsp`] reproduces this scheme with one OS thread per
//! machine — by default a **persistent worker pool** created once per
//! invocation and reused for every superstep ([`ExecutionBackend::Pool`],
//! see [`pool`](crate::pool)); the original spawn-one-thread-per-machine-
//! per-superstep scheme is retained as [`ExecutionBackend::SpawnPerStep`]
//! and selectable through [`run_bsp_with`]. Every cross-machine message is
//! accounted through [`CommStats`], and the coordination overhead of the
//! superstep boundaries themselves is reported as
//! [`BspOutcome::sync_secs`].
//!
//! The message queues are **double-buffered**: every machine owns a
//! persistent [`Outbox`] whose per-destination queues survive across
//! supersteps, and inboxes are refilled by *moving* messages out of those
//! queues at the superstep boundary ([`Vec::append`] keeps both allocations
//! alive). After the first few supersteps the exchange runs without any
//! queue reallocation — the steady state is allocation-free. Both backends
//! perform the exchange in the same machine order, so inbox contents — and
//! therefore entire runs — are bit-identical between them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::comm::{CommStats, MessageSize};
use crate::pool::{run_rounds, ExecutionBackend};
use crate::MachineId;

/// Per-machine outgoing message buffer handed to the step function.
///
/// Outboxes persist across supersteps; their queues are drained (not
/// dropped) at every superstep boundary so queue capacity is reused.
pub struct Outbox<M> {
    owner: MachineId,
    queues: Vec<Vec<M>>,
    stats: CommStats,
}

impl<M: MessageSize> Outbox<M> {
    fn new(owner: MachineId, num_machines: usize) -> Self {
        Self {
            owner,
            queues: (0..num_machines).map(|_| Vec::new()).collect(),
            stats: CommStats::new(),
        }
    }

    /// Queues `msg` for delivery to machine `to` at the next superstep.
    /// Messages to the owner machine itself are delivered but not counted as
    /// cross-machine traffic.
    pub fn send(&mut self, to: MachineId, msg: M) {
        if to != self.owner {
            self.stats.record_message(msg.size_bytes());
        } else {
            self.stats.record_local_step();
        }
        self.queues[to].push(msg);
    }

    /// Records a unit of work that completed without any message (e.g. a walk
    /// step whose destination stayed on this machine).
    pub fn record_local_step(&mut self) {
        self.stats.record_local_step();
    }

    /// The machine that owns this outbox.
    pub fn owner(&self) -> MachineId {
        self.owner
    }
}

/// Messages delivered to one machine at the start of a superstep.
///
/// The messages are drained out of the machine's persistent inbox so the
/// inbox allocation is reused by the next superstep (any message left
/// unconsumed is dropped when the mailbox goes out of scope).
pub struct Mailbox<'a, M> {
    /// The messages, in arbitrary order.
    pub messages: std::vec::Drain<'a, M>,
}

/// Result of a BSP run.
#[derive(Debug)]
pub struct BspOutcome<S> {
    /// Final per-machine states, indexed by machine id.
    pub states: Vec<S>,
    /// Aggregated communication statistics over all machines and supersteps.
    pub comm: CommStats,
    /// Number of supersteps executed.
    pub supersteps: u64,
    /// Wall-clock thread-coordination overhead of the superstep boundaries:
    /// per superstep, the wall time of the concurrent compute phase minus the
    /// slowest machine's compute time, summed over supersteps. For the pool
    /// backend this is the barrier-crossing cost; for spawn-per-step it is
    /// the thread spawn/join cost the pool exists to eliminate. The message
    /// exchange itself runs on the coordinator between supersteps and is not
    /// included (it is identical work under both backends).
    pub sync_secs: f64,
}

/// Runs BSP supersteps until no machine has pending messages, on the default
/// [`ExecutionBackend::Pool`]. See [`run_bsp_with`].
pub fn run_bsp<S, M, F>(
    states: Vec<S>,
    initial: Vec<Vec<M>>,
    max_supersteps: u64,
    step: F,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
{
    run_bsp_with(
        ExecutionBackend::Pool,
        states,
        initial,
        max_supersteps,
        step,
    )
}

/// Runs BSP supersteps until no machine has pending messages.
///
/// * `backend` — how machine threads are managed across supersteps:
///   a persistent worker pool ([`ExecutionBackend::Pool`], the default used
///   by [`run_bsp`]) or one fresh thread per machine per superstep
///   ([`ExecutionBackend::SpawnPerStep`], the reference).
/// * `states` — one mutable state per machine (e.g. its graph partition plus
///   local walker bookkeeping).
/// * `initial` — initial messages per machine (superstep 0 input).
/// * `step` — called once per machine per superstep as
///   `step(machine, &mut state, mailbox, &mut outbox)`; it may emit messages
///   to any machine through the outbox.
///
/// Machines run concurrently within a superstep; the superstep boundary is a
/// barrier (a [`pool::EpochBarrier`](crate::pool::EpochBarrier) generation
/// for the pool, a thread join for spawn-per-step). Both backends produce
/// bit-identical message schedules and final states.
///
/// # Panics
/// Panics if `states.len() != initial.len()`, if there are zero machines, or
/// if the run exceeds `max_supersteps` (a runaway-loop guard). A panic inside
/// `step` propagates to the caller with either backend; the pool's poisoned
/// barrier guarantees the surviving workers shut down instead of
/// deadlocking.
pub fn run_bsp_with<S, M, F>(
    backend: ExecutionBackend,
    states: Vec<S>,
    initial: Vec<Vec<M>>,
    max_supersteps: u64,
    step: F,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
{
    let num_machines = states.len();
    assert!(num_machines > 0, "need at least one machine");
    assert_eq!(states.len(), initial.len(), "one inbox per machine");
    match backend {
        ExecutionBackend::Pool => run_bsp_pooled(states, initial, max_supersteps, step),
        ExecutionBackend::SpawnPerStep => {
            run_bsp_spawn_per_step(states, initial, max_supersteps, step)
        }
    }
}

/// One machine's mutable triple. Workers lock their own slot during the
/// compute phase and the coordinator locks slots during the exchange phase;
/// the phases never overlap (the pool barrier separates them), so the
/// mutexes exist to satisfy the borrow checker and are never contended.
struct MachineSlot<S, M> {
    state: S,
    inbox: Vec<M>,
    outbox: Outbox<M>,
}

/// The pool backend: `num_machines` persistent worker threads, one pinned to
/// each machine index, separated from the coordinator's exchange phase by a
/// reusable two-phase barrier (see [`pool::run_rounds`](crate::pool::run_rounds)).
fn run_bsp_pooled<S, M, F>(
    states: Vec<S>,
    initial: Vec<Vec<M>>,
    max_supersteps: u64,
    step: F,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
{
    let num_machines = states.len();
    let slots: Vec<Mutex<MachineSlot<S, M>>> = states
        .into_iter()
        .zip(initial)
        .enumerate()
        .map(|(machine, (state, inbox))| {
            Mutex::new(MachineSlot {
                state,
                inbox,
                outbox: Outbox::new(machine, num_machines),
            })
        })
        .collect();

    let stats = run_rounds(
        num_machines,
        |superstep| {
            // Exchange phase for the superstep that just finished: move
            // queued messages into the (drained) inboxes in ascending source
            // order, exactly like the spawn-per-step boundary, so inbox
            // contents are bit-identical across backends. `append` transfers
            // elements and keeps both allocations.
            if superstep > 0 {
                for src in 0..num_machines {
                    let mut src_slot = slots[src].lock().unwrap();
                    let src_slot = &mut *src_slot;
                    // Self-delivery inside the same slot (re-locking `src`
                    // would deadlock), then every other destination.
                    src_slot.inbox.append(&mut src_slot.outbox.queues[src]);
                    for (dest, dest_slot) in slots.iter().enumerate() {
                        if dest == src {
                            continue;
                        }
                        let mut dest_slot = dest_slot.lock().unwrap();
                        dest_slot.inbox.append(&mut src_slot.outbox.queues[dest]);
                    }
                }
            }
            let pending = slots
                .iter()
                .any(|slot| !slot.lock().unwrap().inbox.is_empty());
            if pending {
                assert!(
                    superstep < max_supersteps,
                    "BSP exceeded {max_supersteps} supersteps — runaway walk?"
                );
            }
            pending
        },
        |machine, _superstep| {
            let mut slot = slots[machine].lock().unwrap();
            let slot = &mut *slot;
            let mailbox = Mailbox {
                messages: slot.inbox.drain(..),
            };
            step(machine, &mut slot.state, mailbox, &mut slot.outbox);
        },
    );

    let mut comm = CommStats::new();
    let mut states = Vec::with_capacity(num_machines);
    for slot in slots {
        let slot = slot.into_inner().unwrap();
        comm.merge(&slot.outbox.stats);
        states.push(slot.state);
    }
    comm.supersteps = stats.rounds;
    BspOutcome {
        states,
        comm,
        supersteps: stats.rounds,
        sync_secs: stats.sync_secs,
    }
}

/// The reference backend: one fresh OS thread per machine per superstep, the
/// superstep boundary being the thread join.
fn run_bsp_spawn_per_step<S, M, F>(
    states: Vec<S>,
    initial: Vec<Vec<M>>,
    max_supersteps: u64,
    step: F,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
{
    let num_machines = states.len();
    let mut states = states;
    let mut inboxes: Vec<Vec<M>> = initial;
    // One persistent outbox per machine: queue capacity is recycled across
    // supersteps instead of reallocated.
    let mut outboxes: Vec<Outbox<M>> = (0..num_machines)
        .map(|machine| Outbox::new(machine, num_machines))
        .collect();
    let mut supersteps: u64 = 0;
    let mut sync_secs = 0.0f64;
    // Per-machine compute time of the current superstep, for the same
    // `wall - slowest` overhead accounting the pool backend reports.
    let compute_nanos: Vec<AtomicU64> = (0..num_machines).map(|_| AtomicU64::new(0)).collect();

    while inboxes.iter().any(|q| !q.is_empty()) {
        assert!(
            supersteps < max_supersteps,
            "BSP exceeded {max_supersteps} supersteps — runaway walk?"
        );
        supersteps += 1;

        // Run every machine on its own freshly spawned scoped thread.
        let step_ref = &step;
        let superstep_started = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .iter_mut()
                .zip(inboxes.iter_mut())
                .zip(outboxes.iter_mut())
                .enumerate()
                .map(|(machine, ((state, inbox), outbox))| {
                    let slot = &compute_nanos[machine];
                    scope.spawn(move || {
                        let started = Instant::now();
                        let mailbox = Mailbox {
                            messages: inbox.drain(..),
                        };
                        step_ref(machine, state, mailbox, outbox);
                        slot.store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("BSP worker thread panicked");
            }
        });
        let wall = superstep_started.elapsed().as_secs_f64();
        let slowest = compute_nanos
            .iter()
            .map(|nanos| nanos.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0) as f64
            / 1e9;
        sync_secs += (wall - slowest).max(0.0);

        // Superstep boundary: move queued messages into the (now empty)
        // inboxes. `append` transfers elements and keeps both allocations.
        for outbox in &mut outboxes {
            for (to, queue) in outbox.queues.iter_mut().enumerate() {
                inboxes[to].append(queue);
            }
        }
    }

    let mut comm = CommStats::new();
    for outbox in &outboxes {
        comm.merge(&outbox.stats);
    }
    comm.supersteps = supersteps;
    BspOutcome {
        states,
        comm,
        supersteps,
        sync_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A token that hops `remaining` more times round-robin across machines.
    struct Token {
        remaining: u32,
    }

    impl MessageSize for Token {
        fn size_bytes(&self) -> usize {
            16
        }
    }

    const BACKENDS: [ExecutionBackend; 2] =
        [ExecutionBackend::Pool, ExecutionBackend::SpawnPerStep];

    #[test]
    fn token_ring_counts_messages_on_both_backends() {
        for backend in BACKENDS {
            let machines = 4;
            let states: Vec<u64> = vec![0; machines]; // counts tokens seen
            let initial: Vec<Vec<Token>> = (0..machines)
                .map(|m| {
                    if m == 0 {
                        vec![Token { remaining: 7 }]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let outcome = run_bsp_with(
                backend,
                states,
                initial,
                1000,
                |machine, state, mailbox, outbox| {
                    for token in mailbox.messages {
                        *state += 1;
                        if token.remaining > 0 {
                            let next = (machine + 1) % machines;
                            outbox.send(
                                next,
                                Token {
                                    remaining: token.remaining - 1,
                                },
                            );
                        }
                    }
                },
            );
            // The token visits 8 machines in total (initial + 7 hops).
            assert_eq!(outcome.states.iter().sum::<u64>(), 8);
            assert_eq!(outcome.comm.messages, 7);
            assert_eq!(outcome.comm.bytes, 7 * 16);
            assert_eq!(outcome.supersteps, 8);
            assert!(outcome.sync_secs >= 0.0, "{}", backend.name());
        }
    }

    /// The exchange order — and therefore the inbox message order every step
    /// function observes — must be identical across backends.
    #[test]
    fn backends_deliver_identical_message_orders() {
        // Every machine floods every machine for a few supersteps; states
        // record the exact observation order as (superstep, payload) pairs.
        let run = |backend| {
            let machines = 3;
            let states: Vec<Vec<u32>> = vec![Vec::new(); machines];
            let initial: Vec<Vec<Token>> = (0..machines)
                .map(|m| {
                    vec![Token {
                        remaining: 3 + m as u32,
                    }]
                })
                .collect();
            run_bsp_with(
                backend,
                states,
                initial,
                100,
                |machine, state, mailbox, outbox| {
                    for token in mailbox.messages {
                        state.push(token.remaining);
                        if token.remaining > 0 {
                            outbox.send(
                                (machine + 1) % machines,
                                Token {
                                    remaining: token.remaining - 1,
                                },
                            );
                            outbox.send(
                                (machine + 2) % machines,
                                Token {
                                    remaining: token.remaining - 1,
                                },
                            );
                        }
                    }
                },
            )
        };
        let pool = run(ExecutionBackend::Pool);
        let spawn = run(ExecutionBackend::SpawnPerStep);
        assert_eq!(pool.states, spawn.states);
        assert_eq!(pool.comm, spawn.comm);
        assert_eq!(pool.supersteps, spawn.supersteps);
    }

    #[test]
    fn self_messages_are_local() {
        let states = vec![0u64, 0u64];
        let initial = vec![vec![Token { remaining: 3 }], vec![]];
        let outcome = run_bsp(states, initial, 100, |machine, state, mailbox, outbox| {
            for token in mailbox.messages {
                *state += 1;
                if token.remaining > 0 {
                    // Always send to self: no cross-machine traffic.
                    outbox.send(
                        machine,
                        Token {
                            remaining: token.remaining - 1,
                        },
                    );
                }
            }
        });
        assert_eq!(outcome.comm.messages, 0);
        assert_eq!(outcome.comm.local_steps, 3);
        assert_eq!(outcome.states[0], 4);
    }

    #[test]
    fn empty_initial_messages_finish_immediately() {
        let outcome = run_bsp(
            vec![(), ()],
            vec![Vec::<Token>::new(), Vec::new()],
            10,
            |_, _, _, _| {},
        );
        assert_eq!(outcome.supersteps, 0);
        assert_eq!(outcome.comm.messages, 0);
    }

    #[test]
    #[should_panic(expected = "supersteps")]
    fn runaway_loop_is_capped() {
        let states = vec![(), ()];
        let initial = vec![vec![Token { remaining: 1 }], vec![]];
        run_bsp(states, initial, 5, |machine, _, mailbox, outbox| {
            for _ in mailbox.messages {
                outbox.send(1 - machine, Token { remaining: 1 });
            }
        });
    }

    #[test]
    #[should_panic(expected = "supersteps")]
    fn runaway_loop_is_capped_with_spawn_per_step() {
        let states = vec![(), ()];
        let initial = vec![vec![Token { remaining: 1 }], vec![]];
        run_bsp_with(
            ExecutionBackend::SpawnPerStep,
            states,
            initial,
            5,
            |machine, _, mailbox, outbox| {
                for _ in mailbox.messages {
                    outbox.send(1 - machine, Token { remaining: 1 });
                }
            },
        );
    }

    /// A panicking machine must poison the pool's barrier so the other
    /// workers shut down and the panic propagates — not deadlock the run.
    #[test]
    #[should_panic(expected = "machine 2 step failed")]
    fn pool_worker_panic_propagates_instead_of_deadlocking() {
        let machines = 4;
        let states = vec![0u64; machines];
        // Every machine gets work, so all four workers are live inside the
        // superstep when machine 2 panics.
        let initial: Vec<Vec<Token>> = (0..machines)
            .map(|_| vec![Token { remaining: 4 }])
            .collect();
        run_bsp_with(
            ExecutionBackend::Pool,
            states,
            initial,
            100,
            |machine, state, mailbox, outbox| {
                for token in mailbox.messages {
                    *state += 1;
                    if *state >= 2 && machine == 2 {
                        panic!("machine 2 step failed");
                    }
                    if token.remaining > 0 {
                        outbox.send(
                            (machine + 1) % machines,
                            Token {
                                remaining: token.remaining - 1,
                            },
                        );
                    }
                }
            },
        );
    }
}
