//! Bulk Synchronous Parallel execution over simulated machines.
//!
//! KnightKing (§2.2) coordinates walkers with the BSP model \[56\]: in every
//! superstep each machine processes the messages addressed to it and emits
//! messages for the next superstep; machines synchronize at the superstep
//! boundary. [`run_bsp`] reproduces this scheme with one OS thread per
//! machine per superstep and accounts every cross-machine message through
//! [`CommStats`].
//!
//! The message queues are **double-buffered**: every machine owns a
//! persistent [`Outbox`] whose per-destination queues survive across
//! supersteps, and inboxes are refilled by *moving* messages out of those
//! queues at the superstep boundary ([`Vec::append`] keeps both allocations
//! alive). After the first few supersteps the exchange runs without any
//! queue reallocation — the steady state is allocation-free.

use crate::comm::{CommStats, MessageSize};
use crate::MachineId;

/// Per-machine outgoing message buffer handed to the step function.
///
/// Outboxes persist across supersteps; their queues are drained (not
/// dropped) at every superstep boundary so queue capacity is reused.
pub struct Outbox<M> {
    owner: MachineId,
    queues: Vec<Vec<M>>,
    stats: CommStats,
}

impl<M: MessageSize> Outbox<M> {
    fn new(owner: MachineId, num_machines: usize) -> Self {
        Self {
            owner,
            queues: (0..num_machines).map(|_| Vec::new()).collect(),
            stats: CommStats::new(),
        }
    }

    /// Queues `msg` for delivery to machine `to` at the next superstep.
    /// Messages to the owner machine itself are delivered but not counted as
    /// cross-machine traffic.
    pub fn send(&mut self, to: MachineId, msg: M) {
        if to != self.owner {
            self.stats.record_message(msg.size_bytes());
        } else {
            self.stats.record_local_step();
        }
        self.queues[to].push(msg);
    }

    /// Records a unit of work that completed without any message (e.g. a walk
    /// step whose destination stayed on this machine).
    pub fn record_local_step(&mut self) {
        self.stats.record_local_step();
    }

    /// The machine that owns this outbox.
    pub fn owner(&self) -> MachineId {
        self.owner
    }
}

/// Messages delivered to one machine at the start of a superstep.
///
/// The messages are drained out of the machine's persistent inbox so the
/// inbox allocation is reused by the next superstep (any message left
/// unconsumed is dropped when the mailbox goes out of scope).
pub struct Mailbox<'a, M> {
    /// The messages, in arbitrary order.
    pub messages: std::vec::Drain<'a, M>,
}

/// Result of a BSP run.
#[derive(Debug)]
pub struct BspOutcome<S> {
    /// Final per-machine states, indexed by machine id.
    pub states: Vec<S>,
    /// Aggregated communication statistics over all machines and supersteps.
    pub comm: CommStats,
    /// Number of supersteps executed.
    pub supersteps: u64,
}

/// Runs BSP supersteps until no machine has pending messages.
///
/// * `states` — one mutable state per machine (e.g. its graph partition plus
///   local walker bookkeeping).
/// * `initial` — initial messages per machine (superstep 0 input).
/// * `step` — called once per machine per superstep as
///   `step(machine, &mut state, mailbox, &mut outbox)`; it may emit messages
///   to any machine through the outbox.
///
/// Machines run concurrently on scoped threads within a superstep; the
/// superstep boundary is the natural barrier (thread join).
///
/// # Panics
/// Panics if `states.len() != initial.len()`, if there are zero machines, or
/// if the run exceeds `max_supersteps` (a runaway-loop guard).
pub fn run_bsp<S, M, F>(
    states: Vec<S>,
    initial: Vec<Vec<M>>,
    max_supersteps: u64,
    step: F,
) -> BspOutcome<S>
where
    S: Send,
    M: MessageSize + Send,
    F: for<'a> Fn(MachineId, &mut S, Mailbox<'a, M>, &mut Outbox<M>) + Sync,
{
    let num_machines = states.len();
    assert!(num_machines > 0, "need at least one machine");
    assert_eq!(states.len(), initial.len(), "one inbox per machine");

    let mut states = states;
    let mut inboxes: Vec<Vec<M>> = initial;
    // One persistent outbox per machine: queue capacity is recycled across
    // supersteps instead of reallocated.
    let mut outboxes: Vec<Outbox<M>> = (0..num_machines)
        .map(|machine| Outbox::new(machine, num_machines))
        .collect();
    let mut supersteps: u64 = 0;

    while inboxes.iter().any(|q| !q.is_empty()) {
        assert!(
            supersteps < max_supersteps,
            "BSP exceeded {max_supersteps} supersteps — runaway walk?"
        );
        supersteps += 1;

        // Run every machine on its own scoped thread for this superstep.
        let step_ref = &step;
        std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .iter_mut()
                .zip(inboxes.iter_mut())
                .zip(outboxes.iter_mut())
                .enumerate()
                .map(|(machine, ((state, inbox), outbox))| {
                    scope.spawn(move || {
                        let mailbox = Mailbox {
                            messages: inbox.drain(..),
                        };
                        step_ref(machine, state, mailbox, outbox);
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("BSP worker thread panicked");
            }
        });

        // Superstep boundary: move queued messages into the (now empty)
        // inboxes. `append` transfers elements and keeps both allocations.
        for outbox in &mut outboxes {
            for (to, queue) in outbox.queues.iter_mut().enumerate() {
                inboxes[to].append(queue);
            }
        }
    }

    let mut comm = CommStats::new();
    for outbox in &outboxes {
        comm.merge(&outbox.stats);
    }
    comm.supersteps = supersteps;
    BspOutcome {
        states,
        comm,
        supersteps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A token that hops `remaining` more times round-robin across machines.
    struct Token {
        remaining: u32,
    }

    impl MessageSize for Token {
        fn size_bytes(&self) -> usize {
            16
        }
    }

    #[test]
    fn token_ring_counts_messages() {
        let machines = 4;
        let states: Vec<u64> = vec![0; machines]; // counts tokens seen
        let initial: Vec<Vec<Token>> = (0..machines)
            .map(|m| {
                if m == 0 {
                    vec![Token { remaining: 7 }]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let outcome = run_bsp(states, initial, 1000, |machine, state, mailbox, outbox| {
            for token in mailbox.messages {
                *state += 1;
                if token.remaining > 0 {
                    let next = (machine + 1) % machines;
                    outbox.send(
                        next,
                        Token {
                            remaining: token.remaining - 1,
                        },
                    );
                }
            }
        });
        // The token visits 8 machines in total (initial + 7 hops).
        assert_eq!(outcome.states.iter().sum::<u64>(), 8);
        assert_eq!(outcome.comm.messages, 7);
        assert_eq!(outcome.comm.bytes, 7 * 16);
        assert_eq!(outcome.supersteps, 8);
    }

    #[test]
    fn self_messages_are_local() {
        let states = vec![0u64, 0u64];
        let initial = vec![vec![Token { remaining: 3 }], vec![]];
        let outcome = run_bsp(states, initial, 100, |machine, state, mailbox, outbox| {
            for token in mailbox.messages {
                *state += 1;
                if token.remaining > 0 {
                    // Always send to self: no cross-machine traffic.
                    outbox.send(
                        machine,
                        Token {
                            remaining: token.remaining - 1,
                        },
                    );
                }
            }
        });
        assert_eq!(outcome.comm.messages, 0);
        assert_eq!(outcome.comm.local_steps, 3);
        assert_eq!(outcome.states[0], 4);
    }

    #[test]
    fn empty_initial_messages_finish_immediately() {
        let outcome = run_bsp(
            vec![(), ()],
            vec![Vec::<Token>::new(), Vec::new()],
            10,
            |_, _, _, _| {},
        );
        assert_eq!(outcome.supersteps, 0);
        assert_eq!(outcome.comm.messages, 0);
    }

    #[test]
    #[should_panic(expected = "supersteps")]
    fn runaway_loop_is_capped() {
        let states = vec![(), ()];
        let initial = vec![vec![Token { remaining: 1 }], vec![]];
        run_bsp(states, initial, 5, |machine, _, mailbox, outbox| {
            for _ in mailbox.messages {
                outbox.send(1 - machine, Token { remaining: 1 });
            }
        });
    }
}
