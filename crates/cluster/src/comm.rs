//! Cross-machine communication accounting.
//!
//! The paper's complexity analyses (§2.2, §2.3, §3.1) are phrased in terms of
//! the number of cross-machine messages `N`, their sizes `M(·)`, and the
//! network bandwidth `B`; the experiments report message counts directly
//! (Figure 10(c)) and communication-bound running times. [`CommStats`]
//! captures exactly these quantities, and [`NetworkModel`] converts them into
//! modelled communication time `N·M/B + N·latency`.

/// Types that know their own serialized size on the wire.
///
/// Message sizes follow the paper's accounting (§3.1, Example 1): an 8-byte
/// slot per scalar field, so a node2vec walker message is 32 B, a HuGE-D
/// message `24 + 8·L` B and an InCoM message 80 B.
pub trait MessageSize {
    /// Size of this message in bytes when sent across machines.
    fn size_bytes(&self) -> usize;
}

/// Measured on-the-wire traffic of a socket transport, reported next to the
/// *modelled* numbers so estimate and measurement can be compared directly.
/// All-zero for in-memory runs (nothing crossed a wire).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames put on the wire by this endpoint.
    pub frames_sent: u64,
    /// Frames received by this endpoint.
    pub frames_received: u64,
    /// Total bytes sent, headers included.
    pub bytes_sent: u64,
    /// Total bytes received, headers included.
    pub bytes_received: u64,
    /// Payload bytes of superstep batch/delivery frames only — the measured
    /// counterpart of [`CommStats::bytes`] (control traffic excluded).
    pub batch_bytes_sent: u64,
    /// Wall-clock nanoseconds spent blocked in socket sends/receives — the
    /// measured counterpart of [`NetworkModel::comm_time_secs`].
    pub wire_nanos: u64,
}

impl WireStats {
    /// Merges another record into this one (sums every counter).
    pub fn merge(&mut self, other: &WireStats) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.batch_bytes_sent += other.batch_bytes_sent;
        self.wire_nanos += other.wire_nanos;
    }

    /// Measured wire time in seconds.
    pub fn wire_secs(&self) -> f64 {
        self.wire_nanos as f64 / 1e9
    }
}

/// Aggregated communication statistics for one run (or one machine).
///
/// Equality compares the **logical trace** — messages, bytes, steps,
/// supersteps — and deliberately ignores [`CommStats::wire`]: measured wire
/// traffic is a property of the deployment (which transport, how many
/// processes), not of the algorithm, and the bit-identity properties assert
/// that the *algorithm* is unchanged across transports.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    /// Number of cross-machine messages.
    pub messages: u64,
    /// Total bytes carried by cross-machine messages.
    pub bytes: u64,
    /// Walker (or work-item) steps that stayed on the local machine.
    pub local_steps: u64,
    /// Walker steps that had to hop to a different machine.
    pub remote_steps: u64,
    /// Number of BSP supersteps executed.
    pub supersteps: u64,
    /// Measured on-the-wire traffic (all-zero unless a socket transport ran).
    pub wire: WireStats,
}

impl PartialEq for CommStats {
    fn eq(&self, other: &Self) -> bool {
        self.messages == other.messages
            && self.bytes == other.bytes
            && self.local_steps == other.local_steps
            && self.remote_steps == other.remote_steps
            && self.supersteps == other.supersteps
    }
}

impl Eq for CommStats {}

impl CommStats {
    /// An empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a cross-machine message of `bytes` bytes.
    pub fn record_message(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        self.remote_steps += 1;
    }

    /// Records a step that stayed local.
    pub fn record_local_step(&mut self) {
        self.local_steps += 1;
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.local_steps += other.local_steps;
        self.remote_steps += other.remote_steps;
        self.supersteps = self.supersteps.max(other.supersteps);
        self.wire.merge(&other.wire);
    }

    /// Total steps, local and remote.
    pub fn total_steps(&self) -> u64 {
        self.local_steps + self.remote_steps
    }

    /// Fraction of steps that stayed on the local machine (1.0 when no step
    /// was taken).
    pub fn locality(&self) -> f64 {
        let total = self.total_steps();
        if total == 0 {
            1.0
        } else {
            self.local_steps as f64 / total as f64
        }
    }

    /// Average message size in bytes (0 when no message was sent).
    pub fn avg_message_bytes(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bytes as f64 / self.messages as f64
        }
    }
}

/// Analytic interconnect model: `time = bytes / bandwidth + messages · latency`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-message latency in seconds.
    pub latency_sec: f64,
}

impl NetworkModel {
    /// Creates a model from raw bandwidth (bytes/s) and latency (s).
    pub fn new(bandwidth_bytes_per_sec: f64, latency_sec: f64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0);
        assert!(latency_sec >= 0.0);
        Self {
            bandwidth_bytes_per_sec,
            latency_sec,
        }
    }

    /// The paper's testbed: 100 Gbps ≈ 12.5 GB/s, a few microseconds latency.
    pub fn paper_testbed() -> Self {
        Self::new(12.5e9, 5e-6)
    }

    /// Modelled time to deliver the traffic described by `stats`.
    pub fn comm_time_secs(&self, stats: &CommStats) -> f64 {
        stats.bytes as f64 / self.bandwidth_bytes_per_sec + stats.messages as f64 * self.latency_sec
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = CommStats::new();
        a.record_message(80);
        a.record_message(80);
        a.record_local_step();
        let mut b = CommStats::new();
        b.record_message(32);
        b.record_local_step();
        b.record_local_step();
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes, 192);
        assert_eq!(a.local_steps, 3);
        assert_eq!(a.remote_steps, 3);
        assert_eq!(a.total_steps(), 6);
        assert!((a.locality() - 0.5).abs() < 1e-12);
        assert!((a.avg_message_bytes() - 64.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_edge_cases() {
        let s = CommStats::new();
        assert_eq!(s.locality(), 1.0);
        assert_eq!(s.avg_message_bytes(), 0.0);
    }

    #[test]
    fn network_model_time() {
        let m = NetworkModel::new(1e6, 1e-3);
        let mut s = CommStats::new();
        s.record_message(500_000); // 0.5 s transfer + 1 ms latency
        let t = m.comm_time_secs(&s);
        assert!((t - 0.501).abs() < 1e-9);
    }

    #[test]
    fn equality_is_logical_and_ignores_wire_measurements() {
        let mut a = CommStats::new();
        a.record_message(80);
        let mut b = a.clone();
        b.wire.frames_sent = 12;
        b.wire.bytes_sent = 4096;
        b.wire.wire_nanos = 1_000_000;
        // Same logical trace, different deployment measurements: equal.
        assert_eq!(a, b);
        b.record_local_step();
        assert_ne!(a, b);
        // Merge sums wire counters alongside the logical trace.
        a.merge(&b);
        assert_eq!(a.wire.frames_sent, 12);
        assert_eq!(a.wire.bytes_sent, 4096);
        assert!((a.wire.wire_secs() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn paper_testbed_is_fast() {
        let m = NetworkModel::paper_testbed();
        let mut s = CommStats::new();
        s.record_message(1_000_000);
        assert!(m.comm_time_secs(&s) < 1e-3);
    }
}
