//! Cluster configuration.
//!
//! How BSP supersteps manage machine threads is *not* configured here: the
//! [`ExecutionBackend`](crate::pool::ExecutionBackend) knob lives on the
//! per-phase configs that actually drive BSP runs (`WalkEngineConfig` and
//! `TrainerConfig` downstream), mirroring how the other
//! optimized-vs-reference backends are selected.

use crate::comm::NetworkModel;

/// Describes the simulated cluster: how many machines participate and how
/// their interconnect behaves. The defaults mirror the paper's testbed
/// (8 machines, 100 Gbps).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterConfig {
    /// Number of logical machines.
    pub num_machines: usize,
    /// Worker threads per machine used for local computation.
    pub threads_per_machine: usize,
    /// Analytic model of the interconnect, used to convert measured message
    /// traffic into modelled communication time.
    pub network: NetworkModel,
}

impl ClusterConfig {
    /// A cluster of `num_machines` machines with the paper's interconnect.
    pub fn new(num_machines: usize) -> Self {
        assert!(num_machines > 0, "need at least one machine");
        Self {
            num_machines,
            threads_per_machine: 2,
            network: NetworkModel::default(),
        }
    }

    /// Single-machine configuration (no cross-machine traffic possible).
    pub fn single() -> Self {
        Self::new(1)
    }

    /// Builder-style override of the per-machine thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0);
        self.threads_per_machine = threads;
        self
    }

    /// Builder-style override of the network model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_paper_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_machines, 8);
        assert!(c.threads_per_machine >= 1);
    }

    #[test]
    fn builders_apply() {
        let c = ClusterConfig::new(4)
            .with_threads(3)
            .with_network(NetworkModel::new(1e9, 1e-3));
        assert_eq!(c.num_machines, 4);
        assert_eq!(c.threads_per_machine, 3);
        assert_eq!(c.network.bandwidth_bytes_per_sec, 1e9);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        ClusterConfig::new(0);
    }
}
