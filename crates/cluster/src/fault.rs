//! Deterministic fault injection and recovery policies for the BSP runtime.
//!
//! The reproduction's failure story used to end at "a worker panic poisons
//! the [`EpochBarrier`](crate::EpochBarrier) and the run dies". Before the
//! simulated machines become real processes that genuinely crash, the
//! runtime needs a *tested* recovery protocol — and testing recovery needs
//! crashes that happen exactly where the test says, every time. This module
//! provides both halves:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — a seeded, deterministic schedule of
//!   worker panics and artificial delays, keyed by
//!   `(machine, round, superstep)`. The injector is threaded through
//!   [`run_rounds_with`](crate::pool::run_rounds_with) and
//!   [`run_bsp_round_loop_with`](crate::bsp::run_bsp_round_loop_with) as an
//!   `Option<&FaultInjector>`: `None` costs nothing on the hot path.
//! * [`RecoveryPolicy`] — how many times a supervisor
//!   ([`run_bsp_supervised`](crate::bsp::run_bsp_supervised)) retries a
//!   poisoned run, with capped exponential backoff between attempts, and
//!   [`RecoveryExhausted`] — the error carrying the last panic message once
//!   the attempt budget is spent.
//!
//! Every fault point fires **exactly once** ([`FaultInjector::trip`] is
//! one-shot), so a recovered run that re-executes the faulted round does not
//! crash again at the same point — which is precisely what lets the
//! supervisor's property tests assert recovered runs are bit-identical to
//! fault-free ones.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// What happens when a fault point trips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread panics (poisoning the barrier, as a real crash
    /// inside the shared address space would).
    Panic,
    /// The worker sleeps for the given number of milliseconds — a straggler,
    /// not a crash. Outcome-neutral by construction.
    Delay(u64),
}

/// One scheduled fault: `kind` fires when machine `machine` enters the
/// compute phase of superstep `superstep` of round `round` (both 0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPoint {
    /// The machine (worker index) the fault fires on.
    pub machine: usize,
    /// The 0-based round (for the trainer: the chunk index).
    pub round: u64,
    /// The 0-based superstep within the round (always 0 for the trainer).
    pub superstep: u64,
    /// What the fault does.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault points, built either explicitly
/// ([`panic_at`](FaultPlan::panic_at) / [`delay_at`](FaultPlan::delay_at))
/// or pseudo-randomly from a seed ([`seeded`](FaultPlan::seeded)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
}

/// SplitMix64 finalizer, local to this crate (the walks crate's RNG lives
/// *above* us in the dependency graph). Only used to derive deterministic
/// fault coordinates from a seed — statistical quality far beyond what a
/// fault schedule needs.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a worker panic at `(machine, round, superstep)`.
    pub fn panic_at(mut self, machine: usize, round: u64, superstep: u64) -> Self {
        self.points.push(FaultPoint {
            machine,
            round,
            superstep,
            kind: FaultKind::Panic,
        });
        self
    }

    /// Adds a `millis`-millisecond delay at `(machine, round, superstep)`.
    pub fn delay_at(mut self, machine: usize, round: u64, superstep: u64, millis: u64) -> Self {
        self.points.push(FaultPoint {
            machine,
            round,
            superstep,
            kind: FaultKind::Delay(millis),
        });
        self
    }

    /// Derives `count` fault points deterministically from `seed`, spread
    /// over `machines × rounds × supersteps` coordinates. Even-indexed
    /// points panic, odd-indexed points delay 1 ms — the same seed always
    /// yields the same schedule, which is what makes soak failures
    /// reproducible.
    pub fn seeded(seed: u64, count: usize, machines: usize, rounds: u64, supersteps: u64) -> Self {
        assert!(machines > 0 && rounds > 0 && supersteps > 0);
        let mut plan = Self::new();
        for i in 0..count {
            let h = mix64(seed ^ mix64(i as u64));
            let machine = (h % machines as u64) as usize;
            let round = mix64(h) % rounds;
            let superstep = mix64(h ^ 0xA5A5) % supersteps;
            plan = if i % 2 == 0 {
                plan.panic_at(machine, round, superstep)
            } else {
                plan.delay_at(machine, round, superstep, 1)
            };
        }
        plan
    }

    /// The scheduled points.
    pub fn points(&self) -> &[FaultPoint] {
        &self.points
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Freezes the plan into an injector ready to hand to a run.
    pub fn build(self) -> FaultInjector {
        FaultInjector::new(self)
    }
}

/// A frozen [`FaultPlan`] with one-shot firing state, shared by reference
/// with every worker of a run (and across the retries of a supervised run —
/// a point that already fired stays fired, so recovery does not re-crash).
#[derive(Debug)]
pub struct FaultInjector {
    points: Vec<FaultPoint>,
    fired: Vec<AtomicBool>,
    injected: AtomicU64,
    delayed: AtomicU64,
}

impl FaultInjector {
    /// Freezes `plan` into an injector.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = plan.points.iter().map(|_| AtomicBool::new(false)).collect();
        Self {
            points: plan.points,
            fired,
            injected: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        }
    }

    /// Fires any not-yet-fired fault scheduled at `(machine, round,
    /// superstep)`. Panics (with a message naming the coordinates) for
    /// [`FaultKind::Panic`], sleeps for [`FaultKind::Delay`]. Called by the
    /// execution backends at the top of every worker compute phase; a run
    /// without an injector never reaches this method.
    pub fn trip(&self, machine: usize, round: u64, superstep: u64) {
        for (point, fired) in self.points.iter().zip(&self.fired) {
            if point.machine == machine
                && point.round == round
                && point.superstep == superstep
                && fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                match point.kind {
                    FaultKind::Panic => {
                        self.injected.fetch_add(1, Ordering::Relaxed);
                        distger_obs::instant("fault_panic", machine as i64, round as i64);
                        panic!(
                            "injected fault: machine {machine} round {round} superstep {superstep}"
                        );
                    }
                    FaultKind::Delay(millis) => {
                        self.delayed.fetch_add(1, Ordering::Relaxed);
                        distger_obs::instant("fault_delay", machine as i64, round as i64);
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                }
            }
        }
    }

    /// Panics fired so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Delays fired so far.
    pub fn injected_delays(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }
}

/// How a supervisor retries a run that died to a worker panic.
///
/// The default is **disabled** (zero retries): a panic propagates exactly as
/// it always has. `Copy`, so it threads through the `Copy`-pervasive config
/// structs (`WalkEngineConfig` → `TrainerConfig` → `DistGerConfig`) like the
/// other backend knobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Maximum retry attempts after the first failure (0 = disabled).
    pub max_retries: u32,
    /// Base backoff in milliseconds; attempt `k` sleeps
    /// `backoff_ms << (k − 1)`, capped at 1 s. 0 retries immediately.
    pub backoff_ms: u64,
}

impl RecoveryPolicy {
    /// A policy allowing `max_retries` immediate retries (no backoff —
    /// right for the in-process simulation, where there is no external
    /// resource to wait out).
    pub fn retries(max_retries: u32) -> Self {
        Self {
            max_retries,
            backoff_ms: 0,
        }
    }

    /// Builder-style backoff override.
    pub fn with_backoff_ms(mut self, backoff_ms: u64) -> Self {
        self.backoff_ms = backoff_ms;
        self
    }

    /// Whether any retry is allowed.
    pub fn is_enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// Backoff before retry attempt `attempt` (1-based): exponential in the
    /// attempt number, capped at one second so a misconfigured policy cannot
    /// stall a run for minutes.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        if self.backoff_ms == 0 {
            return Duration::ZERO;
        }
        let shift = attempt.saturating_sub(1).min(10);
        Duration::from_millis((self.backoff_ms << shift).min(1_000))
    }
}

/// Error returned by a supervised run once every retry attempt failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryExhausted {
    /// Attempts made (initial run plus retries).
    pub attempts: u32,
    /// The panic message of the last failed attempt.
    pub last_panic: String,
}

impl std::fmt::Display for RecoveryExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovery exhausted after {} attempt(s); last panic: {}",
            self.attempts, self.last_panic
        )
    }
}

impl std::error::Error for RecoveryExhausted {}

/// Extracts a human-readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_fires_once_at_its_coordinates() {
        let injector = FaultPlan::new().panic_at(1, 2, 3).build();
        // Wrong coordinates: nothing fires.
        injector.trip(1, 2, 2);
        injector.trip(0, 2, 3);
        assert_eq!(injector.injected_faults(), 0);
        // Right coordinates: the panic fires...
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            injector.trip(1, 2, 3);
        }))
        .unwrap_err();
        assert_eq!(
            panic_message(err.as_ref()),
            "injected fault: machine 1 round 2 superstep 3"
        );
        assert_eq!(injector.injected_faults(), 1);
        // ...exactly once: a retried run passing the same point sails through.
        injector.trip(1, 2, 3);
        assert_eq!(injector.injected_faults(), 1);
    }

    #[test]
    fn delay_faults_sleep_instead_of_panicking() {
        let injector = FaultPlan::new().delay_at(0, 0, 0, 1).build();
        injector.trip(0, 0, 0);
        assert_eq!(injector.injected_delays(), 1);
        assert_eq!(injector.injected_faults(), 0);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::seeded(42, 16, 4, 10, 6);
        let b = FaultPlan::seeded(42, 16, 4, 10, 6);
        assert_eq!(a, b, "same seed must give the same schedule");
        let c = FaultPlan::seeded(43, 16, 4, 10, 6);
        assert_ne!(a, c, "different seeds should differ");
        for p in a.points() {
            assert!(p.machine < 4 && p.round < 10 && p.superstep < 6);
        }
        assert_eq!(a.points().len(), 16);
        // Both kinds appear.
        assert!(a.points().iter().any(|p| p.kind == FaultKind::Panic));
        assert!(a
            .points()
            .iter()
            .any(|p| matches!(p.kind, FaultKind::Delay(_))));
    }

    #[test]
    fn recovery_policy_defaults_disabled_with_capped_backoff() {
        let policy = RecoveryPolicy::default();
        assert!(!policy.is_enabled());
        assert_eq!(policy.backoff_for(1), Duration::ZERO);

        let policy = RecoveryPolicy::retries(3).with_backoff_ms(100);
        assert!(policy.is_enabled());
        assert_eq!(policy.backoff_for(1), Duration::from_millis(100));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(200));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(400));
        assert_eq!(
            policy.backoff_for(30),
            Duration::from_millis(1_000),
            "backoff is capped at one second"
        );
    }

    #[test]
    fn recovery_exhausted_formats_the_last_panic() {
        let err = RecoveryExhausted {
            attempts: 4,
            last_panic: "injected fault: machine 0 round 1 superstep 0".into(),
        };
        let text = err.to_string();
        assert!(text.contains("4 attempt(s)"), "{text}");
        assert!(text.contains("machine 0 round 1"), "{text}");
    }
}
