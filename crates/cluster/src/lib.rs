//! Simulated distributed runtime for the DistGER reproduction.
//!
//! The paper evaluates on a physical 8-machine cluster connected by a
//! 100 Gbps network. This crate replaces that hardware with an in-process
//! simulation that preserves every quantity the paper's analysis depends on:
//!
//! * a fixed set of logical **machines**, each owning the nodes assigned to it
//!   by a `distger-partition` [`Partitioning`](distger_partition::Partitioning);
//! * **Bulk Synchronous Parallel** supersteps ([`bsp`]) in which machines do
//!   local work concurrently (real OS threads) and exchange messages at the
//!   superstep boundary, exactly like KnightKing's walker engine (§2.2) —
//!   executed by default on a persistent, barrier-coordinated worker
//!   [`pool`] so a superstep boundary costs two barrier crossings instead
//!   of `N` thread spawns and joins — and, for multi-round callers,
//!   [`run_bsp_round_loop`] keeps that one pool alive across *every* round
//!   of a run, executing round boundaries (harvesting, convergence checks,
//!   next-round seeding) as coordinator-exclusive control phases;
//! * per-machine **communication accounting** ([`comm`]): every cross-machine
//!   message is counted with an explicit byte size, and an analytic
//!   [`NetworkModel`] converts the traffic into modelled communication time;
//! * **memory accounting** ([`memory`]) for the Table 3 / Table 8 footprints;
//! * **fault tolerance** ([`fault`]): deterministic fault injection
//!   ([`FaultPlan`] / [`FaultInjector`]) threaded through the execution
//!   backends as a zero-cost-when-disabled hook, and supervised recovery
//!   ([`run_bsp_supervised`]) that restores a caller checkpoint and retries
//!   a poisoned run under a bounded [`RecoveryPolicy`].

pub mod bsp;
pub mod comm;
pub mod config;
pub mod fault;
pub mod memory;
pub mod pool;
pub mod transport;
pub mod wire;

pub use bsp::{
    run_bsp, run_bsp_round_loop, run_bsp_round_loop_with, run_bsp_supervised, run_bsp_with,
    BspOutcome, Mailbox, Outbox,
};
pub use comm::{CommStats, MessageSize, NetworkModel, WireStats};
pub use config::ClusterConfig;
pub use fault::{
    panic_message, FaultInjector, FaultKind, FaultPlan, FaultPoint, RecoveryExhausted,
    RecoveryPolicy,
};
pub use memory::MemoryEstimate;
pub use pool::{
    run_rounds, run_rounds_with, BarrierPoisoned, EpochBarrier, ExecutionBackend, PoolStats,
};
pub use transport::{
    gather_trace_events, machine_split, ControlChannel, InMemoryTransport, SocketTransport,
    Transport, TransportKind,
};
pub use wire::{read_frame, write_frame, Frame, Wire, WireReader};

/// Identifier of a simulated machine (re-exported from `distger-partition` so
/// downstream crates see a single definition).
pub use distger_partition::MachineId;
