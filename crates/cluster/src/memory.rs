//! Per-machine memory accounting for the Table 3 / Table 8 experiments.
//!
//! The paper reports the average per-machine memory footprint of the sampling
//! and training phases. In this reproduction the corresponding data structures
//! (graph partition, walker state, corpus shard, embedding matrices, buffers)
//! register their sizes here so the harness can print the same rows.

/// A named breakdown of estimated resident memory.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryEstimate {
    components: Vec<(String, usize)>,
}

impl MemoryEstimate {
    /// An empty estimate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named component of `bytes` bytes.
    pub fn add(&mut self, name: impl Into<String>, bytes: usize) -> &mut Self {
        self.components.push((name.into(), bytes));
        self
    }

    /// Merges another estimate into this one, keeping its component names.
    pub fn merge(&mut self, other: &MemoryEstimate) {
        self.components.extend(other.components.iter().cloned());
    }

    /// Total bytes across all components.
    pub fn total_bytes(&self) -> usize {
        self.components.iter().map(|(_, b)| b).sum()
    }

    /// Total in gigabytes (decimal GB, as the paper reports).
    pub fn total_gb(&self) -> f64 {
        self.total_bytes() as f64 / 1e9
    }

    /// Component view: `(name, bytes)` in insertion order.
    pub fn components(&self) -> &[(String, usize)] {
        &self.components
    }
}

/// Size in bytes of a slice of `T` (contents only, not the header).
pub fn slice_bytes<T>(slice: &[T]) -> usize {
    std::mem::size_of_val(slice)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut m = MemoryEstimate::new();
        m.add("graph", 1_000).add("walkers", 500);
        assert_eq!(m.total_bytes(), 1_500);
        assert_eq!(m.components().len(), 2);
        assert!((m.total_gb() - 1.5e-6).abs() < 1e-15);
    }

    #[test]
    fn merge_combines_components() {
        let mut a = MemoryEstimate::new();
        a.add("x", 10);
        let mut b = MemoryEstimate::new();
        b.add("y", 20);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 30);
    }

    #[test]
    fn slice_bytes_counts_elements() {
        let v = vec![0u32; 100];
        assert_eq!(slice_bytes(&v), 400);
        let w = vec![0.0f64; 8];
        assert_eq!(slice_bytes(&w), 64);
    }
}
