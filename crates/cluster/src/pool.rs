//! Persistent BSP worker pool.
//!
//! [`run_bsp`](crate::run_bsp) originally spawned one fresh OS thread per
//! machine per superstep. That is correct but expensive exactly where DistGER
//! lives: information-centrality early termination produces *many small
//! rounds*, so the per-superstep thread-spawn/join cost (tens of microseconds
//! each) dominates the handful of walker steps a machine actually executes in
//! a superstep. This module provides the alternative: a pool of worker
//! threads created **once per BSP invocation** — each worker permanently
//! pinned to one machine index — coordinated by a reusable two-phase
//! [`EpochBarrier`], so a superstep boundary costs two barrier crossings
//! instead of `N` spawns and `N` joins.
//!
//! Which strategy runs is selected by [`ExecutionBackend`], mirroring the
//! `FreqBackend` / `SamplingBackend` pattern of the walks crate: the pool is
//! the optimized default, spawn-per-step is retained as the reference
//! implementation for equivalence tests and benchmarks. Both strategies
//! execute the same round structure, so the message schedule — and therefore
//! every sampled walk — is bit-identical between them.
//!
//! # Panic safety
//! A barrier is only as good as its worst participant: if a worker panics
//! between two `wait` calls, everyone else would block forever. Every
//! participant therefore holds a poison guard whose `Drop` (which runs during
//! unwinding) [`poison`](EpochBarrier::poison)s the barrier; poisoned waits
//! return an error, all surviving participants exit their loops, and the
//! original panic propagates through `std::thread::scope` instead of
//! deadlocking the run.

use crate::fault::FaultInjector;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Which thread-management strategy executes the supersteps of a BSP run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionBackend {
    /// Run-scoped persistent worker pool: one thread per machine created
    /// once per *run* and kept alive across every round — round boundaries
    /// (corpus harvesting, convergence checks, next-round seeding) execute
    /// as coordinator-exclusive control phases between barrier generations
    /// (the optimized default; see
    /// [`run_bsp_round_loop`](crate::run_bsp_round_loop)).
    #[default]
    RoundLoop,
    /// Per-round persistent worker pool: one thread per machine created once
    /// per BSP invocation, supersteps separated by a reusable two-phase
    /// barrier. A multi-round driver spawns `machines × rounds` threads
    /// (kept selectable as the per-round reference for equivalence tests
    /// and benchmarks).
    Pool,
    /// One fresh OS thread per machine per superstep (the original reference
    /// implementation, kept selectable for equivalence tests and benchmarks).
    SpawnPerStep,
}

impl ExecutionBackend {
    /// Display name used by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionBackend::RoundLoop => "round_loop",
            ExecutionBackend::Pool => "pool",
            ExecutionBackend::SpawnPerStep => "spawn_per_step",
        }
    }
}

/// Error returned by [`EpochBarrier::wait`] when a participant panicked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarrierPoisoned;

struct BarrierState {
    /// Participants arrived in the current generation.
    arrived: usize,
    /// Generation counter; bumped when the last participant arrives.
    epoch: u64,
    /// Set when a participant panicked; permanently fails all waits.
    poisoned: bool,
}

/// A reusable counting barrier with an explicit poison channel.
///
/// Unlike [`std::sync::Barrier`], a wait can fail: when any participant calls
/// [`poison`](EpochBarrier::poison) (normally from a panic guard), every
/// current and future [`wait`](EpochBarrier::wait) returns
/// [`BarrierPoisoned`] instead of blocking, which is what turns a worker
/// panic into an orderly shutdown rather than a deadlock.
///
/// The barrier is generation-counted ("epochs"), so the same instance is
/// reused for every phase of every superstep — the two phases of a superstep
/// are simply two consecutive generations.
pub struct EpochBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

impl EpochBarrier {
    /// A barrier for `parties` participants.
    ///
    /// # Panics
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "need at least one barrier participant");
        Self {
            parties,
            state: Mutex::new(BarrierState {
                arrived: 0,
                epoch: 0,
                poisoned: false,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Blocks until all `parties` participants have called `wait` in the
    /// current generation, or until the barrier is poisoned.
    ///
    /// Lock poisoning is recovered rather than propagated: `BarrierState` is
    /// three plain counters/flags with no invariant spanning statements, so
    /// it is valid in whatever state a panicking holder left it — and the
    /// barrier has its own explicit poison channel that the panic guards
    /// drive. Panicking here instead would turn an orderly poisoned-barrier
    /// shutdown into a double panic inside `Drop`, which aborts the process.
    pub fn wait(&self) -> Result<(), BarrierPoisoned> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.poisoned {
            return Err(BarrierPoisoned);
        }
        state.arrived += 1;
        if state.arrived == self.parties {
            state.arrived = 0;
            state.epoch = state.epoch.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(());
        }
        let epoch = state.epoch;
        while state.epoch == epoch && !state.poisoned {
            state = self
                .cvar
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.poisoned {
            Err(BarrierPoisoned)
        } else {
            Ok(())
        }
    }

    /// Marks the barrier as failed and wakes every waiter. All subsequent
    /// waits return [`BarrierPoisoned`] immediately.
    ///
    /// Recovers a poisoned lock for the same reason as
    /// [`wait`](EpochBarrier::wait) — this method is called from panic
    /// guards, where a second panic would abort the process.
    pub fn poison(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.poisoned = true;
        self.cvar.notify_all();
    }

    /// Whether [`poison`](EpochBarrier::poison) has been called.
    pub fn is_poisoned(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .poisoned
    }
}

/// Poisons the barrier if the holding thread unwinds (drop during a panic).
struct PoisonOnPanic<'a>(&'a EpochBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Statistics of one pooled round loop.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Rounds executed (for BSP: supersteps).
    pub rounds: u64,
    /// Coordination overhead derived from **measured barrier waits**: the
    /// coordinator's total wait at round-start barriers (time for the
    /// slowest worker to arrive) plus the *minimum* worker's total wait at
    /// round-end barriers (every worker's end wait includes the barrier
    /// release cost; the minimum isolates it from straggler slack, which is
    /// compute imbalance rather than coordination). For spawn-per-step,
    /// which has no barrier, this equals
    /// [`wall_sync_secs`](PoolStats::wall_sync_secs).
    pub sync_secs: f64,
    /// The historical accounting of the same overhead: per round, the
    /// wall-clock round time minus the slowest worker's compute time,
    /// summed over rounds. Kept alongside [`sync_secs`](PoolStats::sync_secs)
    /// because it is an *inference* (anything-that-isn't-compute) rather
    /// than a measurement; the two agree within scheduling noise, which the
    /// regression test pins down.
    pub wall_sync_secs: f64,
    /// OS threads spawned by this invocation — always exactly the worker
    /// count: the whole point of the pool is that no round spawns anything.
    pub spawn_count: u64,
}

/// Runs coordinated rounds on `workers` persistent worker threads.
///
/// The coordinator (the calling thread) and the workers alternate in
/// lock-step:
///
/// 1. the coordinator runs `control(round)` **exclusively** — no worker is
///    executing — and returns whether another round should run;
/// 2. all workers concurrently run `work(worker, round)` (worker `i` is
///    permanently pinned to index `i` for the whole run);
/// 3. back to 1 with `round + 1`.
///
/// The exclusive/concurrent alternation is enforced by a single reusable
/// [`EpochBarrier`] crossed twice per round (round start and round end), so
/// `control` may freely mutate state that `work` reads — callers typically
/// share per-worker slots through `Mutex`es that are never contended.
///
/// Returns the executed round count and the accumulated coordination
/// overhead (see [`PoolStats`]).
///
/// # Panics
/// A panic in `work` or `control` poisons the barrier (so no participant
/// deadlocks) and then propagates to the caller.
pub fn run_rounds<C, W>(workers: usize, control: C, work: W) -> PoolStats
where
    C: FnMut(u64) -> bool,
    W: Fn(usize, u64) + Sync,
{
    run_rounds_with(workers, control, work, None)
}

/// [`run_rounds`] with an optional [`FaultInjector`] hook.
///
/// When `faults` is `Some`, every worker calls
/// [`trip(worker, round, 0)`](FaultInjector::trip) at the top of its compute
/// phase, so a plan can panic or delay machine `m` at the start of round `r`.
/// `None` (the [`run_rounds`] path) skips the hook entirely — the disabled
/// case costs nothing.
pub fn run_rounds_with<C, W>(
    workers: usize,
    mut control: C,
    work: W,
    faults: Option<&FaultInjector>,
) -> PoolStats
where
    C: FnMut(u64) -> bool,
    W: Fn(usize, u64) + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let barrier = EpochBarrier::new(workers + 1);
    let stop = AtomicBool::new(false);
    // Per-worker compute time of the latest round, in nanoseconds. Workers
    // write before the round-end barrier and the coordinator reads after it,
    // so Relaxed ordering suffices (the barrier provides the happens-before).
    let compute_nanos: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    // Per-worker *cumulative* round-end barrier wait, read only after the
    // scope joins every worker (a per-round slot would race: the coordinator
    // leaves the end barrier before the workers finish timing their waits).
    let end_wait_nanos: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let mut coordinator_start_wait_nanos: u64 = 0;
    let mut stats = PoolStats {
        spawn_count: workers as u64,
        ..PoolStats::default()
    };

    std::thread::scope(|scope| {
        // If `control` panics below, this guard poisons the barrier during
        // unwinding so the workers blocked at a round-start wait exit and the
        // scope can join them (then re-raise the panic).
        let _coordinator_guard = PoisonOnPanic(&barrier);
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let barrier = &barrier;
                let stop = &stop;
                let work = &work;
                let slot = &compute_nanos[worker];
                let wait_slot = &end_wait_nanos[worker];
                scope.spawn(move || {
                    let _guard = PoisonOnPanic(barrier);
                    let mut round: u64 = 0;
                    loop {
                        // Round start: wait for the coordinator's control.
                        if barrier.wait().is_err() {
                            return;
                        }
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        if let Some(injector) = faults {
                            injector.trip(worker, round, 0);
                        }
                        let started = Instant::now();
                        {
                            let _span =
                                distger_obs::span!("superstep", machine = worker, round = round);
                            work(worker, round);
                        }
                        slot.store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        // Round end: hand exclusivity back to the coordinator.
                        let wait_started = Instant::now();
                        let waited = {
                            let _span =
                                distger_obs::span!("barrier_wait", machine = worker, round = round);
                            barrier.wait()
                        };
                        wait_slot
                            .fetch_add(wait_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        if waited.is_err() {
                            return;
                        }
                        round += 1;
                    }
                })
            })
            .collect();

        loop {
            let go_on = {
                let _span = distger_obs::span!("control", round = stats.rounds);
                control(stats.rounds)
            };
            if !go_on {
                stop.store(true, Ordering::Release);
                // Release the workers so they observe the stop flag.
                let _ = barrier.wait();
                break;
            }
            let round_started = Instant::now();
            if barrier.wait().is_err() {
                break; // a worker panicked; re-raised from its join below
            }
            coordinator_start_wait_nanos += round_started.elapsed().as_nanos() as u64;
            if barrier.wait().is_err() {
                break;
            }
            let wall = round_started.elapsed().as_secs_f64();
            let slowest = compute_nanos
                .iter()
                .map(|nanos| nanos.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0) as f64
                / 1e9;
            stats.wall_sync_secs += (wall - slowest).max(0.0);
            stats.rounds += 1;
        }

        // Join explicitly so a panicking worker's original payload propagates
        // (letting the scope auto-join would replace it with the generic
        // "a scoped thread panicked" message).
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    let min_end_wait = end_wait_nanos
        .iter()
        .map(|nanos| nanos.load(Ordering::Relaxed))
        .min()
        .unwrap_or(0);
    stats.sync_secs = (coordinator_start_wait_nanos + min_end_wait) as f64 / 1e9;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn rounds_run_all_workers_in_lockstep() {
        let counters: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let stats = run_rounds(
            3,
            |round| round < 5,
            |worker, round| {
                // Lock-step: at round r every worker has done exactly r units.
                assert_eq!(counters[worker].load(Ordering::SeqCst), round as usize);
                counters[worker].fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(stats.rounds, 5);
        assert_eq!(stats.spawn_count, 3, "one spawn per worker, ever");
        assert!(stats.sync_secs >= 0.0);
        for counter in &counters {
            assert_eq!(counter.load(Ordering::SeqCst), 5);
        }
    }

    #[test]
    fn control_runs_exclusively_between_rounds() {
        // `control` mutates a plain (non-atomic would not compile; the point
        // is no torn interleaving) counter that workers read: the barrier
        // alternation makes the read deterministic.
        let shared = AtomicUsize::new(0);
        run_rounds(
            4,
            |round| {
                shared.store(round as usize * 10, Ordering::SeqCst);
                round < 3
            },
            |_, round| {
                assert_eq!(shared.load(Ordering::SeqCst), round as usize * 10);
            },
        );
    }

    #[test]
    fn zero_rounds_when_control_declines_immediately() {
        let stats = run_rounds(2, |_| false, |_, _| panic!("no round should run"));
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.sync_secs, 0.0);
    }

    #[test]
    #[should_panic(expected = "worker 1 exploded")]
    fn worker_panic_propagates_without_deadlock() {
        run_rounds(
            4,
            |round| round < 100,
            |worker, round| {
                if worker == 1 && round == 2 {
                    panic!("worker 1 exploded");
                }
            },
        );
    }

    #[test]
    #[should_panic(expected = "control exploded")]
    fn control_panic_propagates_without_deadlock() {
        run_rounds(
            3,
            |round| {
                if round == 1 {
                    panic!("control exploded");
                }
                true
            },
            |_, _| {},
        );
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let barrier = EpochBarrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..100 {
                    barrier.wait().unwrap();
                }
            });
            for _ in 0..100 {
                barrier.wait().unwrap();
            }
        });
        assert!(!barrier.is_poisoned());
    }

    #[test]
    fn poisoned_barrier_wakes_waiters_and_fails_future_waits() {
        let barrier = EpochBarrier::new(3);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| barrier.wait());
            // Give the waiter a moment to block, then poison.
            std::thread::sleep(std::time::Duration::from_millis(10));
            barrier.poison();
            assert_eq!(waiter.join().unwrap(), Err(BarrierPoisoned));
        });
        assert_eq!(barrier.wait(), Err(BarrierPoisoned));
        assert!(barrier.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "at least one barrier participant")]
    fn zero_parties_rejected() {
        EpochBarrier::new(0);
    }

    #[test]
    fn barrier_survives_a_poisoned_state_lock() {
        // Regression for the unwrap audit: a thread that panics while
        // holding the state mutex poisons the *lock* (not just the barrier).
        // Every barrier entry point must keep functioning afterwards instead
        // of double-panicking — in production the poisoner is a panic guard
        // running during unwinding, where a second panic aborts the process.
        let barrier = EpochBarrier::new(2);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = barrier.state.lock().unwrap();
            panic!("poison the state lock");
        }));
        assert!(barrier.state.is_poisoned(), "lock should be poisoned");

        assert!(
            !barrier.is_poisoned(),
            "explicit poison flag still readable"
        );
        barrier.poison();
        assert!(barrier.is_poisoned());
        assert_eq!(barrier.wait(), Err(BarrierPoisoned));
    }

    #[test]
    fn barrier_wait_sync_agrees_with_wall_accounting() {
        // Regression for the sync_secs redesign: the coordinator's control
        // phase (here: a deliberate 4ms sleep per round, ~120ms total) runs
        // *before* the measured window of either accounting, so neither may
        // attribute it to synchronization — and the two accountings must
        // agree within scheduling noise on uniform 1ms workers.
        let stats = run_rounds(
            4,
            |round| {
                if round > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(4));
                }
                round < 30
            },
            |_, _| std::thread::sleep(std::time::Duration::from_millis(1)),
        );
        assert_eq!(stats.rounds, 30);
        assert!(
            stats.sync_secs < 0.060,
            "barrier-wait sync {} must exclude the ~120ms of control time",
            stats.sync_secs
        );
        assert!(
            stats.wall_sync_secs < 0.060,
            "wall-minus-slowest sync {} must exclude the ~120ms of control time",
            stats.wall_sync_secs
        );
        assert!(
            (stats.sync_secs - stats.wall_sync_secs).abs() < 0.050,
            "accountings diverged: barrier-wait {} vs wall {}",
            stats.sync_secs,
            stats.wall_sync_secs
        );
    }

    #[test]
    #[should_panic(expected = "injected fault: machine 2 round 3 superstep 0")]
    fn injected_worker_panic_propagates_cleanly() {
        let injector = crate::fault::FaultPlan::new().panic_at(2, 3, 0).build();
        run_rounds_with(4, |round| round < 100, |_, _| {}, Some(&injector));
    }

    #[test]
    fn injected_delay_leaves_results_unchanged() {
        let counters: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let injector = crate::fault::FaultPlan::new().delay_at(1, 2, 0, 1).build();
        let stats = run_rounds_with(
            3,
            |round| round < 5,
            |worker, _| {
                counters[worker].fetch_add(1, Ordering::SeqCst);
            },
            Some(&injector),
        );
        assert_eq!(stats.rounds, 5);
        assert_eq!(injector.injected_delays(), 1);
        for counter in &counters {
            assert_eq!(counter.load(Ordering::SeqCst), 5);
        }
    }
}
