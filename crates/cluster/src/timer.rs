//! Deprecated: wall-clock phase timing moved to `distger-obs`.
//!
//! [`Stopwatch`] and [`PhaseTimes`] now live in the observability layer
//! (`distger_obs`), alongside the trace clock and metrics registry they
//! belong with. This module re-exports them unchanged so existing imports
//! keep compiling; new code should use `distger_obs` (or the `obs` facade in
//! the root crate) directly.

/// Deprecated re-export; use [`distger_obs::Stopwatch`].
#[deprecated(
    since = "0.1.0",
    note = "moved to distger_obs::Stopwatch; import it from distger-obs"
)]
pub type Stopwatch = distger_obs::Stopwatch;

/// Deprecated re-export; use [`distger_obs::PhaseTimes`].
#[deprecated(
    since = "0.1.0",
    note = "moved to distger_obs::PhaseTimes; import it from distger-obs"
)]
pub type PhaseTimes = distger_obs::PhaseTimes;
