//! The transport layer: how machines exchange superstep message batches.
//!
//! Every "distributed" code path in this reproduction drives its machines
//! through a [`Transport`]: the BSP engine's superstep exchange, the walk
//! engine's round loop and the trainer's replica sync all speak this trait
//! instead of touching memory directly. Two implementations exist:
//!
//! * [`InMemoryTransport`] — the reference. All machines live in one address
//!   space (one process, one thread pool) and the exchange moves queues with
//!   [`Vec::append`], exactly like the pre-trait engine. It is infallible
//!   and bit-identical to the historical behaviour.
//! * [`SocketTransport`] — machines live in **separate OS processes**
//!   connected by TCP in a star topology: endpoint 0 (the *coordinator*)
//!   accepts one connection per worker endpoint, routes cross-endpoint
//!   batches, and drives the control channel (pending flags, broadcast /
//!   gather / scatter). Frames use the hand-rolled [`wire`](crate::wire)
//!   format — versioned, length-prefixed, FNV-1a64-checksummed — and every
//!   malformed frame is an [`io::Error`], never a panic.
//!
//! ## Bit-identity contract
//!
//! The in-memory exchange delivers, for every destination inbox, the queued
//! messages in **ascending source-machine order** (source 0's queue first).
//! `SocketTransport` preserves exactly that order no matter how machines are
//! spread over endpoints: each endpoint merges its local-source queues and
//! the delivered remote entries per destination, sorted by source machine.
//! `prop_transport` (in `distger-walks`) proves corpora and communication
//! traces bit-identical between the two transports across seeds × machines.
//!
//! ## Process-launch handshake
//!
//! 1. The coordinator binds a listener and spawns (or is joined by) worker
//!    processes that connect to it.
//! 2. Each worker sends a `Hello` frame; the coordinator assigns endpoint
//!    ids in accept order (1, 2, …) and answers with `HelloAck { endpoint,
//!    endpoints, num_machines }`.
//! 3. Machines are split contiguously across endpoints
//!    ([`machine_split`]); every endpoint derives its own machine range
//!    locally, so no further negotiation is needed.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::time::{Duration, Instant};

use crate::bsp::Outbox;
use crate::comm::{MessageSize, WireStats};
use crate::wire::{
    invalid, kind, put_bytes, put_u32, read_frame, write_frame, Frame, Wire, WireReader,
};

/// Which transport a run should use; carried by the engine/trainer configs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// All machines in one process, exchange through memory (the reference).
    #[default]
    InMemory,
    /// Machines split over processes connected by loopback/LAN TCP.
    Socket,
}

impl TransportKind {
    /// Short human-readable name (for reports and error messages).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::InMemory => "in-memory",
            TransportKind::Socket => "socket",
        }
    }
}

/// Contiguous machine range owned by `endpoint` when `num_machines` machines
/// are split over `endpoints` processes (remainder machines go to the lowest
/// endpoints).
pub fn machine_split(num_machines: usize, endpoints: usize, endpoint: usize) -> Range<usize> {
    assert!(endpoints > 0, "need at least one endpoint");
    assert!(endpoint < endpoints, "endpoint out of range");
    let base = num_machines / endpoints;
    let rem = num_machines % endpoints;
    let start = endpoint * base + endpoint.min(rem);
    let len = base + usize::from(endpoint < rem);
    start..start + len
}

/// The control side of a transport: coordination traffic that is not
/// superstep message batches. All three collectives are **synchronous** —
/// every endpoint must call the same method in the same order (the same
/// contract as an MPI communicator).
pub trait ControlChannel {
    /// This process's endpoint id (0 is the coordinator).
    fn endpoint(&self) -> usize;

    /// Total number of endpoints (processes) in the job.
    fn endpoints(&self) -> usize;

    /// True on the coordinator endpoint.
    fn is_coordinator(&self) -> bool {
        self.endpoint() == 0
    }

    /// Coordinator sends `payload` to every worker and returns it; workers
    /// ignore their argument and return the received payload.
    fn broadcast(&mut self, payload: &[u8]) -> io::Result<Vec<u8>>;

    /// Workers send `payload` to the coordinator, which returns all payloads
    /// indexed by endpoint (its own at index 0). Workers return an empty
    /// vector.
    fn gather(&mut self, payload: &[u8]) -> io::Result<Vec<Vec<u8>>>;

    /// Coordinator sends `payloads[e]` to endpoint `e` and returns
    /// `payloads[0]`; workers ignore their argument and return the received
    /// payload.
    fn scatter(&mut self, payloads: &[Vec<u8>]) -> io::Result<Vec<u8>>;

    /// Measured on-the-wire traffic so far (all-zero for in-memory).
    fn wire_stats(&self) -> WireStats;

    /// Estimated offset of the coordinator's trace clock relative to this
    /// endpoint's, in microseconds: adding it to a local
    /// [`distger_obs::now_micros`] reading maps the timestamp onto the
    /// coordinator's time base. Zero on the coordinator itself and for every
    /// in-process transport (shared clock); the socket transport measures it
    /// during the HELLO handshake. Used by the cross-process trace merge to
    /// align worker span timelines before shipping them.
    fn clock_offset_micros(&self) -> i64 {
        0
    }
}

/// Ships this endpoint's thread-local trace events to the coordinator, which
/// absorbs every endpoint's batch (its own included) into the global trace
/// registry for the merged-timeline export. Event timestamps are shifted onto
/// the coordinator's time base using [`ControlChannel::clock_offset_micros`],
/// and each batch is stamped with the endpoint id as its `pid`.
///
/// A **synchronous collective**: when tracing is enabled every endpoint of
/// the job must call it at the same point in the protocol (the drivers call
/// it at round boundaries, right after the continue/stop broadcast). When
/// tracing is disabled it is a pure no-op — no drain, no traffic — which
/// keeps the disabled-path wire protocol bit-identical; the tracing flag is
/// propagated through the job spec, so all endpoints agree on it.
///
/// Only the calling thread's ring is drained ([`distger_obs::drain_thread`]):
/// loopback harnesses host several endpoints as threads of one process, and
/// draining all rings would steal a co-located endpoint's events.
pub fn gather_trace_events<C: ControlChannel + ?Sized>(channel: &mut C) -> io::Result<()> {
    if !distger_obs::tracing_enabled() {
        return Ok(());
    }
    let events = distger_obs::drain_thread();
    let payload = distger_obs::encode_events(
        &events,
        channel.endpoint() as u32,
        channel.clock_offset_micros(),
    );
    let gathered = channel.gather(&payload)?;
    if channel.is_coordinator() {
        for payload in &gathered {
            let events = distger_obs::decode_events(payload)
                .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
            distger_obs::absorb(events);
        }
    }
    Ok(())
}

/// A transport moves superstep message batches between machines and answers
/// the global "any messages pending?" question that decides whether another
/// superstep runs.
pub trait Transport<M: MessageSize>: ControlChannel {
    /// Total machines in the job (across all endpoints).
    fn num_machines(&self) -> usize;

    /// The machines hosted by this endpoint. `outboxes`/`inboxes` passed to
    /// [`exchange`](Transport::exchange) are indexed relative to this range.
    fn local_machines(&self) -> Range<usize>;

    /// Superstep boundary: drains every local outbox queue and delivers all
    /// messages into the destination inboxes, preserving the reference
    /// ascending-source order per inbox. `outboxes[i]` / `inboxes[i]` belong
    /// to machine `local_machines().start + i`.
    fn exchange(
        &mut self,
        superstep: u64,
        outboxes: &mut [&mut Outbox<M>],
        inboxes: &mut [&mut Vec<M>],
    ) -> io::Result<()>;

    /// Global OR of the per-endpoint "local inboxes non-empty" flags; a
    /// barrier (every endpoint must call it once per superstep boundary).
    fn sync_pending(&mut self, local_pending: bool) -> io::Result<bool>;
}

// ---------------------------------------------------------------------------
// InMemoryTransport
// ---------------------------------------------------------------------------

/// The reference transport: one process, all machines local, the exchange is
/// a queue move. Infallible; kept bit-identical to the pre-trait engine.
#[derive(Debug, Clone)]
pub struct InMemoryTransport {
    num_machines: usize,
}

impl InMemoryTransport {
    /// A transport hosting all `num_machines` machines in this process.
    pub fn new(num_machines: usize) -> Self {
        assert!(num_machines > 0, "need at least one machine");
        InMemoryTransport { num_machines }
    }
}

impl ControlChannel for InMemoryTransport {
    fn endpoint(&self) -> usize {
        0
    }

    fn endpoints(&self) -> usize {
        1
    }

    fn broadcast(&mut self, payload: &[u8]) -> io::Result<Vec<u8>> {
        Ok(payload.to_vec())
    }

    fn gather(&mut self, payload: &[u8]) -> io::Result<Vec<Vec<u8>>> {
        Ok(vec![payload.to_vec()])
    }

    fn scatter(&mut self, payloads: &[Vec<u8>]) -> io::Result<Vec<u8>> {
        match payloads.first() {
            Some(first) => Ok(first.clone()),
            None => Err(invalid("scatter needs one payload per endpoint")),
        }
    }

    fn wire_stats(&self) -> WireStats {
        WireStats::default()
    }
}

impl<M: MessageSize> Transport<M> for InMemoryTransport {
    fn num_machines(&self) -> usize {
        self.num_machines
    }

    fn local_machines(&self) -> Range<usize> {
        0..self.num_machines
    }

    fn exchange(
        &mut self,
        _superstep: u64,
        outboxes: &mut [&mut Outbox<M>],
        inboxes: &mut [&mut Vec<M>],
    ) -> io::Result<()> {
        debug_assert_eq!(outboxes.len(), self.num_machines);
        debug_assert_eq!(inboxes.len(), self.num_machines);
        // Ascending source outer, so every destination inbox receives its
        // messages in ascending source order — the reference order the whole
        // bit-identity story rests on. `append` moves elements and keeps
        // both allocations alive (steady state is allocation-free).
        for outbox in outboxes.iter_mut() {
            for (dest, inbox) in inboxes.iter_mut().enumerate() {
                inbox.append(&mut outbox.queues[dest]);
            }
        }
        Ok(())
    }

    fn sync_pending(&mut self, local_pending: bool) -> io::Result<bool> {
        Ok(local_pending)
    }
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

/// One framed TCP connection plus its per-direction sequence counters.
struct FrameConn {
    stream: TcpStream,
    /// Endpoint id expected in received frames' `sender` field.
    peer: u32,
    send_seq: u64,
    recv_seq: u64,
    /// Global-registry counter handles, resolved once per connection so the
    /// per-frame cost is a relaxed atomic add. These feed the same numbers
    /// into the observability layer that `WireStats` carries through the
    /// result structs — one for dashboards/Prometheus, one for reports.
    obs_frames_sent: distger_obs::Counter,
    obs_bytes_sent: distger_obs::Counter,
    obs_frames_received: distger_obs::Counter,
    obs_bytes_received: distger_obs::Counter,
}

impl FrameConn {
    fn new(stream: TcpStream, peer: u32) -> Self {
        let metrics = distger_obs::global();
        FrameConn {
            stream,
            peer,
            send_seq: 0,
            recv_seq: 0,
            obs_frames_sent: metrics.counter("transport.frames_sent"),
            obs_bytes_sent: metrics.counter("transport.bytes_sent"),
            obs_frames_received: metrics.counter("transport.frames_received"),
            obs_bytes_received: metrics.counter("transport.bytes_received"),
        }
    }

    fn send(
        &mut self,
        me: u32,
        kind_: u8,
        payload: &[u8],
        stats: &mut WireStats,
    ) -> io::Result<()> {
        let started = Instant::now();
        let bytes = write_frame(&mut self.stream, kind_, me, self.send_seq, payload)?;
        stats.wire_nanos += started.elapsed().as_nanos() as u64;
        stats.frames_sent += 1;
        stats.bytes_sent += bytes as u64;
        self.obs_frames_sent.inc();
        self.obs_bytes_sent.add(bytes as u64);
        if kind_ == kind::BATCH || kind_ == kind::DELIVER {
            stats.batch_bytes_sent += payload.len() as u64;
        }
        self.send_seq += 1;
        Ok(())
    }

    fn recv(&mut self, expect: u8, stats: &mut WireStats) -> io::Result<Frame> {
        let started = Instant::now();
        let frame = read_frame(&mut self.stream)?;
        stats.wire_nanos += started.elapsed().as_nanos() as u64;
        stats.frames_received += 1;
        stats.bytes_received += (crate::wire::FRAME_HEADER_BYTES + frame.payload.len()) as u64;
        self.obs_frames_received.inc();
        self.obs_bytes_received
            .add((crate::wire::FRAME_HEADER_BYTES + frame.payload.len()) as u64);
        if frame.kind != expect {
            return Err(invalid(format!(
                "expected frame kind {expect}, got {} (protocol desync?)",
                frame.kind
            )));
        }
        if frame.sender != self.peer {
            return Err(invalid(format!(
                "frame from endpoint {}, expected {}",
                frame.sender, self.peer
            )));
        }
        if frame.seq != self.recv_seq {
            return Err(invalid(format!(
                "out-of-sequence frame: got seq {}, expected {}",
                frame.seq, self.recv_seq
            )));
        }
        self.recv_seq += 1;
        Ok(frame)
    }
}

/// One cross-endpoint queue in flight: the messages machine `src` queued for
/// machine `dest` this superstep, still in encoded form. The coordinator
/// routes these without decoding (only the destination endpoint pays the
/// decode), which also keeps routing independent of the message type.
struct RawEntry {
    src: u32,
    dest: u32,
    count: u32,
    bytes: Vec<u8>,
}

fn encode_entries(entries: &[RawEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, entries.len() as u32);
    for entry in entries {
        put_u32(&mut out, entry.src);
        put_u32(&mut out, entry.dest);
        put_u32(&mut out, entry.count);
        put_bytes(&mut out, &entry.bytes);
    }
    out
}

fn decode_entries(payload: &[u8]) -> io::Result<Vec<RawEntry>> {
    let mut r = WireReader::new(payload);
    let n = r.u32()? as usize;
    let mut entries = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let src = r.u32()?;
        let dest = r.u32()?;
        let count = r.u32()?;
        let bytes = r.bytes()?.to_vec();
        entries.push(RawEntry {
            src,
            dest,
            count,
            bytes,
        });
    }
    r.finish()?;
    Ok(entries)
}

/// TCP star-topology transport: machines split over processes, endpoint 0
/// routing all cross-endpoint traffic. See the module docs for the
/// handshake, the frame kinds and the bit-identity contract.
pub struct SocketTransport {
    endpoint: usize,
    endpoints: usize,
    num_machines: usize,
    local: Range<usize>,
    /// Coordinator: one conn per worker, index `e - 1` ⇒ endpoint `e`.
    /// Worker: exactly one conn, to the coordinator.
    conns: Vec<FrameConn>,
    stats: WireStats,
    /// Coordinator-clock minus local-clock estimate from the HELLO
    /// handshake; 0 on the coordinator.
    clock_offset_micros: i64,
}

impl SocketTransport {
    /// Runs the accept-side handshake: waits for `endpoints - 1` workers to
    /// connect to `listener`, assigns endpoint ids in accept order, and
    /// answers each `Hello` with the topology. `endpoints == 1` degenerates
    /// to a coordinator-only job with every machine local.
    pub fn coordinator(
        listener: &TcpListener,
        endpoints: usize,
        num_machines: usize,
    ) -> io::Result<Self> {
        if endpoints == 0 {
            return Err(invalid("need at least one endpoint"));
        }
        if num_machines < endpoints {
            return Err(invalid(format!(
                "{num_machines} machines cannot be split over {endpoints} endpoints"
            )));
        }
        let mut conns = Vec::with_capacity(endpoints - 1);
        for e in 1..endpoints {
            let (stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            // The worker does not know its endpoint id yet, so its `Hello`
            // carries the sentinel sender `u32::MAX`; the ack assigns the id.
            let mut conn = FrameConn::new(stream, u32::MAX);
            let mut stats = WireStats::default();
            conn.recv(kind::HELLO, &mut stats)?;
            conn.peer = e as u32;
            let mut ack = Vec::new();
            put_u32(&mut ack, e as u32);
            put_u32(&mut ack, endpoints as u32);
            put_u32(&mut ack, num_machines as u32);
            // Coordinator trace-clock reading, taken as late as possible
            // before the send: the worker brackets the round trip around it
            // to estimate its clock offset for the cross-process trace merge.
            crate::wire::put_u64(&mut ack, distger_obs::now_micros() as u64);
            conn.send(0, kind::HELLO_ACK, &ack, &mut stats)?;
            conns.push(conn);
        }
        Ok(SocketTransport {
            endpoint: 0,
            endpoints,
            num_machines,
            local: machine_split(num_machines, endpoints, 0),
            conns,
            stats: WireStats::default(),
            clock_offset_micros: 0,
        })
    }

    /// Connect-side handshake: dials the coordinator (retrying refused
    /// connections until `timeout`, so workers may start before the
    /// coordinator finishes binding), sends `Hello`, and adopts the endpoint
    /// id and topology from the `HelloAck`.
    pub fn worker(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + timeout;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(err) if Instant::now() < deadline => {
                    let _ = err;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(err) => return Err(err),
            }
        };
        stream.set_nodelay(true)?;
        let mut conn = FrameConn::new(stream, 0);
        let mut stats = WireStats::default();
        let hello_sent = distger_obs::now_micros();
        conn.send(u32::MAX, kind::HELLO, &[], &mut stats)?;
        let ack = conn.recv(kind::HELLO_ACK, &mut stats)?;
        let ack_received = distger_obs::now_micros();
        let mut r = WireReader::new(&ack.payload);
        let endpoint = r.u32()? as usize;
        let endpoints = r.u32()? as usize;
        let num_machines = r.u32()? as usize;
        let coordinator_micros = r.u64()? as i64;
        r.finish()?;
        if endpoint == 0 || endpoint >= endpoints || num_machines < endpoints {
            return Err(invalid(format!(
                "nonsensical HelloAck: endpoint {endpoint} of {endpoints}, {num_machines} machines"
            )));
        }
        // NTP-style midpoint estimate: the coordinator stamped its clock
        // between our send and our receive, so the local time it corresponds
        // to is (best guess, symmetric-latency assumption) the midpoint of
        // the round trip. Error is bounded by half the RTT — microseconds on
        // loopback/LAN, far below span durations at round granularity.
        let midpoint = hello_sent + (ack_received - hello_sent) / 2;
        let clock_offset_micros = coordinator_micros - midpoint;
        Ok(SocketTransport {
            endpoint,
            endpoints,
            num_machines,
            local: machine_split(num_machines, endpoints, endpoint),
            conns: vec![conn],
            stats,
            clock_offset_micros,
        })
    }

    fn local_index(&self, machine: usize) -> Option<usize> {
        if self.local.contains(&machine) {
            Some(machine - self.local.start)
        } else {
            None
        }
    }

    /// Drains every local outbox queue whose destination lives on another
    /// endpoint into raw entries, in (source, destination) ascending order.
    fn collect_remote<M: Wire + MessageSize>(
        &self,
        outboxes: &mut [&mut Outbox<M>],
    ) -> Vec<RawEntry> {
        let mut entries = Vec::new();
        for (i, outbox) in outboxes.iter_mut().enumerate() {
            let src = (self.local.start + i) as u32;
            for dest in 0..self.num_machines {
                if self.local.contains(&dest) || outbox.queues[dest].is_empty() {
                    continue;
                }
                let mut bytes = Vec::new();
                let mut count = 0u32;
                for msg in outbox.queues[dest].drain(..) {
                    msg.encode_into(&mut bytes);
                    count += 1;
                }
                entries.push(RawEntry {
                    src,
                    dest: dest as u32,
                    count,
                    bytes,
                });
            }
        }
        entries
    }

    /// Delivers this endpoint's share of the superstep: local-source queues
    /// plus the entries routed here, merged per destination inbox in
    /// ascending source-machine order — the reference order.
    fn merge_local<M: Wire + MessageSize>(
        &self,
        delivered: Vec<RawEntry>,
        outboxes: &mut [&mut Outbox<M>],
        inboxes: &mut [&mut Vec<M>],
    ) -> io::Result<()> {
        let mut remote: HashMap<(u32, u32), RawEntry> = HashMap::with_capacity(delivered.len());
        for entry in delivered {
            if self.local_index(entry.dest as usize).is_none() {
                return Err(invalid(format!(
                    "entry for machine {} delivered to endpoint {} (owns {:?})",
                    entry.dest, self.endpoint, self.local
                )));
            }
            if remote.insert((entry.src, entry.dest), entry).is_some() {
                return Err(invalid("duplicate (src, dest) entry in delivery"));
            }
        }
        for (di, inbox) in inboxes.iter_mut().enumerate() {
            let dest = (self.local.start + di) as u32;
            for src in 0..self.num_machines {
                if let Some(si) = self.local_index(src) {
                    inbox.append(&mut outboxes[si].queues[dest as usize]);
                } else if let Some(entry) = remote.remove(&(src as u32, dest)) {
                    let mut r = WireReader::new(&entry.bytes);
                    inbox.reserve(entry.count as usize);
                    for _ in 0..entry.count {
                        inbox.push(M::decode(&mut r)?);
                    }
                    r.finish()?;
                }
            }
        }
        if !remote.is_empty() {
            return Err(invalid("delivery contained entries for no local machine"));
        }
        Ok(())
    }
}

impl ControlChannel for SocketTransport {
    fn endpoint(&self) -> usize {
        self.endpoint
    }

    fn endpoints(&self) -> usize {
        self.endpoints
    }

    fn broadcast(&mut self, payload: &[u8]) -> io::Result<Vec<u8>> {
        if self.endpoint == 0 {
            let me = self.endpoint as u32;
            for conn in &mut self.conns {
                conn.send(me, kind::BROADCAST, payload, &mut self.stats)?;
            }
            Ok(payload.to_vec())
        } else {
            let frame = self.conns[0].recv(kind::BROADCAST, &mut self.stats)?;
            Ok(frame.payload)
        }
    }

    fn gather(&mut self, payload: &[u8]) -> io::Result<Vec<Vec<u8>>> {
        if self.endpoint == 0 {
            let mut all = Vec::with_capacity(self.endpoints);
            all.push(payload.to_vec());
            for conn in &mut self.conns {
                let frame = conn.recv(kind::GATHER, &mut self.stats)?;
                all.push(frame.payload);
            }
            Ok(all)
        } else {
            let me = self.endpoint as u32;
            self.conns[0].send(me, kind::GATHER, payload, &mut self.stats)?;
            Ok(Vec::new())
        }
    }

    fn scatter(&mut self, payloads: &[Vec<u8>]) -> io::Result<Vec<u8>> {
        if self.endpoint == 0 {
            if payloads.len() != self.endpoints {
                return Err(invalid(format!(
                    "scatter got {} payloads for {} endpoints",
                    payloads.len(),
                    self.endpoints
                )));
            }
            let me = self.endpoint as u32;
            for (conn, payload) in self.conns.iter_mut().zip(&payloads[1..]) {
                conn.send(me, kind::SCATTER, payload, &mut self.stats)?;
            }
            Ok(payloads[0].clone())
        } else {
            let frame = self.conns[0].recv(kind::SCATTER, &mut self.stats)?;
            Ok(frame.payload)
        }
    }

    fn wire_stats(&self) -> WireStats {
        self.stats
    }

    fn clock_offset_micros(&self) -> i64 {
        self.clock_offset_micros
    }
}

impl<M: Wire + MessageSize> Transport<M> for SocketTransport {
    fn num_machines(&self) -> usize {
        self.num_machines
    }

    fn local_machines(&self) -> Range<usize> {
        self.local.clone()
    }

    fn exchange(
        &mut self,
        superstep: u64,
        outboxes: &mut [&mut Outbox<M>],
        inboxes: &mut [&mut Vec<M>],
    ) -> io::Result<()> {
        let _ = superstep;
        if outboxes.len() != self.local.len() || inboxes.len() != self.local.len() {
            return Err(invalid(format!(
                "exchange expects {} local outboxes/inboxes, got {}/{}",
                self.local.len(),
                outboxes.len(),
                inboxes.len()
            )));
        }
        let outgoing = self.collect_remote(outboxes);
        let delivered = if self.endpoint == 0 {
            // Route: own cross-endpoint entries plus every worker's batch,
            // partitioned by destination endpoint. Reading batches in
            // endpoint order makes routing deterministic, though delivery
            // order per inbox is fixed by the ascending-source merge anyway.
            let mut per_endpoint: Vec<Vec<RawEntry>> = Vec::with_capacity(self.endpoints);
            per_endpoint.resize_with(self.endpoints, Vec::new);
            let num_machines = self.num_machines;
            let endpoints = self.endpoints;
            let mut route = |entry: RawEntry| -> io::Result<()> {
                if entry.dest as usize >= num_machines {
                    return Err(invalid(format!("entry for unknown machine {}", entry.dest)));
                }
                let mut owner = 0;
                while !machine_split(num_machines, endpoints, owner)
                    .contains(&(entry.dest as usize))
                {
                    owner += 1;
                }
                per_endpoint[owner].push(entry);
                Ok(())
            };
            for entry in outgoing {
                route(entry)?;
            }
            for e in 1..self.endpoints {
                let frame = self.conns[e - 1].recv(kind::BATCH, &mut self.stats)?;
                for entry in decode_entries(&frame.payload)? {
                    route(entry)?;
                }
            }
            let own = std::mem::take(&mut per_endpoint[0]);
            for (e, entries) in per_endpoint.iter().enumerate().skip(1) {
                let payload = encode_entries(entries);
                self.conns[e - 1].send(0, kind::DELIVER, &payload, &mut self.stats)?;
            }
            own
        } else {
            let payload = encode_entries(&outgoing);
            let me = self.endpoint as u32;
            self.conns[0].send(me, kind::BATCH, &payload, &mut self.stats)?;
            let frame = self.conns[0].recv(kind::DELIVER, &mut self.stats)?;
            decode_entries(&frame.payload)?
        };
        self.merge_local(delivered, outboxes, inboxes)
    }

    fn sync_pending(&mut self, local_pending: bool) -> io::Result<bool> {
        if self.endpoint == 0 {
            let mut any = local_pending;
            for conn in &mut self.conns {
                let frame = conn.recv(kind::PENDING, &mut self.stats)?;
                let mut r = WireReader::new(&frame.payload);
                any |= r.u8()? != 0;
                r.finish()?;
            }
            let verdict = [u8::from(any)];
            for conn in &mut self.conns {
                conn.send(0, kind::PENDING_RESULT, &verdict, &mut self.stats)?;
            }
            Ok(any)
        } else {
            let me = self.endpoint as u32;
            let flag = [u8::from(local_pending)];
            self.conns[0].send(me, kind::PENDING, &flag, &mut self.stats)?;
            let frame = self.conns[0].recv(kind::PENDING_RESULT, &mut self.stats)?;
            let mut r = WireReader::new(&frame.payload);
            let any = r.u8()? != 0;
            r.finish()?;
            Ok(any)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    /// A minimal wire-capable message for transport tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct TestMsg(u64);

    impl MessageSize for TestMsg {
        fn size_bytes(&self) -> usize {
            8
        }
    }

    impl Wire for TestMsg {
        fn encode_into(&self, out: &mut Vec<u8>) {
            crate::wire::put_u64(out, self.0);
        }

        fn decode(r: &mut WireReader<'_>) -> io::Result<Self> {
            Ok(TestMsg(r.u64()?))
        }
    }

    #[test]
    fn machine_split_covers_every_machine_exactly_once() {
        for machines in 1..20 {
            for endpoints in 1..=machines {
                let mut seen = vec![false; machines];
                let mut prev_end = 0;
                for e in 0..endpoints {
                    let range = machine_split(machines, endpoints, e);
                    assert_eq!(range.start, prev_end, "ranges must be contiguous");
                    prev_end = range.end;
                    assert!(!range.is_empty(), "no endpoint may be machine-less");
                    for m in range {
                        assert!(!seen[m]);
                        seen[m] = true;
                    }
                }
                assert_eq!(prev_end, machines);
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    /// Fills `machines` outboxes with a deterministic traffic pattern:
    /// machine `s` sends `(s + 1)` messages to every machine `d` (self
    /// included) with payload `s * 100 + d * 10 + i`.
    fn seed_outboxes(machines: usize) -> Vec<Outbox<TestMsg>> {
        (0..machines)
            .map(|s| {
                let mut outbox = Outbox::new(s, machines);
                for d in 0..machines {
                    for i in 0..=s {
                        outbox.send(d, TestMsg((s * 100 + d * 10 + i) as u64));
                    }
                }
                outbox
            })
            .collect()
    }

    fn reference_inboxes(machines: usize) -> Vec<Vec<TestMsg>> {
        let mut outboxes = seed_outboxes(machines);
        let mut inboxes: Vec<Vec<TestMsg>> = vec![Vec::new(); machines];
        let mut transport = InMemoryTransport::new(machines);
        let mut out_refs: Vec<&mut Outbox<TestMsg>> = outboxes.iter_mut().collect();
        let mut in_refs: Vec<&mut Vec<TestMsg>> = inboxes.iter_mut().collect();
        transport.exchange(0, &mut out_refs, &mut in_refs).unwrap();
        inboxes
    }

    #[test]
    fn in_memory_exchange_is_ascending_source_order() {
        let inboxes = reference_inboxes(3);
        // Machine 1's inbox: src 0 sends one message, src 1 two, src 2 three,
        // in ascending source order.
        let expected: Vec<u64> = vec![10, 110, 111, 210, 211, 212];
        let got: Vec<u64> = inboxes[1].iter().map(|m| m.0).collect();
        assert_eq!(got, expected);
    }

    /// The acceptance property in miniature: for several machines ×
    /// endpoints splits, a socket exchange over real loopback TCP delivers
    /// exactly the inboxes the in-memory reference delivers.
    #[test]
    fn socket_exchange_matches_in_memory_bit_for_bit() {
        for machines in 1..=5 {
            for endpoints in 1..=machines.min(4) {
                let reference = reference_inboxes(machines);
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let addr = listener.local_addr().unwrap();
                let workers: Vec<_> = (1..endpoints)
                    .map(|_| {
                        std::thread::spawn(move || {
                            let mut t =
                                SocketTransport::worker(addr, Duration::from_secs(5)).unwrap();
                            run_endpoint(&mut t, machines)
                        })
                    })
                    .collect();
                let mut coord =
                    SocketTransport::coordinator(&listener, endpoints, machines).unwrap();
                let mut all = run_endpoint(&mut coord, machines);
                for worker in workers {
                    all.extend(worker.join().unwrap());
                }
                all.sort_by_key(|(machine, _)| *machine);
                assert!(coord.wire_stats().frames_sent > 0 || endpoints == 1);
                for (machine, inbox) in all {
                    assert_eq!(
                        inbox, reference[machine],
                        "machine {machine} inbox diverged ({machines} machines, {endpoints} endpoints)"
                    );
                }
            }
        }
    }

    /// Runs one endpoint's side of a single exchange and returns its local
    /// (machine, inbox) pairs.
    fn run_endpoint(t: &mut SocketTransport, machines: usize) -> Vec<(usize, Vec<TestMsg>)> {
        let local = Transport::<TestMsg>::local_machines(t);
        let mut all_outboxes = seed_outboxes(machines);
        let mut outboxes: Vec<Outbox<TestMsg>> = all_outboxes
            .drain(..)
            .enumerate()
            .filter(|(m, _)| local.contains(m))
            .map(|(_, o)| o)
            .collect();
        let mut inboxes: Vec<Vec<TestMsg>> = vec![Vec::new(); local.len()];
        let mut out_refs: Vec<&mut Outbox<TestMsg>> = outboxes.iter_mut().collect();
        let mut in_refs: Vec<&mut Vec<TestMsg>> = inboxes.iter_mut().collect();
        t.exchange(0, &mut out_refs, &mut in_refs).unwrap();
        // The pending collective must agree globally: inboxes are non-empty
        // everywhere in this traffic pattern.
        assert!(Transport::<TestMsg>::sync_pending(t, !inboxes.is_empty()).unwrap());
        local.zip(inboxes).collect()
    }

    #[test]
    fn control_collectives_roundtrip_over_loopback() {
        let machines = 4;
        let endpoints = 3;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let workers: Vec<_> = (1..endpoints)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut t = SocketTransport::worker(addr, Duration::from_secs(5)).unwrap();
                    // Both sides of a loopback pair share one trace epoch, so
                    // the measured offset must be tiny (bounded by the RTT).
                    assert!(
                        t.clock_offset_micros().abs() < 1_000_000,
                        "loopback clock offset {}µs",
                        t.clock_offset_micros()
                    );
                    let b = t.broadcast(&[]).unwrap();
                    assert_eq!(b, b"round-1");
                    assert!(t.gather(&[t.endpoint() as u8]).unwrap().is_empty());
                    let s = t.scatter(&[]).unwrap();
                    assert_eq!(s, vec![t.endpoint() as u8 * 2]);
                    assert!(!Transport::<TestMsg>::sync_pending(&mut t, false).unwrap());
                })
            })
            .collect();
        let mut coord = SocketTransport::coordinator(&listener, endpoints, machines).unwrap();
        assert_eq!(
            coord.clock_offset_micros(),
            0,
            "coordinator is the reference clock"
        );
        assert_eq!(coord.broadcast(b"round-1").unwrap(), b"round-1");
        let gathered = coord.gather(&[0]).unwrap();
        assert_eq!(gathered, vec![vec![0], vec![1], vec![2]]);
        let scattered = coord.scatter(&[vec![0], vec![2], vec![4]]).unwrap();
        assert_eq!(scattered, vec![0]);
        assert!(!Transport::<TestMsg>::sync_pending(&mut coord, false).unwrap());
        for worker in workers {
            worker.join().unwrap();
        }
        let stats = coord.wire_stats();
        assert!(stats.frames_sent >= 4 && stats.frames_received >= 4);
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
    }

    /// A stream that is not speaking the protocol must surface as an error,
    /// never a panic, on the coordinator's accept path.
    #[test]
    fn garbage_handshake_errors_cleanly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let garbler = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            // Keep some bytes coming so the read never sees a clean EOF.
            stream.write_all(&[0u8; 64]).unwrap();
        });
        let err = SocketTransport::coordinator(&listener, 2, 4).err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        garbler.join().unwrap();
    }

    #[test]
    fn worker_rejects_nonsensical_ack_and_times_out_on_dead_addr() {
        // Refused connection with a tiny timeout errors (no listener).
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let err = SocketTransport::worker(dead, Duration::from_millis(50));
        assert!(err.is_err());
    }
}
