//! Hand-rolled wire format for the socket transport.
//!
//! The build environment has no serde, so frames are encoded by hand in the
//! same spirit as `crates/bench/src/json.rs`: explicit little-endian fields,
//! explicit errors, no panics on malformed input. Every frame is
//! length-prefixed and carries an FNV-1a64 checksum over its payload (seeded
//! by the header fields), so a corrupt or truncated stream surfaces as
//! `io::ErrorKind::InvalidData` / `UnexpectedEof` — never as a panic or an
//! out-of-bounds read.
//!
//! ## Frame layout (32-byte header + payload)
//!
//! | offset | size | field         | notes                                   |
//! |--------|------|---------------|-----------------------------------------|
//! | 0      | 4    | magic         | `b"DGTF"`                               |
//! | 4      | 2    | version       | little-endian, currently `1`            |
//! | 6      | 1    | kind          | frame-kind discriminant                 |
//! | 7      | 1    | flags         | reserved, currently `0`                 |
//! | 8      | 4    | sender        | endpoint id of the sending process      |
//! | 12     | 8    | seq           | per-connection sequence number          |
//! | 20     | 4    | payload\_len  | sanity-capped at [`MAX_PAYLOAD_BYTES`]  |
//! | 24     | 8    | checksum      | FNV-1a64 over header prefix ∥ payload   |
//!
//! The checksum folds the first 24 header bytes before the payload, so a
//! frame whose header was corrupted in flight fails the checksum even when
//! the payload survived intact.

use std::io::{self, Read, Write};

/// Magic bytes opening every frame: **D**ist**G**er **T**ransport **F**rame.
pub const FRAME_MAGIC: [u8; 4] = *b"DGTF";
/// Current wire-format version. Bumped on any incompatible layout change.
pub const WIRE_VERSION: u16 = 1;
/// Fixed size of the frame header in bytes.
pub const FRAME_HEADER_BYTES: usize = 32;
/// Upper bound on a single frame payload. A length prefix beyond this is
/// treated as stream corruption rather than an allocation request.
pub const MAX_PAYLOAD_BYTES: u32 = 1 << 30;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Frame kinds used by the socket transport protocol.
pub mod kind {
    /// Worker → coordinator: first frame after connecting.
    pub const HELLO: u8 = 1;
    /// Coordinator → worker: endpoint assignment + topology.
    pub const HELLO_ACK: u8 = 2;
    /// Worker → coordinator: all cross-endpoint message queues.
    pub const BATCH: u8 = 3;
    /// Coordinator → worker: the queues destined for that endpoint.
    pub const DELIVER: u8 = 4;
    /// Worker → coordinator: local "any messages pending" flag.
    pub const PENDING: u8 = 5;
    /// Coordinator → worker: global OR of the pending flags.
    pub const PENDING_RESULT: u8 = 6;
    /// Coordinator → worker: opaque control payload (all endpoints).
    pub const BROADCAST: u8 = 7;
    /// Worker → coordinator: opaque control payload (collected in order).
    pub const GATHER: u8 = 8;
    /// Coordinator → worker: opaque per-endpoint control payload.
    pub const SCATTER: u8 = 9;
}

/// Builds an `InvalidData` error; the standard failure mode for malformed
/// frames (mirrors the checkpoint codec's convention).
pub(crate) fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn eof(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, msg.to_string())
}

/// Byte-wise FNV-1a64 over `parts`, concatenated.
fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut hash = FNV_OFFSET;
    for part in parts {
        for &byte in *part {
            hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding helpers (append little-endian fields to a byte buffer)
// ---------------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (round-trips NaN payloads).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `u32` length prefix followed by the raw bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

// ---------------------------------------------------------------------------
// WireReader — a bounds-checked cursor over a received payload
// ---------------------------------------------------------------------------

/// Cursor over a decoded payload. Every accessor is bounds-checked and
/// returns `UnexpectedEof` instead of panicking when the payload is shorter
/// than the schema expects.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(eof("payload truncated"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> io::Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` stored as its bit pattern.
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Errors unless the payload was consumed exactly.
    pub fn finish(self) -> io::Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(invalid(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Wire trait — self-describing encode/decode for message types
// ---------------------------------------------------------------------------

/// A type that can cross the socket transport. Implementations must be
/// total: `decode` returns an error on any malformed input, never panics.
pub trait Wire: Sized {
    /// Appends the encoded form to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);
    /// Decodes one value, advancing the reader past it.
    fn decode(r: &mut WireReader<'_>) -> io::Result<Self>;

    /// Convenience: encodes into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// A decoded frame: the header fields the protocol layer routes on, plus the
/// checksum-verified payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame-kind discriminant (see [`kind`]).
    pub kind: u8,
    /// Reserved flag bits (currently always zero).
    pub flags: u8,
    /// Endpoint id of the sender.
    pub sender: u32,
    /// Per-connection sequence number.
    pub seq: u64,
    /// Checksum-verified payload bytes.
    pub payload: Vec<u8>,
}

/// Encodes a complete frame (header + payload) into one buffer, ready for a
/// single `write_all`.
pub fn encode_frame(kind: u8, sender: u32, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    put_u16(&mut out, WIRE_VERSION);
    put_u8(&mut out, kind);
    put_u8(&mut out, 0); // flags
    put_u32(&mut out, sender);
    put_u64(&mut out, seq);
    put_u32(&mut out, payload.len() as u32);
    let checksum = fnv1a64(&[&out[..24], payload]);
    put_u64(&mut out, checksum);
    out.extend_from_slice(payload);
    out
}

/// Writes one frame, returning the number of bytes put on the wire.
pub fn write_frame(
    w: &mut impl Write,
    kind: u8,
    sender: u32,
    seq: u64,
    payload: &[u8],
) -> io::Result<usize> {
    let bytes = encode_frame(kind, sender, seq, payload);
    w.write_all(&bytes)?;
    Ok(bytes.len())
}

/// Reads and validates one frame. Malformed input — bad magic, unknown
/// version, oversized length prefix, checksum mismatch, truncation — is an
/// `InvalidData`/`UnexpectedEof` error, never a panic.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    r.read_exact(&mut header)?;
    if header[..4] != FRAME_MAGIC {
        return Err(invalid("bad frame magic (not a DGTF stream?)"));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != WIRE_VERSION {
        return Err(invalid(format!(
            "unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )));
    }
    let kind = header[6];
    let flags = header[7];
    let sender = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    let seq = u64::from_le_bytes([
        header[12], header[13], header[14], header[15], header[16], header[17], header[18],
        header[19],
    ]);
    let payload_len = u32::from_le_bytes([header[20], header[21], header[22], header[23]]);
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(invalid(format!(
            "frame payload length {payload_len} exceeds cap {MAX_PAYLOAD_BYTES}"
        )));
    }
    let stored_checksum = u64::from_le_bytes([
        header[24], header[25], header[26], header[27], header[28], header[29], header[30],
        header[31],
    ]);
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload)?;
    let computed = fnv1a64(&[&header[..24], &payload]);
    if computed != stored_checksum {
        return Err(invalid(format!(
            "frame checksum mismatch (stored {stored_checksum:#018x}, computed {computed:#018x})"
        )));
    }
    Ok(Frame {
        kind,
        flags,
        sender,
        seq,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        encode_frame(kind::BATCH, 3, 42, b"hello transport")
    }

    #[test]
    fn frame_roundtrip() {
        let bytes = sample_frame();
        assert_eq!(bytes.len(), FRAME_HEADER_BYTES + 15);
        let frame = read_frame(&mut &bytes[..]).expect("roundtrip");
        assert_eq!(frame.kind, kind::BATCH);
        assert_eq!(frame.sender, 3);
        assert_eq!(frame.seq, 42);
        assert_eq!(frame.payload, b"hello transport");
    }

    #[test]
    fn empty_payload_roundtrip() {
        let bytes = encode_frame(kind::PENDING, 0, 0, &[]);
        let frame = read_frame(&mut &bytes[..]).expect("roundtrip");
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let clean = sample_frame();
        for i in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[i] ^= 1 << bit;
                let result = read_frame(&mut &bytes[..]);
                assert!(
                    result.is_err(),
                    "flipping bit {bit} of byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let clean = sample_frame();
        for len in 0..clean.len() {
            let result = read_frame(&mut &clean[..len]);
            assert!(result.is_err(), "truncation to {len} bytes went undetected");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut bytes = sample_frame();
        // Overwrite payload_len with a huge value; the checksum no longer
        // matters because the cap check fires first.
        bytes[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds cap"));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = sample_frame();
        bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert!(err.to_string().contains("unsupported wire version"));
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut out = Vec::new();
        put_u32(&mut out, 5);
        let mut r = WireReader::new(&out);
        assert_eq!(r.u32().unwrap(), 5);
        assert!(r.u8().is_err());
        let mut r2 = WireReader::new(&out);
        // A length prefix pointing past the end must error, not panic.
        assert!(r2.bytes().is_err());
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut out = Vec::new();
        put_u16(&mut out, 9);
        let mut r = WireReader::new(&out);
        assert_eq!(r.u8().unwrap(), 9);
        assert!(r.finish().is_err());
        let mut r = WireReader::new(&out);
        r.u16().unwrap();
        assert!(WireReader::new(&[]).finish().is_ok());
        r.finish().unwrap();
    }

    #[test]
    fn f64_bit_pattern_roundtrip() {
        let mut out = Vec::new();
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE] {
            put_f64(&mut out, v);
        }
        let mut r = WireReader::new(&out);
        assert_eq!(r.f64().unwrap().to_bits(), 0.0f64.to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), 1.5);
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.f64().unwrap(), f64::MIN_POSITIVE);
        r.finish().unwrap();
    }
}
