//! Property-based tests for the cluster runtime: the poison-aware
//! [`EpochBarrier`] that coordinates the worker pool, and the run-scoped
//! [`run_bsp_round_loop`] driver against the per-round [`run_bsp`]
//! reference.
//!
//! The barrier properties are the safety contract every pooled run leans on:
//! a panicking participant must *unblock* everyone (no deadlock) and the
//! original payload must re-raise; a healthy barrier must be reusable for
//! arbitrarily many generations. Both are exercised over randomized
//! participant counts, not just the fixed shapes of the unit tests.

use distger_cluster::{
    panic_message, run_bsp, run_bsp_round_loop, run_bsp_supervised, run_rounds, run_rounds_with,
    BarrierPoisoned, CommStats, EpochBarrier, FaultPlan, Mailbox, MessageSize, Outbox,
    RecoveryPolicy,
};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// A token that fans out to other machines while `remaining > 0`.
struct Token {
    remaining: u32,
}

impl MessageSize for Token {
    fn size_bytes(&self) -> usize {
        16
    }
}

/// A BSP step with a concrete higher-ranked signature (returning the closure
/// from a function pins the `for<'a>` bound the drivers expect): count each
/// token's value, then fan `fan` successors one hop down the ring.
fn fan_step(
    machines: usize,
    fan: u32,
) -> impl for<'a> Fn(usize, &mut u64, Mailbox<'a, Token>, &mut Outbox<Token>) + Sync {
    move |machine, state, mailbox, outbox| {
        for token in mailbox.messages {
            *state += token.remaining as u64 + 1;
            if token.remaining > 0 {
                for offset in 0..fan {
                    outbox.send(
                        (machine + 1 + offset as usize) % machines,
                        Token {
                            remaining: token.remaining - 1,
                        },
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A worker panicking mid-round-loop — any worker, any round, any pool
    /// size — must poison the barrier so every other participant unblocks,
    /// and the *original* payload must re-raise from `run_rounds`. The test
    /// returning at all is the no-deadlock half of the property.
    #[test]
    fn worker_panic_mid_round_loop_unblocks_everyone_and_reraises(
        workers in 1usize..7,
        villain_pick in 0usize..7,
        panic_round in 0u64..4,
    ) {
        let villain = villain_pick % workers;
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_rounds(
                workers,
                |round| round < 20,
                |worker, round| {
                    if worker == villain && round == panic_round {
                        panic!("worker {worker} exploded at round {round}");
                    }
                },
            )
        }));
        let payload = result.expect_err("the worker panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        prop_assert!(
            message == format!("worker {villain} exploded at round {panic_round}"),
            "panic payload was replaced: {message:?}"
        );
    }

    /// Same contract when the *coordinator* (the control phase) panics:
    /// workers parked at the round-start barrier must be released to exit.
    #[test]
    fn control_panic_mid_round_loop_unblocks_workers_and_reraises(
        workers in 1usize..7,
        panic_round in 0u64..4,
    ) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_rounds(
                workers,
                |round| {
                    if round == panic_round {
                        panic!("control exploded at round {round}");
                    }
                    true
                },
                |_, _| {},
            )
        }));
        let payload = result.expect_err("the control panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        prop_assert!(
            message == format!("control exploded at round {panic_round}"),
            "panic payload was replaced: {message:?}"
        );
    }

    /// One barrier instance must serve arbitrarily many generations (the
    /// run-scoped loop crosses it twice per superstep for the whole run):
    /// all `parties` participants complete `generations >= 3` crossings and
    /// the barrier stays healthy.
    #[test]
    fn barrier_is_reusable_across_generations(
        parties in 2usize..9,
        generations in 3u64..48,
    ) {
        let barrier = EpochBarrier::new(parties);
        std::thread::scope(|scope| {
            for _ in 0..parties - 1 {
                scope.spawn(|| {
                    for _ in 0..generations {
                        barrier.wait().unwrap();
                    }
                });
            }
            for _ in 0..generations {
                barrier.wait().unwrap();
            }
        });
        prop_assert!(!barrier.is_poisoned());
    }

    /// Poisoning with any number of participants blocked on the barrier
    /// wakes every one of them with an error, and every future wait fails
    /// immediately.
    #[test]
    fn poison_unblocks_every_blocked_waiter(parties in 2usize..9) {
        let barrier = EpochBarrier::new(parties);
        let mut woken = Vec::new();
        std::thread::scope(|scope| {
            // parties - 1 waiters block (the barrier needs one more).
            let waiters: Vec<_> = (0..parties - 1)
                .map(|_| scope.spawn(|| barrier.wait()))
                .collect();
            std::thread::sleep(Duration::from_millis(2));
            barrier.poison();
            woken = waiters
                .into_iter()
                .map(|waiter| waiter.join().expect("waiter must not panic"))
                .collect();
        });
        for result in woken {
            prop_assert_eq!(result, Err(BarrierPoisoned));
        }
        prop_assert_eq!(barrier.wait(), Err(BarrierPoisoned));
        prop_assert!(barrier.is_poisoned());
    }

    /// The run-scoped round loop is observably identical to one `run_bsp`
    /// invocation per round — final states, summed traffic, max-per-round
    /// superstep statistics and superstep totals — while spawning `machines`
    /// threads instead of `machines × rounds`.
    #[test]
    fn round_loop_equals_per_round_bsp(
        machines in 1usize..6,
        rounds in 1u64..6,
        fan in 1u32..4,
    ) {
        let step = fan_step(machines, fan);
        let seeds = |round: u64| -> Vec<Vec<Token>> {
            (0..machines)
                .map(|m| {
                    vec![Token {
                        remaining: ((m as u64 + round) % 3) as u32,
                    }]
                })
                .collect()
        };

        let mut per_round_states = vec![0u64; machines];
        let mut per_round_comm = CommStats::new();
        let mut per_round_supersteps = 0u64;
        let mut per_round_spawns = 0u64;
        for round in 0..rounds {
            let outcome = run_bsp(per_round_states, seeds(round), 10_000, &step);
            per_round_states = outcome.states;
            per_round_comm.merge(&outcome.comm);
            per_round_supersteps += outcome.supersteps;
            per_round_spawns += outcome.spawn_count;
        }

        let mut next_round = 0u64;
        let outcome = run_bsp_round_loop(vec![0u64; machines], 10_000, &step, |_states| {
            if next_round == rounds {
                None
            } else {
                next_round += 1;
                Some(seeds(next_round - 1))
            }
        });

        prop_assert_eq!(&outcome.states, &per_round_states);
        prop_assert_eq!(&outcome.comm, &per_round_comm);
        prop_assert_eq!(outcome.supersteps, per_round_supersteps);
        prop_assert_eq!(outcome.spawn_count, machines as u64);
        prop_assert_eq!(per_round_spawns, machines as u64 * rounds);
    }

    /// An injected worker panic via `run_rounds_with` — any worker, any
    /// round, any pool size — propagates cleanly (no deadlock) with the
    /// injector's coordinate-naming message, and fires exactly once.
    #[test]
    fn injected_pool_fault_propagates_cleanly(
        workers in 1usize..7,
        villain_pick in 0usize..7,
        fault_round in 0u64..4,
    ) {
        let villain = villain_pick % workers;
        let faults = FaultPlan::new().panic_at(villain, fault_round, 0).build();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_rounds_with(workers, |round| round < 8, |_, _| {}, Some(&faults))
        }));
        let payload = result.expect_err("the injected panic must propagate");
        prop_assert_eq!(
            panic_message(payload.as_ref()),
            format!("injected fault: machine {villain} round {fault_round} superstep 0")
        );
        prop_assert_eq!(faults.injected_faults(), 1);
    }

    /// Delay faults are outcome-neutral by construction: a token-ring round
    /// loop with an injected straggler produces states, traffic and
    /// superstep counts identical to the undelayed run.
    #[test]
    fn delay_faults_are_outcome_neutral(
        machines in 1usize..5,
        rounds in 1u64..5,
        fan in 1u32..4,
        delay_machine in 0usize..5,
        delay_round in 0u64..5,
    ) {
        let step = fan_step(machines, fan);
        let seeds = |round: u64| -> Vec<Vec<Token>> {
            (0..machines)
                .map(|m| {
                    vec![Token {
                        remaining: ((m as u64 + round) % 3) as u32,
                    }]
                })
                .collect()
        };

        let mut next_round = 0u64;
        let reference = run_bsp_round_loop(vec![0u64; machines], 10_000, &step, |_states| {
            if next_round == rounds {
                None
            } else {
                next_round += 1;
                Some(seeds(next_round - 1))
            }
        });

        let faults = FaultPlan::new()
            .delay_at(delay_machine % machines, delay_round % rounds, 0, 1)
            .build();
        let mut next_round = 0u64;
        let delayed = distger_cluster::run_bsp_round_loop_with(
            vec![0u64; machines],
            10_000,
            &step,
            |_states, _comm| {
                if next_round == rounds {
                    None
                } else {
                    next_round += 1;
                    Some(seeds(next_round - 1))
                }
            },
            Some(&faults),
        );

        prop_assert_eq!(&delayed.states, &reference.states);
        prop_assert_eq!(&delayed.comm, &reference.comm);
        prop_assert_eq!(delayed.supersteps, reference.supersteps);
        prop_assert_eq!(faults.injected_delays(), 1);
        prop_assert_eq!(faults.injected_faults(), 0);
    }

    /// Supervised recovery of the token-ring loop: a panic anywhere in
    /// (machine, round) space, restored by full replay from round 0 (this
    /// toy keeps no checkpoint — `restore` just resets the seeding cursor),
    /// converges to the fault-free outcome exactly, because the one-shot
    /// injector lets the retry sail past the fired point.
    #[test]
    fn supervised_round_loop_recovers_to_fault_free_outcome(
        machines in 1usize..5,
        rounds in 1u64..5,
        fan in 1u32..4,
        villain_pick in 0usize..5,
        fault_round_pick in 0u64..5,
    ) {
        let step = fan_step(machines, fan);
        let seeds = |round: u64| -> Vec<Vec<Token>> {
            (0..machines)
                .map(|m| {
                    vec![Token {
                        remaining: ((m as u64 + round) % 3) as u32,
                    }]
                })
                .collect()
        };

        let mut next_round = 0u64;
        let reference = run_bsp_round_loop(vec![0u64; machines], 10_000, &step, |_states| {
            if next_round == rounds {
                None
            } else {
                next_round += 1;
                Some(seeds(next_round - 1))
            }
        });

        let faults = FaultPlan::new()
            .panic_at(villain_pick % machines, fault_round_pick % rounds, 0)
            .build();
        let mut cursor = 0u64;
        let outcome = run_bsp_supervised(
            RecoveryPolicy::retries(2),
            &mut cursor,
            |cursor, _attempt| {
                *cursor = 0;
                vec![0u64; machines]
            },
            10_000,
            &step,
            |cursor, _states, _comm| {
                if *cursor == rounds {
                    None
                } else {
                    *cursor += 1;
                    Some(seeds(*cursor - 1))
                }
            },
            Some(&faults),
        )
        .expect("one injected panic must recover within two retries");

        prop_assert_eq!(&outcome.states, &reference.states);
        prop_assert_eq!(&outcome.comm, &reference.comm);
        prop_assert_eq!(outcome.supersteps, reference.supersteps);
        prop_assert_eq!(faults.injected_faults(), 1);
    }

    /// A retry budget smaller than the number of scheduled panics surfaces
    /// `RecoveryExhausted` — a clean error naming the last crash, never a
    /// deadlock or a replaced payload.
    #[test]
    fn supervised_exhaustion_is_a_clean_error(
        machines in 2usize..5,
        rounds in 2u64..5,
        fan in 1u32..4,
    ) {
        let step = fan_step(machines, fan);
        let seeds = |round: u64| -> Vec<Vec<Token>> {
            (0..machines)
                .map(|m| {
                    vec![Token {
                        remaining: ((m as u64 + round) % 3) as u32,
                    }]
                })
                .collect()
        };
        // Two panics in *distinct* rounds (same-round panics race on the
        // barrier), one retry: attempt 1 dies in round 0, attempt 2 dies in
        // round 1, budget spent.
        let faults = FaultPlan::new().panic_at(0, 0, 0).panic_at(1, 1, 0).build();
        let mut cursor = 0u64;
        let err = run_bsp_supervised(
            RecoveryPolicy::retries(1),
            &mut cursor,
            |cursor, _attempt| {
                *cursor = 0;
                vec![0u64; machines]
            },
            10_000,
            &step,
            |cursor, _states, _comm| {
                if *cursor == rounds {
                    None
                } else {
                    *cursor += 1;
                    Some(seeds(*cursor - 1))
                }
            },
            Some(&faults),
        )
        .expect_err("two panics must exhaust a one-retry budget");
        prop_assert_eq!(err.attempts, 2);
        prop_assert!(
            err.last_panic.contains("injected fault: machine 1 round 1"),
            "unexpected last panic: {}",
            err.last_panic
        );
    }
}
