//! Simplified stand-ins for the non-random-walk comparison systems of §6.
//!
//! The paper compares DistGER against PyTorch-BigGraph (PBG) and DistDGL.
//! Neither system can be vendored here, so this module implements small
//! Rust analogues that preserve the *performance-relevant traits* the paper's
//! analysis attributes to them:
//!
//! * [`PbgLikeConfig`] / [`run_pbg_like`] — edge-partitioned training of a
//!   single embedding matrix with a **parameter-server** style full-model
//!   synchronization after every training round (the paper: "the parameter
//!   server … needs to synchronize embeddings with clients, which puts more
//!   load on the communication network").
//! * [`GnnLikeConfig`] / [`run_gnn_like`] — a one-layer mean-aggregator
//!   GraphSAGE trained with neighbour **sampling** per mini-batch and a
//!   gradient synchronization per batch (the paper: ">80 % of the overhead is
//!   for sampling in the GraphSAGE model" and "mini-batch sampling … causes
//!   inefficient synchronization").
//!
//! These are deliberately *not* feature-complete reimplementations; DESIGN.md
//! documents the substitution.

use distger_cluster::CommStats;
use distger_embed::Embeddings;
use distger_graph::{CsrGraph, NodeId};
use distger_obs::{PhaseTimes, Stopwatch};
use distger_walks::rng::SplitMix64;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Configuration of the PyTorch-BigGraph-like baseline.
#[derive(Clone, Copy, Debug)]
pub struct PbgLikeConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Epochs over the edge set.
    pub epochs: usize,
    /// Negative samples per edge.
    pub negatives: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for PbgLikeConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            epochs: 10,
            negatives: 5,
            learning_rate: 0.1,
            seed: 0,
        }
    }
}

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Learned embeddings (node-id indexed).
    pub embeddings: Embeddings,
    /// Wall-clock phase times (partitioning is folded into training here).
    pub times: PhaseTimes,
    /// Cross-machine traffic (parameter-server or gradient synchronization).
    pub comm: CommStats,
}

/// Runs the PBG-like baseline: edges are bucketed by source node across
/// machines, every machine trains dot-product embeddings on its bucket, and
/// the full model is synchronized through a parameter server after each
/// epoch.
pub fn run_pbg_like(
    graph: &CsrGraph,
    num_machines: usize,
    config: &PbgLikeConfig,
) -> BaselineResult {
    assert!(num_machines > 0);
    let n = graph.num_nodes();
    let dim = config.dim;
    let mut watch = Stopwatch::start();
    let mut comm = CommStats::new();

    // Single shared model (the parameter server's copy); machine updates are
    // applied directly but the synchronization traffic is accounted as if each
    // machine exchanged its replica with the server every epoch.
    let mut rng = SplitMix64::new(config.seed);
    let init_scale = 0.5 / (dim as f32).sqrt();
    let mut emb: Vec<f32> = (0..n * dim)
        .map(|_| (rng.next_f64() as f32 - 0.5) * 2.0 * init_scale)
        .collect();

    let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(u, v, _)| (u, v)).collect();
    let buckets: Vec<Vec<(NodeId, NodeId)>> = {
        let mut b: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); num_machines];
        for &(u, v) in &edges {
            b[u as usize % num_machines].push((u, v));
        }
        b
    };

    for epoch in 0..config.epochs {
        // Linear learning-rate decay, as PBG's SGD schedule does.
        let lr = config.learning_rate * (1.0 - epoch as f32 / config.epochs.max(1) as f32).max(0.1);
        for bucket in &buckets {
            for &(u, v) in bucket {
                // Positive update in both directions (undirected edge).
                sgd_pair(&mut emb, dim, u, v, 1.0, lr);
                sgd_pair(&mut emb, dim, v, u, 1.0, lr);
                // Uniform negatives against both endpoints.
                for _ in 0..config.negatives {
                    let w = rng.next_bounded(n) as NodeId;
                    if w != v && w != u {
                        let src = if rng.next_f64() < 0.5 { u } else { v };
                        sgd_pair(&mut emb, dim, src, w, 0.0, lr);
                    }
                }
            }
            // Parameter-server sync: the machine uploads its touched model and
            // downloads the fresh global model (full-model traffic).
            let bytes = n * dim * std::mem::size_of::<f32>();
            comm.record_message(bytes);
            comm.record_message(bytes);
        }
    }

    let training = watch.lap();
    BaselineResult {
        embeddings: Embeddings::from_node_major(emb, dim),
        times: PhaseTimes {
            training_secs: training,
            ..PhaseTimes::default()
        },
        comm,
    }
}

fn sgd_pair(emb: &mut [f32], dim: usize, u: NodeId, v: NodeId, label: f32, lr: f32) {
    let (u, v) = (u as usize, v as usize);
    if u == v {
        return;
    }
    let (a, b) = if u < v {
        let (lo, hi) = emb.split_at_mut(v * dim);
        (&mut lo[u * dim..u * dim + dim], &mut hi[..dim])
    } else {
        let (lo, hi) = emb.split_at_mut(u * dim);
        (&mut hi[..dim], &mut lo[v * dim..v * dim + dim])
    };
    let mut dot = 0.0;
    for i in 0..dim {
        dot += a[i] * b[i];
    }
    let g = (label - sigmoid(dot)) * lr;
    for i in 0..dim {
        let ai = a[i];
        a[i] += g * b[i];
        b[i] += g * ai;
    }
}

/// Configuration of the DistDGL-like GraphSAGE baseline.
#[derive(Clone, Copy, Debug)]
pub struct GnnLikeConfig {
    /// Embedding / hidden dimension.
    pub dim: usize,
    /// Training epochs (full passes over the node set).
    pub epochs: usize,
    /// Neighbours sampled per node (the sampling fan-out that dominates
    /// DistDGL's running time).
    pub fanout: usize,
    /// Mini-batch size; gradients are synchronized after every batch.
    pub batch_size: usize,
    /// Negative samples per node.
    pub negatives: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for GnnLikeConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            epochs: 5,
            fanout: 10,
            batch_size: 64,
            negatives: 5,
            learning_rate: 0.1,
            seed: 0,
        }
    }
}

/// Runs the DistDGL-like baseline: one-layer mean-aggregator GraphSAGE with
/// neighbour sampling, unsupervised (link-reconstruction) loss, and a
/// per-mini-batch gradient synchronization across machines.
pub fn run_gnn_like(
    graph: &CsrGraph,
    num_machines: usize,
    config: &GnnLikeConfig,
) -> BaselineResult {
    assert!(num_machines > 0);
    let n = graph.num_nodes();
    let dim = config.dim;
    let mut watch = Stopwatch::start();
    let mut comm = CommStats::new();
    let mut rng = SplitMix64::new(config.seed ^ 0x6e6e);

    // Learnable node features (DistDGL keeps these partitioned across
    // machines) and a fixed mean-aggregation layer; the per-batch gradient
    // synchronization of the dense layer is accounted below.
    let init_scale = 0.5 / (dim as f32).sqrt();
    let mut features: Vec<f32> = (0..n * dim)
        .map(|_| (rng.next_f64() as f32 - 0.5) * 2.0 * init_scale)
        .collect();

    let mut aggregated = vec![0.0f32; dim];
    for _epoch in 0..config.epochs {
        let mut batch_counter = 0usize;
        for u in 0..n as NodeId {
            let neighbors = graph.neighbors(u);
            if neighbors.is_empty() {
                continue;
            }
            // Neighbour sampling — the deliberately expensive part.
            aggregated.iter_mut().for_each(|x| *x = 0.0);
            let mut sampled = 0usize;
            for _ in 0..config.fanout {
                let v = neighbors[rng.next_bounded(neighbors.len())];
                for d in 0..dim {
                    aggregated[d] += features[v as usize * dim + d];
                }
                sampled += 1;
            }
            // Mean aggregation combined with the node's own feature.
            for d in 0..dim {
                aggregated[d] = aggregated[d] / sampled as f32 + features[u as usize * dim + d];
            }

            // Unsupervised GraphSAGE loss: the aggregated representation of u
            // should score high against a true neighbour and low against
            // random negatives; gradients flow into the target features.
            let positive = neighbors[rng.next_bounded(neighbors.len())];
            let mut train_pair = |target: NodeId, label: f32| {
                let trow = &mut features[target as usize * dim..target as usize * dim + dim];
                let mut dot = 0.0;
                for d in 0..dim {
                    dot += aggregated[d] * trow[d];
                }
                let g = (label - sigmoid(dot)) * config.learning_rate;
                for d in 0..dim {
                    trow[d] += g * aggregated[d];
                }
            };
            train_pair(positive, 1.0);
            for _ in 0..config.negatives {
                let neg = rng.next_bounded(n) as NodeId;
                if neg != u {
                    train_pair(neg, 0.0);
                }
            }

            batch_counter += 1;
            if batch_counter.is_multiple_of(config.batch_size) {
                // Per-mini-batch gradient synchronization of the dense model
                // across machines.
                let bytes = dim * std::mem::size_of::<f32>();
                for _ in 0..num_machines {
                    comm.record_message(bytes);
                    comm.record_message(bytes);
                }
            }
        }
    }

    // Final node representations: aggregate once more with the trained model.
    let mut output = vec![0.0f32; n * dim];
    for u in 0..n as NodeId {
        let neighbors = graph.neighbors(u);
        let row = &mut output[u as usize * dim..u as usize * dim + dim];
        if neighbors.is_empty() {
            row.copy_from_slice(&features[u as usize * dim..u as usize * dim + dim]);
            continue;
        }
        for &v in neighbors {
            for d in 0..dim {
                row[d] += features[v as usize * dim + d];
            }
        }
        for (d, r) in row.iter_mut().enumerate() {
            *r = *r / neighbors.len() as f32 + features[u as usize * dim + d];
        }
    }

    let training = watch.lap();
    BaselineResult {
        embeddings: Embeddings::from_node_major(output, dim),
        times: PhaseTimes {
            training_secs: training,
            ..PhaseTimes::default()
        },
        comm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_eval::{evaluate_link_prediction, split_edges};
    use distger_graph::barabasi_albert;

    #[test]
    fn pbg_like_learns_link_structure() {
        let g = distger_graph::community_powerlaw(300, 6, 5, 0.1, 3);
        let split = split_edges(&g, 0.5, 1);
        let result = run_pbg_like(&split.train_graph, 2, &PbgLikeConfig::default());
        let auc = evaluate_link_prediction(&result.embeddings, &split);
        assert!(auc > 0.6, "PBG-like AUC too low: {auc}");
        assert!(result.comm.messages > 0);
        assert!(result.times.training_secs > 0.0);
    }

    #[test]
    fn pbg_parameter_server_traffic_scales_with_model_size() {
        let g = barabasi_albert(200, 3, 5);
        let small = run_pbg_like(
            &g,
            4,
            &PbgLikeConfig {
                dim: 8,
                epochs: 1,
                ..Default::default()
            },
        );
        let large = run_pbg_like(
            &g,
            4,
            &PbgLikeConfig {
                dim: 64,
                epochs: 1,
                ..Default::default()
            },
        );
        assert!(large.comm.bytes > small.comm.bytes);
    }

    #[test]
    fn gnn_like_learns_some_structure_and_syncs_per_batch() {
        let g = distger_graph::community_powerlaw(300, 6, 5, 0.1, 7);
        let split = split_edges(&g, 0.5, 2);
        let result = run_gnn_like(&split.train_graph, 2, &GnnLikeConfig::default());
        let auc = evaluate_link_prediction(&result.embeddings, &split);
        assert!(auc > 0.55, "GNN-like AUC too low: {auc}");
        // Many mini-batches → many synchronizations.
        assert!(result.comm.messages > 10);
    }

    #[test]
    fn baselines_handle_isolated_nodes() {
        let mut b = distger_graph::GraphBuilder::new_undirected();
        b.add_edge(0, 1);
        b.reserve_nodes(5);
        let g = b.build();
        let pbg = run_pbg_like(
            &g,
            2,
            &PbgLikeConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let gnn = run_gnn_like(
            &g,
            2,
            &GnnLikeConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        assert_eq!(pbg.embeddings.num_nodes(), 5);
        assert_eq!(gnn.embeddings.num_nodes(), 5);
    }
}
