//! Multi-process launcher: one coordinator plus `n` worker processes run the
//! walk→train pipeline over a [`SocketTransport`].
//!
//! The unit that crosses the process boundary is a [`JobSpec`]: a small,
//! versioned, hand-encoded description of the job (graph generator
//! parameters plus the knobs the launcher exposes). The coordinator
//! broadcasts it during start-up and *every* process rebuilds the graph,
//! the partitioning, and the [`DistGerConfig`] from it deterministically —
//! shipping a few scalars instead of the graph keeps the handshake tiny and
//! makes the whole job reproducible from the spec alone.
//!
//! Phases share one transport: the walk phase drives it as a full
//! [`Transport`](distger_cluster::Transport) (superstep message batches),
//! the training phase as a
//! [`ControlChannel`] (parameter rows).
//! The final [`LaunchReport::wire`] therefore measures the whole run.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use distger_cluster::wire::{put_u16, put_u32, put_u64};
use distger_cluster::{ControlChannel, SocketTransport, TransportKind, WireReader, WireStats};
use distger_embed::{train_distributed_over, Embeddings, TrainStats};
use distger_graph::{barabasi_albert, CsrGraph};
use distger_partition::Partitioning;
use distger_walks::{run_walks_over, WalkResult};

use crate::pipeline::DistGerConfig;

/// Everything a process needs to participate in a multi-process run.
///
/// The spec is deliberately scalar-only: both sides regenerate the graph and
/// partitioning from the same seeds, so only these few bytes travel during
/// the handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Nodes of the generated Barabási–Albert graph.
    pub graph_nodes: u32,
    /// Attachment edges per new node of the generator.
    pub graph_attachment: u32,
    /// Generator seed.
    pub graph_seed: u64,
    /// Logical walk machines (may exceed the process count; machines are
    /// split contiguously across endpoints).
    pub machines: u32,
    /// Seed shared by partitioning / sampling / training.
    pub seed: u64,
    /// Training epochs.
    pub epochs: u32,
    /// Embedding dimension.
    pub dim: u32,
    /// Enable span tracing on every process of the job. Workers ship their
    /// event buffers to the coordinator at round boundaries, and the
    /// coordinator's [`LaunchReport::trace`] carries the merged timeline.
    pub trace: bool,
}

/// Spec wire version, bumped on any layout change.
/// v2 added the `trace` flag.
const JOB_SPEC_VERSION: u16 = 2;

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            graph_nodes: 300,
            graph_attachment: 4,
            graph_seed: 42,
            machines: 4,
            seed: 7,
            epochs: 1,
            dim: 32,
            trace: false,
        }
    }
}

impl JobSpec {
    /// Encodes the spec for the start-up broadcast.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        put_u16(&mut out, JOB_SPEC_VERSION);
        put_u32(&mut out, self.graph_nodes);
        put_u32(&mut out, self.graph_attachment);
        put_u64(&mut out, self.graph_seed);
        put_u32(&mut out, self.machines);
        put_u64(&mut out, self.seed);
        put_u32(&mut out, self.epochs);
        put_u32(&mut out, self.dim);
        out.push(u8::from(self.trace));
        out
    }

    /// Decodes a spec received from the coordinator; truncated or
    /// version-mismatched payloads error, never panic.
    pub fn decode(payload: &[u8]) -> io::Result<Self> {
        let mut r = WireReader::new(payload);
        let version = r.u16()?;
        if version != JOB_SPEC_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("job spec version {version} (expected {JOB_SPEC_VERSION})"),
            ));
        }
        let spec = Self {
            graph_nodes: r.u32()?,
            graph_attachment: r.u32()?,
            graph_seed: r.u64()?,
            machines: r.u32()?,
            seed: r.u64()?,
            epochs: r.u32()?,
            dim: r.u32()?,
            trace: match r.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad trace flag byte {other}"),
                    ))
                }
            },
        };
        r.finish()?;
        Ok(spec)
    }

    /// Regenerates the job's graph — a pure function of the spec.
    pub fn build_graph(&self) -> CsrGraph {
        barabasi_albert(
            self.graph_nodes as usize,
            self.graph_attachment as usize,
            self.graph_seed,
        )
    }

    /// Rebuilds the job's configuration — a pure function of the spec.
    pub fn build_config(&self) -> DistGerConfig {
        let mut config = DistGerConfig::distger(self.machines as usize)
            .small()
            .with_transport(TransportKind::Socket)
            .with_seed(self.seed);
        config.training.epochs = self.epochs as usize;
        config.training.dim = self.dim as usize;
        config
    }

    /// Rebuilds the job's partitioning — a pure function of the spec, so
    /// every process computes an identical assignment without shipping it.
    pub fn build_partitioning(&self, graph: &CsrGraph, config: &DistGerConfig) -> Partitioning {
        config
            .partitioner
            .partition(graph, self.machines as usize, self.seed)
    }
}

/// What the coordinator measured over a full multi-process run.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    /// The walk phase's result (corpus, comm stats including the walk-phase
    /// wire measurements, entropy trace).
    pub walk: WalkResult,
    /// The learned embeddings, averaged over the per-process replicas.
    pub embeddings: Embeddings,
    /// Training statistics (including synchronization traffic).
    pub train_stats: TrainStats,
    /// Wire traffic measured at the coordinator over the *whole* run —
    /// walk superstep batches plus training parameter rows.
    pub wire: WireStats,
    /// The merged trace timeline when [`JobSpec::trace`] was set: every
    /// process's span events, clock-aligned to the coordinator and sorted by
    /// `(pid, tid, ts)`. Empty when tracing was off. Feed it to
    /// [`distger_obs::chrome_trace_json`] for a Perfetto-loadable file.
    pub trace: Vec<distger_obs::TraceEvent>,
}

/// Runs the coordinator endpoint: accepts `workers` connections on
/// `listener`, broadcasts `spec`, and drives walks then training.
pub fn run_coordinator(
    listener: &TcpListener,
    workers: usize,
    spec: &JobSpec,
) -> io::Result<LaunchReport> {
    let endpoints = workers + 1;
    assert!(
        spec.machines as usize >= endpoints,
        "need at least one walk machine per process ({} machines, {} processes)",
        spec.machines,
        endpoints
    );
    let mut transport = SocketTransport::coordinator(listener, endpoints, spec.machines as usize)?;
    if spec.trace {
        distger_obs::set_tracing(true);
    }
    transport.broadcast(&spec.encode())?;

    let graph = spec.build_graph();
    let config = spec.build_config();
    let partitioning = spec.build_partitioning(&graph, &config);
    let walk = run_walks_over(&mut transport, &graph, &partitioning, &config.walks)?
        .expect("coordinator returns the walk result");
    let (embeddings, train_stats) =
        train_distributed_over(&mut transport, Some(&walk.corpus), &config.training)?
            .expect("coordinator returns the training result");
    let wire = transport.wire_stats();
    // The workers' round-boundary batches were absorbed during the phases;
    // draining everything here adds the coordinator's own leftover events
    // (plus any in-process pool threads') and sorts the merged timeline.
    let trace = if spec.trace {
        distger_obs::drain_all()
    } else {
        Vec::new()
    };
    Ok(LaunchReport {
        walk,
        embeddings,
        train_stats,
        wire,
        trace,
    })
}

/// Runs one worker endpoint: connects to the coordinator at `addr`, receives
/// the spec, and serves walks then training.
pub fn run_worker(addr: SocketAddr, timeout: Duration) -> io::Result<()> {
    let mut transport = SocketTransport::worker(addr, timeout)?;
    let payload = transport.broadcast(&[])?;
    let spec = JobSpec::decode(&payload)?;
    if spec.trace {
        distger_obs::set_tracing(true);
    }

    let graph = spec.build_graph();
    let config = spec.build_config();
    let partitioning = spec.build_partitioning(&graph, &config);
    let walk = run_walks_over(&mut transport, &graph, &partitioning, &config.walks)?;
    debug_assert!(walk.is_none(), "workers return no walk result");
    let trained = train_distributed_over(&mut transport, None, &config.training)?;
    debug_assert!(trained.is_none(), "workers return no training result");
    Ok(())
}

/// Test/bench harness: a full multi-process-shaped run over real loopback
/// TCP, with the workers on scoped threads instead of child processes.
pub fn launch_over_loopback(spec: &JobSpec, workers: usize) -> LaunchReport {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
    let addr = listener.local_addr().expect("loopback listener address");
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || {
                run_worker(addr, Duration::from_secs(10)).expect("worker run");
            });
        }
        run_coordinator(&listener, workers, spec).expect("coordinator run")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_pipeline;

    #[test]
    fn job_spec_round_trips_and_rejects_corruption() {
        let spec = JobSpec {
            graph_nodes: 123,
            graph_attachment: 3,
            graph_seed: 9,
            machines: 5,
            seed: 17,
            epochs: 2,
            dim: 16,
            trace: true,
        };
        let bytes = spec.encode();
        assert_eq!(JobSpec::decode(&bytes).expect("decode own encoding"), spec);
        for len in 0..bytes.len() {
            assert!(
                JobSpec::decode(&bytes[..len]).is_err(),
                "truncation to {len}"
            );
        }
        let mut wrong_version = bytes.clone();
        wrong_version[0] ^= 0xff;
        assert!(JobSpec::decode(&wrong_version).is_err());
        let mut bad_trace = bytes.clone();
        *bad_trace.last_mut().unwrap() = 7;
        assert!(JobSpec::decode(&bad_trace).is_err(), "bad trace flag byte");
    }

    #[test]
    fn loopback_launch_completes_walks_and_training() {
        let spec = JobSpec {
            graph_nodes: 150,
            machines: 4,
            ..JobSpec::default()
        };
        let report = launch_over_loopback(&spec, 2);
        assert_eq!(report.embeddings.num_nodes(), 150);
        assert!(report.walk.corpus.total_tokens() > 0);
        assert!(report.train_stats.pairs_processed > 0);
        // The wire counters must cover both phases: strictly more traffic
        // than the walk phase alone measured.
        assert!(report.wire.frames_sent > report.walk.comm.wire.frames_sent);
        assert!(report.wire.batch_bytes_sent > 0);

        // The walk phase is bit-identical to the in-process engine (the
        // trainer is not compared: it averages over `endpoints` replicas
        // here and `machines` replicas in-process).
        let graph = spec.build_graph();
        let config = spec.build_config();
        let partitioning = spec.build_partitioning(&graph, &config);
        let mut in_process = config.walks;
        in_process.transport = TransportKind::InMemory;
        let classic = distger_walks::run_distributed_walks(&graph, &partitioning, &in_process);
        assert_eq!(report.walk.corpus, classic.corpus);
        assert_eq!(report.walk.comm, classic.comm);
    }

    #[test]
    fn single_process_launch_matches_pipeline_corpus() {
        // workers = 0: the coordinator is the whole cluster, still speaking
        // the socket protocol to itself (degenerate star).
        let spec = JobSpec {
            graph_nodes: 120,
            machines: 2,
            ..JobSpec::default()
        };
        let report = launch_over_loopback(&spec, 0);
        let graph = spec.build_graph();
        let mut config = spec.build_config();
        config = config.with_transport(TransportKind::InMemory);
        let pipeline = run_pipeline(&graph, &config);
        assert_eq!(
            report.walk.corpus.total_tokens(),
            pipeline.corpus_tokens,
            "walk phase must agree with the in-process pipeline"
        );
    }
}
