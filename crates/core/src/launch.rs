//! Multi-process launcher: one coordinator plus `n` worker processes run the
//! walk→train pipeline over a [`SocketTransport`].
//!
//! The unit that crosses the process boundary is a [`JobSpec`]: a small,
//! versioned, hand-encoded description of the job (graph generator
//! parameters plus the knobs the launcher exposes). The coordinator
//! broadcasts it during start-up and *every* process rebuilds the graph,
//! the partitioning, and the [`DistGerConfig`] from it deterministically —
//! shipping a few scalars instead of the graph keeps the handshake tiny and
//! makes the whole job reproducible from the spec alone.
//!
//! Phases share one transport: the walk phase drives it as a full
//! [`Transport`](distger_cluster::Transport) (superstep message batches),
//! the training phase as a
//! [`ControlChannel`] (parameter rows), and the serve phase as the scatter
//! channel of a [`ShardedQueryEngine`] — the trained embeddings never leave
//! the cluster; each process keeps serving only its own shard of them.
//! The final [`LaunchReport::wire`] therefore measures the whole run.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use distger_cluster::wire::{put_u16, put_u32, put_u64};
use distger_cluster::{ControlChannel, SocketTransport, TransportKind, WireReader, WireStats};
use distger_embed::{train_distributed_over, Embeddings, TrainStats};
use distger_graph::{barabasi_albert, CsrGraph};
use distger_partition::Partitioning;
use distger_serve::{
    receive_shard, serve_shard, Scheduler, SchedulerConfig, SchedulerStats, ServeConfig,
    ShardStats, ShardedQueryEngine, TopK,
};
use distger_walks::{run_walks_over, WalkResult};

use crate::pipeline::DistGerConfig;

/// Everything a process needs to participate in a multi-process run.
///
/// The spec is deliberately scalar-only: both sides regenerate the graph and
/// partitioning from the same seeds, so only these few bytes travel during
/// the handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Nodes of the generated Barabási–Albert graph.
    pub graph_nodes: u32,
    /// Attachment edges per new node of the generator.
    pub graph_attachment: u32,
    /// Generator seed.
    pub graph_seed: u64,
    /// Logical walk machines (may exceed the process count; machines are
    /// split contiguously across endpoints).
    pub machines: u32,
    /// Seed shared by partitioning / sampling / training.
    pub seed: u64,
    /// Training epochs.
    pub epochs: u32,
    /// Embedding dimension.
    pub dim: u32,
    /// Enable span tracing on every process of the job. Workers ship their
    /// event buffers to the coordinator at round boundaries, and the
    /// coordinator's [`LaunchReport::trace`] carries the merged timeline.
    pub trace: bool,
    /// Self-queries served through the sharded engine after training
    /// (spread deterministically over the node range). `0` skips the serve
    /// phase entirely on every process.
    pub serve_queries: u32,
    /// `k` of each serve-phase top-k query.
    pub serve_k: u32,
}

/// Spec wire version, bumped on any layout change.
/// v2 added the `trace` flag; v3 the serve phase (`serve_queries`,
/// `serve_k`).
const JOB_SPEC_VERSION: u16 = 3;

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            graph_nodes: 300,
            graph_attachment: 4,
            graph_seed: 42,
            machines: 4,
            seed: 7,
            epochs: 1,
            dim: 32,
            trace: false,
            serve_queries: 8,
            serve_k: 5,
        }
    }
}

impl JobSpec {
    /// Encodes the spec for the start-up broadcast.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        put_u16(&mut out, JOB_SPEC_VERSION);
        put_u32(&mut out, self.graph_nodes);
        put_u32(&mut out, self.graph_attachment);
        put_u64(&mut out, self.graph_seed);
        put_u32(&mut out, self.machines);
        put_u64(&mut out, self.seed);
        put_u32(&mut out, self.epochs);
        put_u32(&mut out, self.dim);
        out.push(u8::from(self.trace));
        put_u32(&mut out, self.serve_queries);
        put_u32(&mut out, self.serve_k);
        out
    }

    /// Decodes a spec received from the coordinator; truncated or
    /// version-mismatched payloads error, never panic.
    pub fn decode(payload: &[u8]) -> io::Result<Self> {
        let mut r = WireReader::new(payload);
        let version = r.u16()?;
        if version != JOB_SPEC_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("job spec version {version} (expected {JOB_SPEC_VERSION})"),
            ));
        }
        let spec = Self {
            graph_nodes: r.u32()?,
            graph_attachment: r.u32()?,
            graph_seed: r.u64()?,
            machines: r.u32()?,
            seed: r.u64()?,
            epochs: r.u32()?,
            dim: r.u32()?,
            trace: match r.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad trace flag byte {other}"),
                    ))
                }
            },
            serve_queries: r.u32()?,
            serve_k: r.u32()?,
        };
        r.finish()?;
        if spec.serve_queries > 0 && spec.serve_k == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "serve phase enabled with k = 0",
            ));
        }
        Ok(spec)
    }

    /// Regenerates the job's graph — a pure function of the spec.
    pub fn build_graph(&self) -> CsrGraph {
        barabasi_albert(
            self.graph_nodes as usize,
            self.graph_attachment as usize,
            self.graph_seed,
        )
    }

    /// Rebuilds the job's configuration — a pure function of the spec.
    pub fn build_config(&self) -> DistGerConfig {
        let mut config = DistGerConfig::distger(self.machines as usize)
            .small()
            .with_transport(TransportKind::Socket)
            .with_seed(self.seed);
        config.training.epochs = self.epochs as usize;
        config.training.dim = self.dim as usize;
        config
    }

    /// Rebuilds the job's partitioning — a pure function of the spec, so
    /// every process computes an identical assignment without shipping it.
    pub fn build_partitioning(&self, graph: &CsrGraph, config: &DistGerConfig) -> Partitioning {
        config
            .partitioner
            .partition(graph, self.machines as usize, self.seed)
    }

    /// The serve phase's engine configuration — a pure function of the spec,
    /// shared with harnesses that rebuild a single-process oracle to check
    /// the sharded answers against.
    pub fn build_serve_config(&self) -> ServeConfig {
        ServeConfig {
            k: self.serve_k as usize,
            threads: 2,
            ..ServeConfig::default()
        }
    }

    /// The serve phase's query nodes: `serve_queries` self-queries spread
    /// evenly over the node range, deterministic so oracles can replay them.
    pub fn serve_query_nodes(&self) -> Vec<u32> {
        (0..self.serve_queries)
            .map(|i| {
                ((u64::from(i) * u64::from(self.graph_nodes))
                    / u64::from(self.serve_queries.max(1))) as u32
            })
            .collect()
    }
}

/// What the serve phase measured at the coordinator.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// The nodes self-queried ([`JobSpec::serve_query_nodes`]).
    pub query_nodes: Vec<u32>,
    /// `k` of each query.
    pub k: u32,
    /// One answer per query node, in `query_nodes` order — bit-identical to
    /// a single-process engine over the same embeddings and
    /// [`JobSpec::build_serve_config`].
    pub results: Vec<TopK>,
    /// Per-endpoint shard accounting (row counts, batches, scan time,
    /// candidates scored, reply bytes), coordinator's own shard first.
    pub shard_stats: Vec<ShardStats>,
    /// The fronting scheduler's request statistics.
    pub scheduler: SchedulerStats,
}

/// What the coordinator measured over a full multi-process run.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    /// The walk phase's result (corpus, comm stats including the walk-phase
    /// wire measurements, entropy trace).
    pub walk: WalkResult,
    /// The learned embeddings, averaged over the per-process replicas.
    pub embeddings: Embeddings,
    /// Training statistics (including synchronization traffic).
    pub train_stats: TrainStats,
    /// Wire traffic measured at the coordinator over the *whole* run —
    /// walk superstep batches, training parameter rows, and serve-phase
    /// shard loads / query scatters.
    pub wire: WireStats,
    /// Serve-phase results and accounting; `None` when
    /// [`JobSpec::serve_queries`] was zero.
    pub serve: Option<ServeSummary>,
    /// The merged trace timeline when [`JobSpec::trace`] was set: every
    /// process's span events, clock-aligned to the coordinator and sorted by
    /// `(pid, tid, ts)`. Empty when tracing was off. Feed it to
    /// [`distger_obs::chrome_trace_json`] for a Perfetto-loadable file.
    pub trace: Vec<distger_obs::TraceEvent>,
}

/// Runs the coordinator endpoint: accepts `workers` connections on
/// `listener`, broadcasts `spec`, and drives walks then training.
pub fn run_coordinator(
    listener: &TcpListener,
    workers: usize,
    spec: &JobSpec,
) -> io::Result<LaunchReport> {
    let endpoints = workers + 1;
    assert!(
        spec.machines as usize >= endpoints,
        "need at least one walk machine per process ({} machines, {} processes)",
        spec.machines,
        endpoints
    );
    let mut transport = SocketTransport::coordinator(listener, endpoints, spec.machines as usize)?;
    if spec.trace {
        distger_obs::set_tracing(true);
    }
    transport.broadcast(&spec.encode())?;

    let graph = spec.build_graph();
    let config = spec.build_config();
    let partitioning = spec.build_partitioning(&graph, &config);
    let walk = run_walks_over(&mut transport, &graph, &partitioning, &config.walks)?
        .expect("coordinator returns the walk result");
    let (embeddings, train_stats) =
        train_distributed_over(&mut transport, Some(&walk.corpus), &config.training)?
            .expect("coordinator returns the training result");
    let (serve, transport) = if spec.serve_queries > 0 {
        let (serve, transport) = serve_over(transport, spec, &embeddings)?;
        (Some(serve), transport)
    } else {
        (None, transport)
    };
    let wire = transport.wire_stats();
    // The workers' round-boundary batches were absorbed during the phases;
    // draining everything here adds the coordinator's own leftover events
    // (plus any in-process pool threads') and sorts the merged timeline.
    let trace = if spec.trace {
        distger_obs::drain_all()
    } else {
        Vec::new()
    };
    Ok(LaunchReport {
        walk,
        embeddings,
        train_stats,
        wire,
        serve,
        trace,
    })
}

/// Coordinator serve phase: shards the freshly averaged embeddings over the
/// transport (each endpoint receives only its [`machine_split`]
/// rows), fronts the sharded engine with a dynamic-batching [`Scheduler`],
/// submits the spec's deterministic self-queries through a [`RequestClient`],
/// and hands the transport back for the whole-run wire accounting.
///
/// [`machine_split`]: distger_cluster::machine_split
/// [`RequestClient`]: distger_serve::RequestClient
fn serve_over(
    transport: SocketTransport,
    spec: &JobSpec,
    embeddings: &Embeddings,
) -> io::Result<(ServeSummary, SocketTransport)> {
    let engine = ShardedQueryEngine::new(transport, embeddings, spec.build_serve_config())?;
    let scheduler = Scheduler::new(engine, SchedulerConfig::default());
    let client = scheduler.client();
    let query_nodes = spec.serve_query_nodes();
    let rejected =
        |e: distger_serve::Rejected| io::Error::other(format!("serve request rejected: {e:?}"));
    // Submit everything before waiting so the dispatcher actually batches.
    let pending: Vec<_> = query_nodes
        .iter()
        .map(|&node| client.submit(embeddings.vector(node)).map_err(rejected))
        .collect::<io::Result<_>>()?;
    let results: Vec<TopK> = pending
        .into_iter()
        .map(|p| p.wait().map_err(rejected))
        .collect::<io::Result<_>>()?;
    let scheduler_stats = scheduler.stats();
    drop(client);
    let engine = scheduler.into_engine();
    let shard_stats = engine.shard_stats();
    let transport = engine.shutdown()?;
    Ok((
        ServeSummary {
            query_nodes,
            k: spec.serve_k,
            results,
            shard_stats,
            scheduler: scheduler_stats,
        },
        transport,
    ))
}

/// Runs one worker endpoint: connects to the coordinator at `addr`, receives
/// the spec, and serves walks then training.
pub fn run_worker(addr: SocketAddr, timeout: Duration) -> io::Result<()> {
    let mut transport = SocketTransport::worker(addr, timeout)?;
    let payload = transport.broadcast(&[])?;
    let spec = JobSpec::decode(&payload)?;
    if spec.trace {
        distger_obs::set_tracing(true);
    }

    let graph = spec.build_graph();
    let config = spec.build_config();
    let partitioning = spec.build_partitioning(&graph, &config);
    let walk = run_walks_over(&mut transport, &graph, &partitioning, &config.walks)?;
    debug_assert!(walk.is_none(), "workers return no walk result");
    let trained = train_distributed_over(&mut transport, None, &config.training)?;
    debug_assert!(trained.is_none(), "workers return no training result");
    if spec.serve_queries > 0 {
        // Serve phase: receive this endpoint's shard of the trained
        // embeddings, then answer scattered query batches until SHUTDOWN.
        let shard = receive_shard(&mut transport)?;
        serve_shard(&mut transport, &shard, None)?;
    }
    Ok(())
}

/// Test/bench harness: a full multi-process-shaped run over real loopback
/// TCP, with the workers on scoped threads instead of child processes.
pub fn launch_over_loopback(spec: &JobSpec, workers: usize) -> LaunchReport {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
    let addr = listener.local_addr().expect("loopback listener address");
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || {
                run_worker(addr, Duration::from_secs(10)).expect("worker run");
            });
        }
        run_coordinator(&listener, workers, spec).expect("coordinator run")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_pipeline;

    #[test]
    fn job_spec_round_trips_and_rejects_corruption() {
        let spec = JobSpec {
            graph_nodes: 123,
            graph_attachment: 3,
            graph_seed: 9,
            machines: 5,
            seed: 17,
            epochs: 2,
            dim: 16,
            trace: true,
            serve_queries: 6,
            serve_k: 3,
        };
        let bytes = spec.encode();
        assert_eq!(JobSpec::decode(&bytes).expect("decode own encoding"), spec);
        for len in 0..bytes.len() {
            assert!(
                JobSpec::decode(&bytes[..len]).is_err(),
                "truncation to {len}"
            );
        }
        let mut wrong_version = bytes.clone();
        wrong_version[0] ^= 0xff;
        assert!(JobSpec::decode(&wrong_version).is_err());
        let trace_at = bytes.len() - 9;
        let mut bad_trace = bytes.clone();
        bad_trace[trace_at] = 7;
        assert!(JobSpec::decode(&bad_trace).is_err(), "bad trace flag byte");
        let mut zero_k = bytes.clone();
        zero_k[bytes.len() - 4..].fill(0);
        assert!(
            JobSpec::decode(&zero_k).is_err(),
            "serve phase with k = 0 accepted"
        );
        let disabled = JobSpec {
            serve_queries: 0,
            serve_k: 0,
            ..spec
        };
        assert_eq!(
            JobSpec::decode(&disabled.encode()).expect("decode disabled serve"),
            disabled,
            "k = 0 is fine while the serve phase is off"
        );
    }

    #[test]
    fn serve_query_nodes_spread_over_the_node_range() {
        let spec = JobSpec {
            graph_nodes: 100,
            serve_queries: 4,
            ..JobSpec::default()
        };
        assert_eq!(spec.serve_query_nodes(), vec![0, 25, 50, 75]);
        let none = JobSpec {
            serve_queries: 0,
            ..spec
        };
        assert!(none.serve_query_nodes().is_empty());
    }

    #[test]
    fn loopback_launch_completes_walks_and_training() {
        let spec = JobSpec {
            graph_nodes: 150,
            machines: 4,
            ..JobSpec::default()
        };
        let report = launch_over_loopback(&spec, 2);
        assert_eq!(report.embeddings.num_nodes(), 150);
        assert!(report.walk.corpus.total_tokens() > 0);
        assert!(report.train_stats.pairs_processed > 0);
        // The wire counters must cover all three phases: strictly more
        // traffic than the walk phase alone measured.
        assert!(report.wire.frames_sent > report.walk.comm.wire.frames_sent);
        assert!(report.wire.batch_bytes_sent > 0);

        // Serve phase: every default self-query answered, each endpoint
        // served a shard, and the answers are bit-identical to a
        // single-process engine over the reported embeddings.
        let serve = report.serve.as_ref().expect("serve phase ran by default");
        assert_eq!(serve.query_nodes, spec.serve_query_nodes());
        assert_eq!(serve.results.len(), spec.serve_queries as usize);
        assert_eq!(serve.shard_stats.len(), 3, "one shard per process");
        assert_eq!(
            serve.shard_stats.iter().map(|s| s.nodes).sum::<u64>(),
            150,
            "shards partition the node range"
        );
        assert_eq!(serve.scheduler.completed, u64::from(spec.serve_queries));
        let oracle = distger_serve::QueryEngine::new(
            distger_serve::EmbeddingIndex::build(&report.embeddings),
            spec.build_serve_config(),
        );
        for (&node, sharded) in serve.query_nodes.iter().zip(&serve.results) {
            let expected = oracle.top_k_one(report.embeddings.vector(node));
            assert_eq!(
                sharded.neighbors(),
                expected.neighbors(),
                "query node {node} diverged from the single-process oracle"
            );
        }

        // The walk phase is bit-identical to the in-process engine (the
        // trainer is not compared: it averages over `endpoints` replicas
        // here and `machines` replicas in-process).
        let graph = spec.build_graph();
        let config = spec.build_config();
        let partitioning = spec.build_partitioning(&graph, &config);
        let mut in_process = config.walks;
        in_process.transport = TransportKind::InMemory;
        let classic = distger_walks::run_distributed_walks(&graph, &partitioning, &in_process);
        assert_eq!(report.walk.corpus, classic.corpus);
        assert_eq!(report.walk.comm, classic.comm);
    }

    #[test]
    fn serve_phase_can_be_disabled() {
        let spec = JobSpec {
            graph_nodes: 120,
            machines: 3,
            serve_queries: 0,
            ..JobSpec::default()
        };
        let report = launch_over_loopback(&spec, 1);
        assert!(report.serve.is_none(), "serve_queries = 0 skips the phase");
        assert_eq!(report.embeddings.num_nodes(), 120);
    }

    #[test]
    fn single_process_launch_matches_pipeline_corpus() {
        // workers = 0: the coordinator is the whole cluster, still speaking
        // the socket protocol to itself (degenerate star).
        let spec = JobSpec {
            graph_nodes: 120,
            machines: 2,
            ..JobSpec::default()
        };
        let report = launch_over_loopback(&spec, 0);
        let graph = spec.build_graph();
        let mut config = spec.build_config();
        config = config.with_transport(TransportKind::InMemory);
        let pipeline = run_pipeline(&graph, &config);
        assert_eq!(
            report.walk.corpus.total_tokens(),
            pipeline.corpus_tokens,
            "walk phase must agree with the in-process pipeline"
        );
    }
}
