//! End-to-end DistGER pipeline and comparison baselines.
//!
//! [`pipeline::run_pipeline`] chains the three components of Figure 1 —
//! multi-proximity-aware streaming partitioning (MPGP), the
//! information-centric distributed walk engine (InCoM sampler), and the
//! distributed Skip-Gram learner (DSGL) — over the simulated cluster, and
//! reports per-phase times, communication statistics and memory footprints.
//!
//! [`baselines`] provides the comparison systems used throughout §6:
//! a KnightKing-style routine-walk configuration, the HuGE-D full-path
//! baseline, a PyTorch-BigGraph-like edge-partitioned trainer with a
//! parameter server, and a DistDGL-like sampling-dominated GNN trainer.
//! The latter two are intentionally simplified stand-ins (see DESIGN.md's
//! substitution table) that preserve the performance traits the paper's
//! analysis attributes to those systems.
//!
//! [`system`] wraps all five systems behind one interface for the experiment
//! harness.

pub mod baselines;
pub mod launch;
pub mod pipeline;
pub mod system;

pub use launch::{
    launch_over_loopback, run_coordinator, run_worker, JobSpec, LaunchReport, ServeSummary,
};
pub use pipeline::{run_pipeline, DistGerConfig, PartitionerChoice, PipelineResult};
pub use system::{run_system, RunScale, SystemKind, SystemRun};
