//! The end-to-end DistGER pipeline: partition → sample → learn.

use distger_cluster::{
    ClusterConfig, CommStats, ExecutionBackend, MemoryEstimate, RecoveryPolicy, TransportKind,
};
use distger_embed::{train_distributed, Embeddings, TrainStats, TrainerConfig, TrainerKind};
use distger_graph::CsrGraph;
use distger_obs::{PhaseTimes, Stopwatch};
use distger_partition::{
    balanced::workload_balanced_partition,
    fennel::{fennel_partition, FennelConfig},
    hash::hash_partition,
    ldg::ldg_default,
    mpgp_partition, parallel_mpgp_partition, MpgpConfig, Partitioning,
};
use distger_serve::{EmbeddingIndex, QueryEngine, Scheduler, SchedulerConfig, ServeConfig};
use distger_walks::{
    run_distributed_walks, CheckpointPolicy, FreqBackend, SamplingBackend, WalkEngineConfig,
    WalkModel,
};

/// Which partitioner feeds the walk engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PartitionerChoice {
    /// The paper's sequential MPGP (§3.2).
    Mpgp(MpgpConfig),
    /// Parallel MPGP with the given number of stream segments.
    MpgpParallel {
        /// Number of independent stream segments.
        segments: usize,
        /// MPGP configuration shared by all segments.
        config: MpgpConfig,
    },
    /// KnightKing's workload-balancing partition (§2.2).
    WorkloadBalanced,
    /// Modulo hashing (quality floor).
    Hash,
    /// Linear Deterministic Greedy (streaming baseline).
    Ldg,
    /// FENNEL (streaming baseline).
    Fennel,
}

impl PartitionerChoice {
    /// Display name used by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionerChoice::Mpgp(_) => "MPGP",
            PartitionerChoice::MpgpParallel { .. } => "MPGP-P",
            PartitionerChoice::WorkloadBalanced => "Workload-balancing",
            PartitionerChoice::Hash => "Hash",
            PartitionerChoice::Ldg => "LDG",
            PartitionerChoice::Fennel => "FENNEL",
        }
    }

    /// Runs the chosen partitioner.
    pub fn partition(&self, graph: &CsrGraph, num_machines: usize, seed: u64) -> Partitioning {
        match *self {
            PartitionerChoice::Mpgp(config) => {
                mpgp_partition(graph, num_machines, MpgpConfig { seed, ..config })
            }
            PartitionerChoice::MpgpParallel { segments, config } => parallel_mpgp_partition(
                graph,
                num_machines,
                segments,
                MpgpConfig { seed, ..config },
            ),
            PartitionerChoice::WorkloadBalanced => workload_balanced_partition(graph, num_machines),
            PartitionerChoice::Hash => hash_partition(graph, num_machines),
            PartitionerChoice::Ldg => ldg_default(graph, num_machines, seed),
            PartitionerChoice::Fennel => {
                fennel_partition(graph, num_machines, FennelConfig::default(), seed)
            }
        }
    }
}

/// Full configuration of an end-to-end run.
#[derive(Clone, Copy, Debug)]
pub struct DistGerConfig {
    /// Simulated cluster description.
    pub cluster: ClusterConfig,
    /// Partitioner choice.
    pub partitioner: PartitionerChoice,
    /// Random-walk engine configuration (the sampler).
    pub walks: WalkEngineConfig,
    /// Skip-Gram training configuration (the learner).
    pub training: TrainerConfig,
    /// Seed shared by partitioning / sampling / training.
    pub seed: u64,
}

impl DistGerConfig {
    /// The full DistGER system: MPGP + InCoM + DSGL with hotness-block sync.
    pub fn distger(num_machines: usize) -> Self {
        Self {
            cluster: ClusterConfig::new(num_machines),
            partitioner: PartitionerChoice::Mpgp(MpgpConfig::default()),
            walks: WalkEngineConfig::distger(),
            training: TrainerConfig {
                kind: TrainerKind::Dsgl { multi_windows: 2 },
                ..TrainerConfig::default()
            },
            seed: 0,
        }
    }

    /// KnightKing-style system: workload-balancing partition, routine walks
    /// (`L = 80`, `r = 10`), Pword2vec training with full synchronization.
    pub fn knightking(num_machines: usize) -> Self {
        Self {
            cluster: ClusterConfig::new(num_machines),
            partitioner: PartitionerChoice::WorkloadBalanced,
            walks: WalkEngineConfig::knightking_routine(WalkModel::Huge),
            training: TrainerConfig {
                kind: TrainerKind::Pword2vec,
                sync: distger_embed::SyncStrategy::Full,
                ..TrainerConfig::default()
            },
            seed: 0,
        }
    }

    /// The HuGE-D baseline (§2.3): information-oriented walks with the
    /// full-path mechanism on the KnightKing substrate.
    pub fn huge_d(num_machines: usize) -> Self {
        Self {
            walks: WalkEngineConfig::huge_d(),
            ..Self::knightking(num_machines)
        }
    }

    /// Scales every knob down for unit tests and examples: small dimension,
    /// few epochs, tight walk caps.
    pub fn small(mut self) -> Self {
        self.training.dim = 32;
        self.training.window = 5;
        self.training.epochs = 1;
        self.training.sync_rounds_per_epoch = 2;
        self.training.threads = 2;
        self
    }

    /// Builder-style seed override applied to all stochastic phases.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.walks = self.walks.with_seed(seed);
        self.training.seed = seed;
        self
    }

    /// Builder-style partitioner override.
    pub fn with_partitioner(mut self, partitioner: PartitionerChoice) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Builder-style cluster-description override. The machine count feeds
    /// every phase; the network model prices the measured traffic.
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Builder-style trainer-kind override (Hogwild / Pword2vec / DSGL).
    pub fn with_trainer_kind(mut self, kind: TrainerKind) -> Self {
        self.training.kind = kind;
        self
    }

    /// Builder-style walk-model override (the general API of §6.6).
    pub fn with_walk_model(mut self, model: WalkModel) -> Self {
        self.walks.model = model;
        self
    }

    /// Builder-style frequency-store backend override for the walk phase.
    /// The default everywhere is [`FreqBackend::Flat`]; the reference
    /// [`FreqBackend::NestedReference`] is retained for A/B comparisons.
    pub fn with_freq_backend(mut self, backend: FreqBackend) -> Self {
        self.walks.freq_backend = backend;
        self
    }

    /// Builder-style transport override, applied to both BSP phases — like
    /// [`with_execution_backend`](DistGerConfig::with_execution_backend),
    /// one call keeps the phases consistent. [`run_pipeline`] executes in
    /// one process and therefore requires the default
    /// [`TransportKind::InMemory`]; the socket transport is served by the
    /// multi-process drivers ([`distger_walks::run_walks_over`] /
    /// [`distger_embed::train_distributed_over`]).
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.walks.transport = transport;
        self.training.transport = transport;
        self
    }

    /// Builder-style transition-sampling backend override. The default
    /// everywhere is [`SamplingBackend::Alias`]; the reference
    /// [`SamplingBackend::LinearScan`] is retained for A/B comparisons.
    pub fn with_sampling_backend(mut self, backend: SamplingBackend) -> Self {
        self.walks.sampling_backend = backend;
        self
    }

    /// Builder-style superstep-execution backend override, applied to both
    /// BSP phases (walk engine and trainer) — like
    /// [`with_seed`](DistGerConfig::with_seed), one call keeps the phases
    /// consistent, while a directly assigned `walks.execution` /
    /// `training.execution` field is honored per phase (mirroring how
    /// `freq_backend` / `sampling_backend` behave). The default everywhere
    /// is the run-scoped [`ExecutionBackend::RoundLoop`]; the per-round
    /// [`ExecutionBackend::Pool`] and [`ExecutionBackend::SpawnPerStep`]
    /// references are retained for A/B comparisons.
    pub fn with_execution_backend(mut self, execution: ExecutionBackend) -> Self {
        self.walks.execution = execution;
        self.training.execution = execution;
        self
    }

    /// Builder-style checkpoint-policy override for the walk phase: the
    /// supervised round loop snapshots its coordinator state every `n`-th
    /// round so a crashed run resumes from the latest completed round. The
    /// training phase needs no checkpoint policy — its live replicas plus
    /// the completed-chunk counter are the recovery state (see
    /// [`TrainerConfig::recovery`]).
    pub fn with_checkpoint_policy(mut self, checkpoint: CheckpointPolicy) -> Self {
        self.walks.checkpoint = checkpoint;
        self
    }

    /// Builder-style recovery-policy override, applied to both BSP phases
    /// (walk engine and trainer) — like
    /// [`with_execution_backend`](DistGerConfig::with_execution_backend),
    /// one call keeps the phases consistent, while directly assigned
    /// `walks.recovery` / `training.recovery` fields are honored per phase.
    pub fn with_recovery_policy(mut self, recovery: RecoveryPolicy) -> Self {
        self.walks.recovery = recovery;
        self.training.recovery = recovery;
        self
    }
}

/// Everything measured during one end-to-end run.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// The learned node embeddings.
    pub embeddings: Embeddings,
    /// Wall-clock per-phase times plus modelled communication time.
    pub times: PhaseTimes,
    /// The partitioning that was used.
    pub partitioning: Partitioning,
    /// Fraction of edges kept local by the partitioning.
    pub local_edge_fraction: f64,
    /// Cross-machine traffic of the random-walk phase.
    pub walk_comm: CommStats,
    /// BSP superstep coordination overhead of the walk phase in seconds (see
    /// [`distger_walks::WalkResult::superstep_sync_secs`]); the training
    /// phase's equivalent lives in
    /// [`TrainStats::superstep_sync_secs`](distger_embed::TrainStats).
    pub walk_superstep_sync_secs: f64,
    /// OS threads the walk phase spawned (see
    /// [`distger_walks::WalkResult::pool_spawn_count`]): `machines` under
    /// the default run-scoped [`ExecutionBackend::RoundLoop`],
    /// `machines × rounds` under the per-round pool.
    pub walk_pool_spawn_count: u64,
    /// Number of walks per node actually executed.
    pub walk_rounds: usize,
    /// Walk rounds re-executed by supervised recovery (0 on a fault-free
    /// run; see [`distger_walks::WalkResult::recovered_rounds`]). The
    /// training phase's equivalent lives in
    /// [`TrainStats::recovered_chunks`](distger_embed::TrainStats).
    pub walk_recovered_rounds: u64,
    /// Wall-clock seconds the walk phase spent encoding round-boundary
    /// checkpoints (0 when [`DistGerConfig::with_checkpoint_policy`] leaves
    /// checkpointing disabled).
    pub walk_checkpoint_secs: f64,
    /// Total encoded checkpoint bytes the walk phase produced.
    pub walk_checkpoint_bytes: u64,
    /// Average walk length of the sampled corpus.
    pub avg_walk_length: f64,
    /// Total corpus tokens fed to the learner.
    pub corpus_tokens: usize,
    /// Training statistics (including synchronization traffic).
    pub train_stats: TrainStats,
    /// Per-machine memory estimate of the sampling phase.
    pub sampling_memory: MemoryEstimate,
    /// Per-machine memory estimate of the training phase.
    pub training_memory: MemoryEstimate,
}

impl PipelineResult {
    /// End-to-end running time (partition + sampling + training), the
    /// quantity plotted in Figure 5.
    pub fn end_to_end_secs(&self) -> f64 {
        self.times.end_to_end_secs()
    }

    /// Total cross-machine messages (walking + training synchronization).
    pub fn total_messages(&self) -> u64 {
        self.walk_comm.messages + self.train_stats.sync_comm.messages
    }

    /// Builds the serving layer over the learned embeddings: a read-optimized
    /// [`EmbeddingIndex`] wrapped in a batched top-k [`QueryEngine`] —
    /// train → serve in one call. For the export path between processes, go
    /// through [`Embeddings::save_binary`](distger_embed::Embeddings::save_binary)
    /// / `load_binary` and build the engine from the loaded embeddings (see
    /// `examples/serve_queries.rs`).
    pub fn query_engine(&self, config: ServeConfig) -> QueryEngine {
        QueryEngine::new(EmbeddingIndex::build(&self.embeddings), config)
    }

    /// Builds the full serving front door over the learned embeddings: the
    /// [`QueryEngine`] of [`query_engine`](Self::query_engine) behind a
    /// dynamic-batching [`Scheduler`] — independent callers then submit
    /// single queries through [`Scheduler::client`] handles instead of
    /// assembling batches themselves.
    pub fn request_scheduler(&self, serve: ServeConfig, scheduler: SchedulerConfig) -> Scheduler {
        Scheduler::new(self.query_engine(serve), scheduler)
    }
}

/// Runs the full pipeline on `graph` under `config`.
pub fn run_pipeline(graph: &CsrGraph, config: &DistGerConfig) -> PipelineResult {
    let num_machines = config.cluster.num_machines;
    let mut times = PhaseTimes::default();

    // Phase 1: partitioning.
    let mut watch = Stopwatch::start();
    let partitioning = {
        let _span = distger_obs::span!("partition");
        config
            .partitioner
            .partition(graph, num_machines, config.seed)
    };
    times.partition_secs = watch.lap();

    // Phase 2: distributed information-centric random walks.
    let walk_result = {
        let _span = distger_obs::span!("sampling");
        run_distributed_walks(graph, &partitioning, &config.walks)
    };
    times.sampling_secs = watch.lap();

    // Phase 3: distributed Skip-Gram learning.
    let (embeddings, train_stats) = {
        let _span = distger_obs::span!("training");
        train_distributed(&walk_result.corpus, num_machines, &config.training)
    };
    times.training_secs = watch.lap();

    // Modelled cross-machine communication time.
    let mut total_comm = walk_result.comm.clone();
    total_comm.merge(&train_stats.sync_comm);
    times.modelled_comm_secs = config.cluster.network.comm_time_secs(&total_comm);

    // Memory accounting (Tables 3 and 8).
    let mut sampling_memory = MemoryEstimate::new();
    sampling_memory
        .add(
            "graph partition",
            graph.memory_bytes() / num_machines.max(1),
        )
        .add("walker state", walk_result.walker_peak_bytes)
        .add("corpus shard", walk_result.corpus_shard_bytes)
        .add(
            "alias transition tables",
            walk_result.alias_table_bytes / num_machines.max(1),
        );
    let mut training_memory = MemoryEstimate::new();
    training_memory
        .add(
            "model replica + buffers",
            train_stats.avg_machine_memory_bytes,
        )
        .add(
            "corpus shard",
            walk_result.corpus.memory_bytes() / num_machines.max(1),
        );

    PipelineResult {
        embeddings,
        times,
        local_edge_fraction: partitioning.local_edge_fraction(graph),
        partitioning,
        walk_comm: walk_result.comm.clone(),
        walk_superstep_sync_secs: walk_result.superstep_sync_secs,
        walk_pool_spawn_count: walk_result.pool_spawn_count,
        walk_rounds: walk_result.rounds,
        walk_recovered_rounds: walk_result.recovered_rounds,
        walk_checkpoint_secs: walk_result.checkpoint_secs,
        walk_checkpoint_bytes: walk_result.checkpoint_bytes,
        avg_walk_length: walk_result.avg_walk_length(),
        corpus_tokens: walk_result.corpus.total_tokens(),
        train_stats,
        sampling_memory,
        training_memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_eval::{evaluate_link_prediction, split_edges};
    use distger_graph::barabasi_albert;

    #[test]
    fn distger_pipeline_end_to_end() {
        let g = barabasi_albert(400, 4, 3);
        let config = DistGerConfig::distger(4).small().with_seed(1);
        let result = run_pipeline(&g, &config);
        assert_eq!(result.embeddings.num_nodes(), 400);
        assert!(result.walk_rounds >= 2);
        assert!(result.avg_walk_length > 5.0);
        assert!(result.corpus_tokens > 400 * 5);
        assert!(result.times.end_to_end_secs() > 0.0);
        assert!(result.local_edge_fraction > 0.0);
        assert!(result.sampling_memory.total_bytes() > 0);
        assert!(result.training_memory.total_bytes() > 0);
    }

    #[test]
    fn distger_beats_random_embeddings_on_link_prediction() {
        // Community + power-law graph: degree skew plus the dense local
        // neighbourhoods of the paper's social graphs — plain BA has no local
        // structure to predict from.
        let g = distger_graph::community_powerlaw(400, 8, 5, 0.1, 9);
        let split = split_edges(&g, 0.5, 4);
        let config = DistGerConfig::distger(2).small().with_seed(2);
        let mut cfg = config;
        cfg.training.epochs = 3;
        let result = run_pipeline(&split.train_graph, &cfg);
        let auc = evaluate_link_prediction(&result.embeddings, &split);
        assert!(
            auc > 0.75,
            "DistGER embeddings should predict links well, got AUC {auc}"
        );
    }

    #[test]
    fn execution_backends_sample_identical_corpora_end_to_end() {
        let g = barabasi_albert(300, 4, 13);
        let base = DistGerConfig::distger(4).small().with_seed(7);
        let round_loop = run_pipeline(&g, &base); // RoundLoop is the default
        let pool = run_pipeline(&g, &base.with_execution_backend(ExecutionBackend::Pool));
        let spawn = run_pipeline(
            &g,
            &base.with_execution_backend(ExecutionBackend::SpawnPerStep),
        );
        // The sampler is deterministic across backends; training adds
        // Hogwild races, so the corpus and walk traffic are the equality
        // surface here.
        for other in [&pool, &spawn] {
            assert_eq!(round_loop.corpus_tokens, other.corpus_tokens);
            assert_eq!(round_loop.walk_comm, other.walk_comm);
            assert_eq!(round_loop.walk_rounds, other.walk_rounds);
        }
        // The run-scoped loop spawns `machines` walk threads for the whole
        // run; the per-round pool pays that per round.
        assert_eq!(round_loop.walk_pool_spawn_count, 4);
        assert_eq!(pool.walk_pool_spawn_count, 4 * pool.walk_rounds as u64);
        assert!(round_loop.walk_superstep_sync_secs >= 0.0);
        assert!(spawn.walk_superstep_sync_secs > 0.0);
    }

    #[test]
    fn knightking_and_huge_d_configs_run() {
        let g = barabasi_albert(200, 3, 5);
        for mut config in [DistGerConfig::knightking(2), DistGerConfig::huge_d(2)] {
            config = config.small().with_seed(3);
            // keep routine walks short for test speed
            if let distger_walks::LengthPolicy::Fixed(_) = config.walks.length {
                config.walks.length = distger_walks::LengthPolicy::Fixed(20);
                config.walks.walks_per_node = distger_walks::WalkCountPolicy::Fixed(2);
            }
            let result = run_pipeline(&g, &config);
            assert_eq!(result.embeddings.num_nodes(), 200);
            assert!(result.corpus_tokens > 0);
        }
    }

    #[test]
    fn general_api_runs_deepwalk_and_node2vec() {
        let g = barabasi_albert(200, 3, 7);
        for model in [WalkModel::DeepWalk, WalkModel::Node2Vec { p: 4.0, q: 1.0 }] {
            let config = DistGerConfig::distger(2)
                .small()
                .with_seed(5)
                .with_walk_model(model);
            let result = run_pipeline(&g, &config);
            assert!(
                result.corpus_tokens > 0,
                "{} produced no corpus",
                model.name()
            );
        }
    }

    #[test]
    fn trained_run_serves_top_k_on_both_backends() {
        use distger_serve::{QueryBackend, QueryBatch};
        let g = distger_graph::community_powerlaw(300, 6, 4, 0.1, 17);
        let config = DistGerConfig::distger(2).small().with_seed(4);
        let result = run_pipeline(&g, &config);
        for backend in [QueryBackend::Exact, QueryBackend::Lsh] {
            let engine = result.query_engine(ServeConfig {
                backend,
                k: 5,
                threads: 2,
                ..ServeConfig::default()
            });
            let batch = QueryBatch::from_nodes(engine.index(), &[0, 50, 299]);
            let out = engine.top_k(&batch);
            assert_eq!(out.results.len(), 3);
            for (query_node, top) in [0u32, 50, 299].into_iter().zip(&out.results) {
                assert_eq!(
                    top.neighbors()[0].node,
                    query_node,
                    "{} backend did not rank the query node itself first",
                    backend.name()
                );
                assert_eq!(top.len(), 5);
            }
            assert!(out.stats.wall_secs > 0.0);
        }
    }

    #[test]
    fn trained_run_serves_through_the_request_scheduler() {
        use distger_serve::SchedulerConfig;
        let g = distger_graph::community_powerlaw(300, 6, 4, 0.1, 17);
        let config = DistGerConfig::distger(2).small().with_seed(4);
        let result = run_pipeline(&g, &config);
        let serve = ServeConfig {
            k: 5,
            threads: 2,
            ..ServeConfig::default()
        };
        // The scheduler is transparent: its answer for a node's own
        // embedding must be bit-identical to the direct engine call.
        let expected = result
            .query_engine(serve)
            .top_k_one(result.query_engine(serve).index().unit_vector(50));
        let scheduler = result.request_scheduler(serve, SchedulerConfig::default());
        let client = scheduler.client();
        let query = scheduler.engine().index().unit_vector(50).to_vec();
        let answer = client.submit(&query).unwrap().wait().unwrap();
        assert_eq!(answer, expected);
        assert_eq!(answer.neighbors()[0].node, 50);
        assert_eq!(scheduler.stats().completed, 1);
    }

    #[test]
    fn checkpointed_pipeline_matches_the_plain_run() {
        let g = barabasi_albert(300, 4, 19);
        let base = DistGerConfig::distger(4).small().with_seed(6);
        let plain = run_pipeline(&g, &base);
        let hardened = run_pipeline(
            &g,
            &base
                .with_checkpoint_policy(CheckpointPolicy::every(1))
                .with_recovery_policy(RecoveryPolicy::retries(2)),
        );
        // Fault-free: the supervised walk phase is bit-identical to the
        // plain one, and the stats surface the checkpoint work.
        assert_eq!(hardened.corpus_tokens, plain.corpus_tokens);
        assert_eq!(hardened.walk_comm, plain.walk_comm);
        assert_eq!(hardened.walk_rounds, plain.walk_rounds);
        assert_eq!(hardened.walk_recovered_rounds, 0);
        assert_eq!(hardened.train_stats.recovered_chunks, 0);
        assert!(hardened.walk_checkpoint_bytes > 0);
        assert!(hardened.walk_checkpoint_secs >= 0.0);
        assert_eq!(plain.walk_checkpoint_bytes, 0);
    }

    #[test]
    fn builders_cover_every_field() {
        let config = DistGerConfig::distger(2)
            .with_partitioner(PartitionerChoice::Hash)
            .with_cluster(ClusterConfig::new(3))
            .with_trainer_kind(TrainerKind::Hogwild)
            .with_walk_model(WalkModel::DeepWalk)
            .with_freq_backend(FreqBackend::NestedReference)
            .with_sampling_backend(SamplingBackend::LinearScan)
            .with_execution_backend(ExecutionBackend::Pool)
            .with_transport(TransportKind::Socket)
            .with_seed(9);
        assert_eq!(config.partitioner, PartitionerChoice::Hash);
        assert_eq!(config.cluster.num_machines, 3);
        assert_eq!(config.training.kind, TrainerKind::Hogwild);
        assert_eq!(config.walks.model, WalkModel::DeepWalk);
        assert_eq!(config.walks.freq_backend, FreqBackend::NestedReference);
        assert_eq!(config.walks.sampling_backend, SamplingBackend::LinearScan);
        assert_eq!(config.walks.execution, ExecutionBackend::Pool);
        assert_eq!(config.training.execution, ExecutionBackend::Pool);
        assert_eq!(config.walks.transport, TransportKind::Socket);
        assert_eq!(config.training.transport, TransportKind::Socket);
        assert_eq!(config.seed, 9);
        assert_eq!(config.walks.seed, 9);
        assert_eq!(config.training.seed, 9);
    }

    #[test]
    fn partitioner_choices_all_run() {
        let g = barabasi_albert(150, 3, 11);
        for choice in [
            PartitionerChoice::Mpgp(MpgpConfig::default()),
            PartitionerChoice::MpgpParallel {
                segments: 2,
                config: MpgpConfig::parallel_default(),
            },
            PartitionerChoice::WorkloadBalanced,
            PartitionerChoice::Hash,
            PartitionerChoice::Ldg,
            PartitionerChoice::Fennel,
        ] {
            let p = choice.partition(&g, 3, 1);
            assert_eq!(p.num_nodes(), 150, "{} incomplete", choice.name());
        }
    }
}
