//! A uniform interface over the five compared systems, used by the
//! experiment harness (Figures 5, 6, 8 and Table 4).

use distger_cluster::CommStats;
use distger_embed::Embeddings;
use distger_graph::CsrGraph;
use distger_obs::PhaseTimes;

use crate::baselines::{run_gnn_like, run_pbg_like, GnnLikeConfig, PbgLikeConfig};
use crate::pipeline::{run_pipeline, DistGerConfig};

/// The systems compared in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// PyTorch-BigGraph-like baseline (parameter server).
    Pbg,
    /// DistDGL-like baseline (sampling-dominated GNN).
    DistDgl,
    /// KnightKing: routine random walks + Pword2vec.
    KnightKing,
    /// HuGE-D: information-oriented walks with full-path computation.
    HugeD,
    /// DistGER: InCoM + MPGP + DSGL.
    DistGer,
}

impl SystemKind {
    /// All systems in the order Figure 5 plots them.
    pub const ALL: [SystemKind; 5] = [
        SystemKind::Pbg,
        SystemKind::DistDgl,
        SystemKind::KnightKing,
        SystemKind::HugeD,
        SystemKind::DistGer,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Pbg => "PBG",
            SystemKind::DistDgl => "DistDGL",
            SystemKind::KnightKing => "KnightKing",
            SystemKind::HugeD => "HuGE-D",
            SystemKind::DistGer => "DistGER",
        }
    }
}

/// Uniform result of running one system on one graph.
#[derive(Clone, Debug)]
pub struct SystemRun {
    /// Which system produced this run.
    pub system: SystemKind,
    /// Learned embeddings.
    pub embeddings: Embeddings,
    /// Per-phase wall-clock times.
    pub times: PhaseTimes,
    /// Cross-machine traffic.
    pub comm: CommStats,
}

impl SystemRun {
    /// End-to-end running time in seconds.
    pub fn end_to_end_secs(&self) -> f64 {
        self.times.end_to_end_secs()
    }
}

/// Effort scaling shared by all systems so that comparisons stay fair at
/// laptop scale: embedding dimension and passes over the data.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Embedding dimension.
    pub dim: usize,
    /// Epochs / passes over the training data.
    pub epochs: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for RunScale {
    fn default() -> Self {
        Self {
            dim: 64,
            epochs: 2,
            seed: 0,
        }
    }
}

/// Runs `system` on `graph` with `num_machines` simulated machines.
pub fn run_system(
    system: SystemKind,
    graph: &CsrGraph,
    num_machines: usize,
    scale: RunScale,
) -> SystemRun {
    match system {
        SystemKind::Pbg => {
            let result = run_pbg_like(
                graph,
                num_machines,
                &PbgLikeConfig {
                    dim: scale.dim,
                    epochs: scale.epochs * 3,
                    seed: scale.seed,
                    ..PbgLikeConfig::default()
                },
            );
            SystemRun {
                system,
                embeddings: result.embeddings,
                times: result.times,
                comm: result.comm,
            }
        }
        SystemKind::DistDgl => {
            let result = run_gnn_like(
                graph,
                num_machines,
                &GnnLikeConfig {
                    dim: scale.dim,
                    epochs: scale.epochs * 2,
                    seed: scale.seed,
                    ..GnnLikeConfig::default()
                },
            );
            SystemRun {
                system,
                embeddings: result.embeddings,
                times: result.times,
                comm: result.comm,
            }
        }
        SystemKind::KnightKing | SystemKind::HugeD | SystemKind::DistGer => {
            let mut config = match system {
                SystemKind::KnightKing => DistGerConfig::knightking(num_machines),
                SystemKind::HugeD => DistGerConfig::huge_d(num_machines),
                _ => DistGerConfig::distger(num_machines),
            }
            .with_seed(scale.seed);
            config.training.dim = scale.dim;
            config.training.epochs = scale.epochs;
            config.training.sync_rounds_per_epoch = 2;
            let result = run_pipeline(graph, &config);
            let mut comm = result.walk_comm.clone();
            comm.merge(&result.train_stats.sync_comm);
            SystemRun {
                system,
                embeddings: result.embeddings,
                times: result.times,
                comm,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_graph::barabasi_albert;

    #[test]
    fn every_system_produces_embeddings() {
        let g = barabasi_albert(150, 3, 2);
        let scale = RunScale {
            dim: 16,
            epochs: 1,
            seed: 1,
        };
        for system in SystemKind::ALL {
            let run = run_system(system, &g, 2, scale);
            assert_eq!(run.embeddings.num_nodes(), 150, "{}", system.name());
            assert!(run.end_to_end_secs() >= 0.0);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            SystemKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
