//! Multi-process distributed training: the trainer's replica synchronization
//! expressed over a [`ControlChannel`], so the replicas can live in separate
//! processes connected by sockets.
//!
//! One endpoint hosts one model replica. The coordinator (endpoint 0) owns
//! the corpus; workers receive the vocabulary frequencies and their corpus
//! shard over the wire, train locally, and exchange parameter rows at every
//! synchronization boundary.
//!
//! # Bit-identity with the in-process trainer
//!
//! With `config.threads == 1` (intra-machine Hogwild is the one
//! nondeterministic ingredient), `train_distributed_over` on `m` endpoints
//! produces embeddings **bit-identical** to
//! [`train_distributed`](crate::train_distributed) on `m` in-process
//! machines:
//!
//! * every endpoint rebuilds the same [`Vocab`] from the broadcast
//!   frequencies ([`Vocab::from_frequencies`] is a deterministic sort) and
//!   the same negative table, sigmoid table, and replica initialization from
//!   the shared seed;
//! * every endpoint advances an identical `sync_rng`, so
//!   [`select_sync_ranks`] picks the same rows everywhere without any
//!   coordination traffic;
//! * row averaging accumulates the endpoint contributions in ascending
//!   endpoint order — the same `f32` summation order as
//!   [`synchronize_replicas`](crate::sync::synchronize_replicas) — and the
//!   final model gather mirrors [`gather_phi_in`](crate::sync::gather_phi_in)
//!   the same way.
//!
//! Parameter rows travel as raw `f32` bit patterns (no text round trip), so
//! no precision is lost on the wire.

use std::io;
use std::net::TcpListener;
use std::time::Duration;

use distger_cluster::wire::{put_u32, put_u64};
use distger_cluster::{
    gather_trace_events, CommStats, ControlChannel, SocketTransport, WireReader,
};
use distger_walks::rng::SplitMix64;
use distger_walks::Corpus;

use crate::embeddings::Embeddings;
use crate::negative::NegativeTable;
use crate::sgns::SigmoidTable;
use crate::sync::{select_sync_ranks, ModelReplica};
use crate::trainer::{epoch_slice, train_machine_chunk, TrainStats, TrainerConfig};
use crate::vocab::Vocab;

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Encodes one endpoint's rank-space corpus shard.
fn encode_shard(shard: &[Vec<u32>]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, shard.len() as u64);
    for walk in shard {
        put_u32(&mut out, walk.len() as u32);
        for &rank in walk {
            put_u32(&mut out, rank);
        }
    }
    out
}

fn decode_shard(payload: &[u8]) -> io::Result<Vec<Vec<u32>>> {
    let mut r = WireReader::new(payload);
    let walks = r.u64()? as usize;
    let mut shard = Vec::with_capacity(walks.min(r.remaining() / 4 + 1));
    for _ in 0..walks {
        let len = r.u32()? as usize;
        let mut walk = Vec::with_capacity(len.min(r.remaining() / 4 + 1));
        for _ in 0..len {
            walk.push(r.u32()?);
        }
        shard.push(walk);
    }
    r.finish()?;
    Ok(shard)
}

/// Appends the selected rows of both matrices as `f32` bit patterns.
fn encode_rows(replica: &ModelReplica, ranks: &[u32], dim: usize, out: &mut Vec<u8>) {
    let mut buf = vec![0.0f32; dim];
    for &rank in ranks {
        for matrix_idx in 0..2 {
            let matrix = if matrix_idx == 0 {
                &replica.phi_in
            } else {
                &replica.phi_out
            };
            matrix.copy_row_into(rank as usize, &mut buf);
            for &x in &buf {
                put_u32(out, x.to_bits());
            }
        }
    }
}

/// Reads `rows × dim` `f32`s from `r` into a flat vector.
fn read_f32s(r: &mut WireReader<'_>, count: usize) -> io::Result<Vec<f32>> {
    let mut out = Vec::with_capacity(count.min(r.remaining() / 4 + 1));
    for _ in 0..count {
        out.push(f32::from_bits(r.u32()?));
    }
    Ok(out)
}

/// Averages the per-endpoint row payloads in ascending endpoint order — the
/// same `f32` accumulation order as the in-process
/// [`synchronize_replicas`](crate::sync::synchronize_replicas) — and returns
/// the averaged payload in the same layout.
fn average_row_payloads(payloads: &[Vec<u8>], rows: usize, dim: usize) -> io::Result<Vec<u8>> {
    let m = payloads.len();
    let floats = rows * dim;
    let mut avg = vec![0.0f32; floats];
    for payload in payloads {
        let mut r = WireReader::new(payload);
        let row = read_f32s(&mut r, floats)?;
        r.finish()?;
        for (a, b) in avg.iter_mut().zip(&row) {
            *a += b;
        }
    }
    for a in avg.iter_mut() {
        *a /= m as f32;
    }
    let mut out = Vec::with_capacity(floats * 4);
    for &x in &avg {
        put_u32(&mut out, x.to_bits());
    }
    Ok(out)
}

/// Stores an averaged row payload back into both matrices of `replica`.
fn store_rows(replica: &ModelReplica, ranks: &[u32], dim: usize, payload: &[u8]) -> io::Result<()> {
    let mut r = WireReader::new(payload);
    for &rank in ranks {
        for matrix_idx in 0..2 {
            let row = read_f32s(&mut r, dim)?;
            let matrix = if matrix_idx == 0 {
                &replica.phi_in
            } else {
                &replica.phi_out
            };
            matrix.store_row(rank as usize, &row);
        }
    }
    r.finish()
}

/// Runs distributed SGNS training over `channel`, one model replica per
/// endpoint.
///
/// The coordinator (endpoint 0) must pass `Some(corpus)`; workers pass
/// `None` (a worker's corpus argument is ignored). Returns
/// `Ok(Some((embeddings, stats)))` on the coordinator and `Ok(None)` on
/// workers.
///
/// Checkpoint/recovery policies are an in-process facility and must be
/// disabled; `config.transport` is ignored because the transport in hand
/// decides how messages move.
pub fn train_distributed_over<C: ControlChannel + ?Sized>(
    channel: &mut C,
    corpus: Option<&Corpus>,
    config: &TrainerConfig,
) -> io::Result<Option<(Embeddings, TrainStats)>> {
    assert!(
        !config.recovery.is_enabled(),
        "recovery is not supported by the multi-process trainer"
    );
    let m = channel.endpoints();
    let coordinator = channel.is_coordinator();
    let endpoint = channel.endpoint();

    // Header: node count, token count, and per-node frequencies. Every
    // endpoint rebuilds the identical Vocab from them.
    let header = if coordinator {
        let corpus = corpus.expect("coordinator must provide the corpus");
        let freqs = corpus.node_frequencies();
        let mut out = Vec::with_capacity(16 + freqs.len() * 8);
        put_u64(&mut out, corpus.num_nodes() as u64);
        put_u64(&mut out, corpus.total_tokens() as u64);
        for &f in &freqs {
            put_u64(&mut out, f);
        }
        channel.broadcast(&out)?
    } else {
        channel.broadcast(&[])?
    };
    let mut r = WireReader::new(&header);
    let n = r.u64()? as usize;
    let total_tokens = r.u64()?;
    let mut freqs = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
    for _ in 0..n {
        freqs.push(r.u64()?);
    }
    r.finish()?;

    if n == 0 || total_tokens == 0 {
        return Ok(if coordinator {
            Some((Embeddings::zeros(n, config.dim), TrainStats::default()))
        } else {
            None
        });
    }

    let vocab = Vocab::from_frequencies(&freqs);
    if vocab.len() != n {
        return Err(invalid("vocabulary size disagrees with header"));
    }

    // Shard the corpus in rank space (identical to the in-process trainer)
    // and scatter one shard per endpoint. The coordinator keeps all shard
    // sizes for the memory accounting of the final stats.
    let mut coordinator_shard_bytes = 0usize;
    let shard_payload = if coordinator {
        let corpus = corpus.expect("coordinator must provide the corpus");
        let shards: Vec<Vec<Vec<u32>>> = corpus
            .split(m)
            .iter()
            .map(|shard| {
                shard
                    .walks()
                    .iter()
                    .map(|walk| walk.iter().map(|&v| vocab.rank_of(v)).collect())
                    .collect()
            })
            .collect();
        coordinator_shard_bytes = shards
            .iter()
            .map(|s| s.iter().map(|w| w.len() * 4).sum::<usize>())
            .max()
            .unwrap_or(0);
        channel.scatter(&shards.iter().map(|s| encode_shard(s)).collect::<Vec<_>>())?
    } else {
        channel.scatter(&[])?
    };
    let shard = decode_shard(&shard_payload)?;

    // Deterministic local setup — identical on every endpoint.
    let table = NegativeTable::from_vocab(&vocab);
    let sigmoid = SigmoidTable::new();
    let replica = ModelReplica::new(n, config.dim, config.seed);
    let mut sync_rng = SplitMix64::new(config.seed ^ 0x5f3c_9a1d);
    let total_chunks = (config.epochs * config.sync_rounds_per_epoch).max(1);
    let lr_for = |chunk: usize| {
        let progress = chunk as f32 / total_chunks as f32;
        config.learning_rate - (config.learning_rate - config.min_learning_rate) * progress
    };

    let mut sync_comm = CommStats::new();
    let mut pairs_processed = 0u64;
    let mut peak_buffer_bytes = 0usize;
    let start = std::time::Instant::now();

    for chunk in 0..total_chunks {
        let slice_idx = chunk % config.sync_rounds_per_epoch.max(1);
        let slice = epoch_slice(&shard, slice_idx, config.sync_rounds_per_epoch);
        let (pairs, buffer_bytes) = {
            let _chunk_span = distger_obs::span!("train_chunk", machine = endpoint, round = chunk);
            train_machine_chunk(
                &replica,
                slice,
                &table,
                &sigmoid,
                config,
                lr_for(chunk),
                endpoint as u64,
            )
        };
        pairs_processed += pairs;
        peak_buffer_bytes = peak_buffer_bytes.max(buffer_bytes);

        // Every endpoint advances the same rng, so the rank selection needs
        // no coordination traffic.
        let ranks = select_sync_ranks(config.sync, &vocab, &mut sync_rng);
        if m <= 1 || ranks.is_empty() {
            continue;
        }
        let _sync_span = distger_obs::span!("replica_sync", machine = endpoint, round = chunk);
        let mut payload = Vec::with_capacity(ranks.len() * 2 * config.dim * 4);
        encode_rows(&replica, &ranks, config.dim, &mut payload);
        let gathered = channel.gather(&payload)?;
        let averaged = if coordinator {
            let averaged = average_row_payloads(&gathered, ranks.len() * 2, config.dim)?;
            // Traffic mirrors synchronize_replicas: each machine uploads and
            // downloads each synchronized row of each matrix once.
            for _ in 0..(ranks.len() * 2) {
                for _ in 0..(2 * m) {
                    sync_comm.record_message(config.dim * std::mem::size_of::<f32>());
                }
            }
            channel.broadcast(&averaged)?
        } else {
            channel.broadcast(&[])?
        };
        store_rows(&replica, &ranks, config.dim, &averaged)?;
    }
    let training_secs = start.elapsed().as_secs_f64();

    // Final gather: each endpoint ships its full φ_in plus its local
    // counters; the coordinator averages in endpoint order (the same order
    // as the in-process gather_phi_in) and maps rank-major rows back to
    // node ids.
    let mut payload = Vec::with_capacity(n * config.dim * 4 + 16);
    let mut buf = vec![0.0f32; config.dim];
    for rank in 0..n {
        replica.phi_in.copy_row_into(rank, &mut buf);
        for &x in &buf {
            put_u32(&mut payload, x.to_bits());
        }
    }
    put_u64(&mut payload, pairs_processed);
    put_u64(&mut payload, peak_buffer_bytes as u64);
    let gathered = channel.gather(&payload)?;
    // Cross-process trace merge: every endpoint ships its training spans to
    // the coordinator at the end of the run (a no-op collective when tracing
    // is disabled).
    gather_trace_events(channel)?;
    if !coordinator {
        return Ok(None);
    }

    let floats = n * config.dim;
    let mut rank_major = vec![0.0f32; floats];
    let mut total_pairs = 0u64;
    let mut max_buffer_bytes = 0usize;
    for endpoint_payload in &gathered {
        let mut r = WireReader::new(endpoint_payload);
        let rows = read_f32s(&mut r, floats)?;
        for (o, b) in rank_major.iter_mut().zip(&rows) {
            *o += b;
        }
        total_pairs += r.u64()?;
        max_buffer_bytes = max_buffer_bytes.max(r.u64()? as usize);
        r.finish()?;
    }
    for x in rank_major.iter_mut() {
        *x /= m as f32;
    }
    let mut node_major = vec![0.0f32; floats];
    for rank in 0..n as u32 {
        let node = vocab.node_at(rank) as usize;
        let src = &rank_major[rank as usize * config.dim..(rank as usize + 1) * config.dim];
        node_major[node * config.dim..(node + 1) * config.dim].copy_from_slice(src);
    }

    let stats = TrainStats {
        pairs_processed: total_pairs,
        corpus_tokens: total_tokens,
        training_secs,
        throughput_pairs_per_sec: if training_secs > 0.0 {
            total_pairs as f64 / training_secs
        } else {
            0.0
        },
        sync_comm,
        superstep_sync_secs: 0.0,
        avg_machine_memory_bytes: replica.memory_bytes()
            + table.memory_bytes()
            + coordinator_shard_bytes
            + max_buffer_bytes,
        recovered_chunks: 0,
    };
    Ok(Some((
        Embeddings::from_node_major(node_major, config.dim),
        stats,
    )))
}

/// Test/bench harness: runs [`train_distributed_over`] across `endpoints`
/// processes' worth of [`SocketTransport`]s connected over real loopback TCP
/// — worker endpoints on scoped threads, the coordinator on the calling
/// thread — and returns the coordinator's result.
pub fn train_distributed_over_loopback(
    corpus: &Corpus,
    config: &TrainerConfig,
    endpoints: usize,
) -> (Embeddings, TrainStats) {
    assert!(endpoints > 0, "need at least one endpoint");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
    let addr = listener.local_addr().expect("loopback listener address");
    std::thread::scope(|scope| {
        for _ in 1..endpoints {
            scope.spawn(move || {
                let mut transport =
                    SocketTransport::worker(addr, Duration::from_secs(10)).expect("worker connect");
                let result = train_distributed_over(&mut transport, None, config)
                    .expect("worker training run");
                assert!(result.is_none(), "workers return no result");
            });
        }
        let mut transport = SocketTransport::coordinator(&listener, endpoints, endpoints)
            .expect("coordinator accept");
        train_distributed_over(&mut transport, Some(corpus), config)
            .expect("coordinator training run")
            .expect("coordinator returns the result")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_distributed;
    use distger_cluster::InMemoryTransport;

    fn corpus(seed: u64) -> Corpus {
        let mut rng = SplitMix64::new(seed);
        let walks = (0..40)
            .map(|_| (0..12).map(|_| rng.next_bounded(30) as u32).collect())
            .collect();
        Corpus::from_walks(walks, 30)
    }

    fn deterministic_config() -> TrainerConfig {
        TrainerConfig::small().with_dim(8).with_threads(1)
    }

    #[test]
    fn single_endpoint_in_memory_matches_classic_trainer() {
        let corpus = corpus(7);
        let config = deterministic_config();
        let (classic, classic_stats) = train_distributed(&corpus, 1, &config);
        let mut transport = InMemoryTransport::new(1);
        let (dist, dist_stats) = train_distributed_over(&mut transport, Some(&corpus), &config)
            .expect("in-memory run")
            .expect("coordinator result");
        for v in 0..corpus.num_nodes() as u32 {
            assert_eq!(dist.vector(v), classic.vector(v), "node {v}");
        }
        assert_eq!(dist_stats.pairs_processed, classic_stats.pairs_processed);
        assert_eq!(dist_stats.sync_comm, classic_stats.sync_comm);
    }

    #[test]
    fn loopback_socket_training_is_bit_identical_to_in_process() {
        for &endpoints in &[2usize, 3] {
            let corpus = corpus(11);
            let config = deterministic_config();
            let (classic, classic_stats) = train_distributed(&corpus, endpoints, &config);
            let (dist, dist_stats) = train_distributed_over_loopback(&corpus, &config, endpoints);
            for v in 0..corpus.num_nodes() as u32 {
                assert_eq!(
                    dist.vector(v),
                    classic.vector(v),
                    "node {v} with {endpoints} endpoints"
                );
            }
            assert_eq!(dist_stats.pairs_processed, classic_stats.pairs_processed);
            assert_eq!(dist_stats.sync_comm, classic_stats.sync_comm);
        }
    }

    #[test]
    fn empty_corpus_returns_zeros_everywhere() {
        let corpus = Corpus::from_walks(Vec::new(), 0);
        let config = deterministic_config();
        let mut transport = InMemoryTransport::new(1);
        let (dist, stats) = train_distributed_over(&mut transport, Some(&corpus), &config)
            .expect("empty run")
            .expect("coordinator result");
        assert_eq!(dist.num_nodes(), 0);
        assert_eq!(stats.pairs_processed, 0);
    }

    #[test]
    #[should_panic(expected = "recovery is not supported")]
    fn rejects_recovery_policies() {
        let corpus = corpus(3);
        let config = deterministic_config()
            .with_recovery_policy(distger_cluster::RecoveryPolicy::retries(1));
        let mut transport = InMemoryTransport::new(1);
        let _ = train_distributed_over(&mut transport, Some(&corpus), &config);
    }

    #[test]
    fn hotness_block_sync_stays_bit_identical() {
        let corpus = corpus(19);
        let config = deterministic_config().with_sync(crate::SyncStrategy::HotnessBlock);
        let (classic, _) = train_distributed(&corpus, 2, &config);
        let (dist, _) = train_distributed_over_loopback(&corpus, &config, 2);
        for v in 0..corpus.num_nodes() as u32 {
            assert_eq!(dist.vector(v), classic.vector(v), "node {v}");
        }
    }
}
