//! DSGL — the paper's Distributed Skip-Gram Learning trainer (§4.2).
//!
//! Improvement-I (access locality): the global matrices are rank-ordered by
//! corpus frequency (see [`crate::vocab::Vocab`]) and, for the lifetime of the
//! walks a thread is processing, the vectors of their context nodes and of the
//! sampled negative nodes are staged in **thread-local buffers**; only after
//! the lifetime ends are the updated vectors written back to the global
//! matrices. This removes most of the cache-line ping-ponging of Hogwild.
//!
//! Improvement-II (CPU throughput): a thread processes **multiple walks**
//! (`multi_windows ≥ 2`) in lockstep and shares one negative set across the
//! aligned windows of all of them; the target node of each window additionally
//! serves as an extra negative sample for the other windows, enlarging the
//! effective batch exactly as in Figure 3(d)/Figure 4.

use std::collections::HashMap;

use crate::sgns::{apply_input_grad, sgns_pair_update, TrainContext};
use distger_walks::rng::SplitMix64;

/// Thread-local staging buffer mapping matrix ranks to locally cached rows.
struct LocalBuffer {
    dim: usize,
    rows: Vec<f32>,
    rank_to_slot: HashMap<u32, usize>,
}

impl LocalBuffer {
    fn new(dim: usize) -> Self {
        Self {
            dim,
            rows: Vec::new(),
            rank_to_slot: HashMap::new(),
        }
    }

    fn clear(&mut self) {
        self.rows.clear();
        self.rank_to_slot.clear();
    }

    /// Ensures `rank` is staged, copying its row from `load` on first use, and
    /// returns its slot index.
    fn stage(&mut self, rank: u32, load: impl FnOnce(&mut [f32])) -> usize {
        if let Some(&slot) = self.rank_to_slot.get(&rank) {
            return slot;
        }
        let slot = self.rank_to_slot.len();
        self.rows.resize((slot + 1) * self.dim, 0.0);
        load(&mut self.rows[slot * self.dim..(slot + 1) * self.dim]);
        self.rank_to_slot.insert(rank, slot);
        slot
    }

    #[inline]
    fn row_mut(&mut self, slot: usize) -> &mut [f32] {
        &mut self.rows[slot * self.dim..(slot + 1) * self.dim]
    }

    #[inline]
    fn row(&self, slot: usize) -> &[f32] {
        &self.rows[slot * self.dim..(slot + 1) * self.dim]
    }

    /// Writes every staged row back through `store`.
    fn write_back(&self, mut store: impl FnMut(u32, &[f32])) {
        for (&rank, &slot) in &self.rank_to_slot {
            store(rank, self.row(slot));
        }
    }

    /// Current staging footprint in bytes (for the memory experiments).
    fn memory_bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<f32>()
            + self.rank_to_slot.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<usize>())
    }
}

/// Trains one thread's share of walks with DSGL. `multi_windows` is the number
/// of walks processed in lockstep per batch (≥ 1; the paper recommends ≥ 2).
/// Returns `(pairs_processed, peak_buffer_bytes)`.
#[allow(clippy::needless_range_loop)]
pub fn train_walks_dsgl(
    ctx: &TrainContext<'_>,
    walks: &[Vec<u32>],
    multi_windows: usize,
    thread_id: u64,
) -> (u64, usize) {
    let multi = multi_windows.max(1);
    let dim = ctx.phi_in.dim();
    let mut rng = SplitMix64::for_walker(ctx.seed ^ 0xd5_61_0f_37, thread_id);
    let mut input_grad = vec![0.0f32; dim];
    let mut input_snapshot = vec![0.0f32; dim];
    let mut context_buf = LocalBuffer::new(dim);
    let mut negative_buf = LocalBuffer::new(dim);
    let mut pairs = 0u64;
    let mut peak_buffer = 0usize;

    for batch in walks.chunks(multi) {
        context_buf.clear();
        negative_buf.clear();

        // Improvement-I: stage the context vectors of every node appearing in
        // this batch's walks into the local context buffer.
        let mut context_slots: Vec<Vec<usize>> = Vec::with_capacity(batch.len());
        for walk in batch {
            let slots = walk
                .iter()
                .map(|&rank| {
                    context_buf.stage(rank, |dst| ctx.phi_in.copy_row_into(rank as usize, dst))
                })
                .collect();
            context_slots.push(slots);
        }

        // Stage K negatives per step of the longest walk into the local
        // negative buffer (a different K-subset is used at every step).
        let max_len = batch.iter().map(|w| w.len()).max().unwrap_or(0);
        let mut negative_slots: Vec<Vec<(u32, usize)>> = Vec::with_capacity(max_len);
        for _ in 0..max_len {
            let mut step_negs = Vec::with_capacity(ctx.negatives);
            let mut attempts = 0;
            while step_negs.len() < ctx.negatives && attempts < 4 * ctx.negatives {
                attempts += 1;
                let rank = ctx.negatives_table.sample(rng.next_u64());
                let slot =
                    negative_buf.stage(rank, |dst| ctx.phi_out.copy_row_into(rank as usize, dst));
                step_negs.push((rank, slot));
            }
            negative_slots.push(step_negs);
        }
        peak_buffer = peak_buffer.max(context_buf.memory_bytes() + negative_buf.memory_bytes());

        // Improvement-II: walk the batch in lockstep; windows at the same step
        // share the step's negative set, and each window's target acts as an
        // extra negative for the other windows.
        for step in 0..max_len {
            // Targets of all walks active at this step.
            let targets: Vec<(usize, u32)> = batch
                .iter()
                .enumerate()
                .filter(|(_, w)| step < w.len())
                .map(|(wi, w)| (wi, w[step]))
                .collect();

            for &(wi, target) in &targets {
                let walk = &batch[wi];
                let lo = step.saturating_sub(ctx.window);
                let hi = (step + ctx.window).min(walk.len() - 1);
                for c in lo..=hi {
                    if c == step {
                        continue;
                    }
                    let context_slot = context_slots[wi][c];
                    input_grad.iter_mut().for_each(|x| *x = 0.0);
                    // Snapshot the context vector once; all updates of this
                    // group read the same input (matrix-batch semantics).
                    input_snapshot.copy_from_slice(context_buf.row(context_slot));

                    // Positive: the window's own target (global φ_out row —
                    // targets are touched once per window, so no buffer).
                    {
                        let out = unsafe { ctx.phi_out.row_mut(target as usize) };
                        sgns_pair_update(
                            ctx.sigmoid,
                            &input_snapshot,
                            out,
                            1.0,
                            ctx.learning_rate,
                            &mut input_grad,
                        );
                    }
                    // Shared negatives from the local negative buffer.
                    for &(neg_rank, neg_slot) in &negative_slots[step] {
                        if neg_rank == target {
                            continue;
                        }
                        let out = negative_buf.row_mut(neg_slot);
                        sgns_pair_update(
                            ctx.sigmoid,
                            &input_snapshot,
                            out,
                            0.0,
                            ctx.learning_rate,
                            &mut input_grad,
                        );
                    }
                    // Cross-window extra negatives: the other walks' targets.
                    for &(other_wi, other_target) in &targets {
                        if other_wi == wi || other_target == target {
                            continue;
                        }
                        let out = unsafe { ctx.phi_out.row_mut(other_target as usize) };
                        sgns_pair_update(
                            ctx.sigmoid,
                            &input_snapshot,
                            out,
                            0.0,
                            ctx.learning_rate,
                            &mut input_grad,
                        );
                    }
                    apply_input_grad(context_buf.row_mut(context_slot), &input_grad);
                    pairs += 1;
                }
            }
        }

        // End of the batch lifetime: write the staged vectors back to the
        // global matrices.
        context_buf.write_back(|rank, row| ctx.phi_in.store_row(rank as usize, row));
        negative_buf.write_back(|rank, row| ctx.phi_out.store_row(rank as usize, row));
    }
    (pairs, peak_buffer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hogwild::HogwildMatrix;
    use crate::negative::NegativeTable;
    use crate::sgns::SigmoidTable;
    use crate::vocab::Vocab;

    fn two_clique_walks() -> Vec<Vec<u32>> {
        (0..60)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2, 0, 2, 1, 0, 1, 2, 0]
                } else {
                    vec![3, 4, 5, 3, 5, 4, 3, 4, 5, 3]
                }
            })
            .collect()
    }

    fn make_ctx<'a>(
        phi_in: &'a HogwildMatrix,
        phi_out: &'a HogwildMatrix,
        table: &'a NegativeTable,
        sig: &'a SigmoidTable,
    ) -> TrainContext<'a> {
        TrainContext {
            phi_in,
            phi_out,
            negatives_table: table,
            sigmoid: sig,
            window: 3,
            negatives: 4,
            learning_rate: 0.05,
            seed: 21,
        }
    }

    #[test]
    fn dsgl_training_separates_two_cliques() {
        let walks = two_clique_walks();
        let vocab = Vocab::from_frequencies(&[100; 6]);
        let table = NegativeTable::with_size(&vocab, 1 << 12);
        let sig = SigmoidTable::new();
        let phi_in = HogwildMatrix::random_init(6, 16, 5);
        let phi_out = HogwildMatrix::zeros(6, 16);
        let ctx = make_ctx(&phi_in, &phi_out, &table, &sig);
        let mut total_pairs = 0;
        for _ in 0..5 {
            let (pairs, peak) = train_walks_dsgl(&ctx, &walks, 2, 0);
            total_pairs += pairs;
            assert!(peak > 0);
        }
        assert!(total_pairs > 0);
        let dot = |a: usize, b: usize| -> f32 {
            let ra = unsafe { phi_in.row(a) };
            let rb = unsafe { phi_in.row(b) };
            ra.iter().zip(rb).map(|(x, y)| x * y).sum()
        };
        let intra = (dot(0, 1) + dot(1, 2) + dot(3, 4) + dot(4, 5)) / 4.0;
        let inter = (dot(0, 3) + dot(1, 4) + dot(2, 5)) / 3.0;
        assert!(intra > inter, "intra {intra} must exceed inter {inter}");
    }

    #[test]
    fn multi_window_one_equals_plain_batching() {
        // multi_windows = 1 must still be a valid configuration.
        let walks = vec![vec![0u32, 1, 2, 3], vec![3u32, 2, 1, 0]];
        let vocab = Vocab::from_frequencies(&[10; 4]);
        let table = NegativeTable::with_size(&vocab, 256);
        let sig = SigmoidTable::new();
        let phi_in = HogwildMatrix::random_init(4, 8, 1);
        let phi_out = HogwildMatrix::zeros(4, 8);
        let ctx = make_ctx(&phi_in, &phi_out, &table, &sig);
        let (pairs, _) = train_walks_dsgl(&ctx, &walks, 1, 0);
        // window 3 over 4-node walks: every (target, context) ordered pair →
        // 4·3 per walk → 24.
        assert_eq!(pairs, 24);
    }

    #[test]
    fn local_buffer_round_trip() {
        let mut buf = LocalBuffer::new(3);
        let slot_a = buf.stage(7, |dst| dst.copy_from_slice(&[1.0, 2.0, 3.0]));
        let slot_b = buf.stage(9, |dst| dst.copy_from_slice(&[4.0, 5.0, 6.0]));
        assert_ne!(slot_a, slot_b);
        // Staging the same rank twice returns the same slot without reloading.
        let slot_a2 = buf.stage(7, |_| panic!("must not reload an already staged row"));
        assert_eq!(slot_a, slot_a2);
        buf.row_mut(slot_a)[0] = 10.0;
        let mut seen = std::collections::HashMap::new();
        buf.write_back(|rank, row| {
            seen.insert(rank, row.to_vec());
        });
        assert_eq!(seen[&7], vec![10.0, 2.0, 3.0]);
        assert_eq!(seen[&9], vec![4.0, 5.0, 6.0]);
        assert!(buf.memory_bytes() >= 24);
    }

    #[test]
    fn empty_walks_are_handled() {
        let vocab = Vocab::from_frequencies(&[1; 2]);
        let table = NegativeTable::with_size(&vocab, 64);
        let sig = SigmoidTable::new();
        let phi_in = HogwildMatrix::random_init(2, 4, 1);
        let phi_out = HogwildMatrix::zeros(2, 4);
        let ctx = make_ctx(&phi_in, &phi_out, &table, &sig);
        let (pairs, _) = train_walks_dsgl(&ctx, &[], 2, 0);
        assert_eq!(pairs, 0);
        let (pairs, _) = train_walks_dsgl(&ctx, &[vec![0]], 2, 0);
        assert_eq!(pairs, 0, "a single-node walk has no context pairs");
    }
}
