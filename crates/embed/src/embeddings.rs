//! The final node embeddings `φ : V → R^d`.

use distger_graph::NodeId;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Dense node embeddings indexed by original node id.
#[derive(Clone, Debug, PartialEq)]
pub struct Embeddings {
    dim: usize,
    data: Vec<f32>,
}

impl Embeddings {
    /// Creates embeddings from a row-major matrix indexed by node id.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_node_major(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0);
        assert_eq!(data.len() % dim, 0, "data must contain whole rows");
        Self { dim, data }
    }

    /// Creates all-zero embeddings for `n` nodes.
    pub fn zeros(n: usize, dim: usize) -> Self {
        Self {
            dim,
            data: vec![0.0; n * dim],
        }
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded nodes.
    pub fn num_nodes(&self) -> usize {
        self.data.len() / self.dim
    }

    /// The embedding vector of `node`.
    #[inline]
    pub fn vector(&self, node: NodeId) -> &[f32] {
        let i = node as usize * self.dim;
        &self.data[i..i + self.dim]
    }

    /// Mutable access to the embedding vector of `node`.
    #[inline]
    pub fn vector_mut(&mut self, node: NodeId) -> &mut [f32] {
        let i = node as usize * self.dim;
        &mut self.data[i..i + self.dim]
    }

    /// Dot-product similarity `φ(u)·φ(v)` — the link-prediction score used in
    /// §6.4.
    pub fn dot(&self, u: NodeId, v: NodeId) -> f32 {
        self.vector(u)
            .iter()
            .zip(self.vector(v))
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Cosine similarity between two node embeddings (0 when either is zero).
    pub fn cosine(&self, u: NodeId, v: NodeId) -> f32 {
        let nu: f32 = self.vector(u).iter().map(|x| x * x).sum::<f32>().sqrt();
        let nv: f32 = self.vector(v).iter().map(|x| x * x).sum::<f32>().sqrt();
        if nu == 0.0 || nv == 0.0 {
            0.0
        } else {
            self.dot(u, v) / (nu * nv)
        }
    }

    /// Element-wise Hadamard product of two node embeddings, a standard edge
    /// feature for link-prediction classifiers.
    pub fn hadamard(&self, u: NodeId, v: NodeId) -> Vec<f32> {
        self.vector(u)
            .iter()
            .zip(self.vector(v))
            .map(|(a, b)| a * b)
            .collect()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Writes the embeddings in the word2vec text format
    /// (`<n> <dim>` header, then `<node> <v_1> … <v_d>` per line).
    pub fn save_text(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        writeln!(w, "{} {}", self.num_nodes(), self.dim)?;
        for u in 0..self.num_nodes() {
            write!(w, "{u}")?;
            for x in self.vector(u as NodeId) {
                write!(w, " {x}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Reads embeddings written by [`Embeddings::save_text`].
    pub fn load_text(path: impl AsRef<Path>) -> io::Result<Self> {
        let reader = BufReader::new(std::fs::File::open(path)?);
        let mut lines = reader.lines();
        let header = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty file"))??;
        let mut parts = header.split_whitespace();
        let n: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad header"))?;
        let dim: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad header"))?;
        let mut data = vec![0.0f32; n * dim];
        for line in lines {
            let line = line?;
            let mut it = line.split_whitespace();
            let node: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad row"))?;
            for (i, tok) in it.enumerate() {
                data[node * dim + i] = tok
                    .parse()
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad value"))?;
            }
        }
        Ok(Self { dim, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Embeddings {
        Embeddings::from_node_major(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], 2)
    }

    #[test]
    fn accessors_and_similarities() {
        let e = sample();
        assert_eq!(e.num_nodes(), 3);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.vector(1), &[0.0, 1.0]);
        assert_eq!(e.dot(0, 1), 0.0);
        assert_eq!(e.dot(0, 2), 1.0);
        assert!((e.cosine(2, 2) - 1.0).abs() < 1e-6);
        assert_eq!(e.hadamard(0, 2), vec![1.0, 0.0]);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let e = Embeddings::zeros(2, 4);
        assert_eq!(e.cosine(0, 1), 0.0);
    }

    #[test]
    fn vector_mut_updates() {
        let mut e = Embeddings::zeros(2, 2);
        e.vector_mut(1)[0] = 5.0;
        assert_eq!(e.vector(1), &[5.0, 0.0]);
    }

    #[test]
    fn save_and_load_round_trip() {
        let e = sample();
        let dir = std::env::temp_dir().join("distger_embed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("emb.txt");
        e.save_text(&path).unwrap();
        let loaded = Embeddings::load_text(&path).unwrap();
        assert_eq!(e, loaded);
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn from_node_major_validates_shape() {
        Embeddings::from_node_major(vec![1.0, 2.0, 3.0], 2);
    }
}
