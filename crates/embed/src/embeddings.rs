//! The final node embeddings `φ : V → R^d`.

use distger_graph::NodeId;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes opening the binary embedding store format.
const BINARY_MAGIC: [u8; 4] = *b"DGEB";
/// Current binary store version; bumped on any layout change.
const BINARY_VERSION: u32 = 1;
/// Header size: magic + version (u32) + dim (u32) + nodes (u64) +
/// checksum (u64), all little-endian.
const BINARY_HEADER_LEN: usize = 4 + 4 + 4 + 8 + 8;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Streams `bytes` into an FNV-1a 64-bit state (start from [`FNV_OFFSET`]).
/// The integrity check of the binary store: not cryptographic — it guards
/// against truncation and bit rot, not tampering.
fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Dense node embeddings indexed by original node id.
#[derive(Clone, Debug, PartialEq)]
pub struct Embeddings {
    dim: usize,
    data: Vec<f32>,
}

impl Embeddings {
    /// Creates embeddings from a row-major matrix indexed by node id.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_node_major(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0);
        assert_eq!(data.len() % dim, 0, "data must contain whole rows");
        Self { dim, data }
    }

    /// Creates all-zero embeddings for `n` nodes.
    pub fn zeros(n: usize, dim: usize) -> Self {
        Self {
            dim,
            data: vec![0.0; n * dim],
        }
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded nodes.
    pub fn num_nodes(&self) -> usize {
        self.data.len() / self.dim
    }

    /// The embedding vector of `node`.
    #[inline]
    pub fn vector(&self, node: NodeId) -> &[f32] {
        let i = node as usize * self.dim;
        &self.data[i..i + self.dim]
    }

    /// Mutable access to the embedding vector of `node`.
    #[inline]
    pub fn vector_mut(&mut self, node: NodeId) -> &mut [f32] {
        let i = node as usize * self.dim;
        &mut self.data[i..i + self.dim]
    }

    /// Dot-product similarity `φ(u)·φ(v)` — the link-prediction score used in
    /// §6.4.
    pub fn dot(&self, u: NodeId, v: NodeId) -> f32 {
        self.vector(u)
            .iter()
            .zip(self.vector(v))
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Cosine similarity between two node embeddings (0 when either is zero).
    pub fn cosine(&self, u: NodeId, v: NodeId) -> f32 {
        let nu: f32 = self.vector(u).iter().map(|x| x * x).sum::<f32>().sqrt();
        let nv: f32 = self.vector(v).iter().map(|x| x * x).sum::<f32>().sqrt();
        if nu == 0.0 || nv == 0.0 {
            0.0
        } else {
            self.dot(u, v) / (nu * nv)
        }
    }

    /// Element-wise Hadamard product of two node embeddings, a standard edge
    /// feature for link-prediction classifiers.
    pub fn hadamard(&self, u: NodeId, v: NodeId) -> Vec<f32> {
        self.vector(u)
            .iter()
            .zip(self.vector(v))
            .map(|(a, b)| a * b)
            .collect()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Writes the embeddings in the word2vec text format
    /// (`<n> <dim>` header, then `<node> <v_1> … <v_d>` per line).
    ///
    /// Each row is formatted into a reusable line buffer and written with a
    /// single call, so the per-value cost is formatting alone — not a
    /// `BufWriter` round trip per float.
    pub fn save_text(&self, path: impl AsRef<Path>) -> io::Result<()> {
        use std::fmt::Write as _;
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        let mut line = String::with_capacity(16 * (self.dim + 1));
        writeln!(w, "{} {}", self.num_nodes(), self.dim)?;
        for u in 0..self.num_nodes() {
            line.clear();
            let _ = write!(line, "{u}");
            for x in self.vector(u as NodeId) {
                let _ = write!(line, " {x}");
            }
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        w.flush()
    }

    /// Reads embeddings written by [`Embeddings::save_text`].
    ///
    /// A malformed file — bad header, node id outside the declared range, or
    /// a row with the wrong number of values — is an
    /// [`io::ErrorKind::InvalidData`] error, never a panic. Rows may appear
    /// in any order; nodes without a row keep zero vectors.
    pub fn load_text(path: impl AsRef<Path>) -> io::Result<Self> {
        let reader = BufReader::new(std::fs::File::open(path)?);
        let mut lines = reader.lines();
        let header = lines.next().ok_or_else(|| invalid("empty file"))??;
        let mut parts = header.split_whitespace();
        let n: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid("bad header"))?;
        let dim: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .filter(|&d| d > 0)
            .ok_or_else(|| invalid("bad header"))?;
        let len = n
            .checked_mul(dim)
            .ok_or_else(|| invalid("header overflows"))?;
        let mut data = vec![0.0f32; len];
        for line in lines {
            let line = line?;
            let mut it = line.split_whitespace();
            let node: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .filter(|&u| u < n)
                .ok_or_else(|| invalid("row node id missing or out of range"))?;
            let row = &mut data[node * dim..(node + 1) * dim];
            let mut count = 0;
            for (slot, tok) in row.iter_mut().zip(&mut it) {
                *slot = tok.parse().map_err(|_| invalid("bad value"))?;
                count += 1;
            }
            if count != dim || it.next().is_some() {
                return Err(invalid(format!(
                    "row for node {node} does not have exactly {dim} values"
                )));
            }
        }
        Ok(Self { dim, data })
    }

    /// Writes the embeddings in the versioned binary store format — the hot
    /// path between training and serving (no float formatting/parsing, ~3x
    /// smaller on disk, bit-exact round trip).
    ///
    /// Layout (all little-endian): magic `"DGEB"`, format version (`u32`),
    /// `dim` (`u32`), `num_nodes` (`u64`), FNV-1a64 checksum of the payload
    /// (`u64`), then the node-major `f32` matrix.
    ///
    /// The write is crash-safe: bytes go to a hidden temporary sibling first
    /// and are atomically renamed over `path`, so a crash (or error) partway
    /// through can never leave a torn file under the final name — a
    /// previously saved store survives intact.
    pub fn save_binary(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = temp_sibling(path);
        self.write_binary_to(&tmp)?;
        std::fs::rename(&tmp, path)
    }

    fn write_binary_to(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        w.write_all(&BINARY_MAGIC)?;
        w.write_all(&BINARY_VERSION.to_le_bytes())?;
        let dim = u32::try_from(self.dim).map_err(|_| invalid("dim exceeds u32"))?;
        w.write_all(&dim.to_le_bytes())?;
        w.write_all(&(self.num_nodes() as u64).to_le_bytes())?;
        // One pass to checksum, one to write, both through a chunk buffer so
        // the payload never exists twice in memory.
        let mut checksum = FNV_OFFSET;
        let mut buf = Vec::with_capacity(4 * 16 * 1024);
        for chunk in self.data.chunks(16 * 1024) {
            buf.clear();
            for x in chunk {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            checksum = fnv1a64_update(checksum, &buf);
        }
        w.write_all(&checksum.to_le_bytes())?;
        for chunk in self.data.chunks(16 * 1024) {
            buf.clear();
            for x in chunk {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        w.flush()
    }

    /// Reads embeddings written by [`Embeddings::save_binary`].
    ///
    /// Wrong magic, unknown version, a truncated or oversized payload, and a
    /// checksum mismatch are all [`io::ErrorKind::InvalidData`] errors, never
    /// panics — and a corrupt header cannot trigger a huge allocation,
    /// because the payload is sized by what the file actually contains
    /// before it is compared against the header.
    pub fn load_binary(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut r = BufReader::new(std::fs::File::open(path)?);
        let mut header = [0u8; BINARY_HEADER_LEN];
        r.read_exact(&mut header)
            .map_err(|_| invalid("truncated header"))?;
        if header[..4] != BINARY_MAGIC {
            return Err(invalid("not a DGEB embedding store (bad magic)"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != BINARY_VERSION {
            return Err(invalid(format!(
                "unsupported store version {version} (expected {BINARY_VERSION})"
            )));
        }
        let dim = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        let n = u64::from_le_bytes(header[12..20].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(header[20..28].try_into().unwrap());
        if dim == 0 {
            return Err(invalid("zero dimension"));
        }
        let expected_bytes = n
            .checked_mul(dim)
            .and_then(|c| c.checked_mul(4))
            .ok_or_else(|| invalid("header overflows"))?;
        let mut payload = Vec::new();
        r.read_to_end(&mut payload)?;
        if payload.len() != expected_bytes {
            return Err(invalid(format!(
                "payload is {} bytes, header declares {expected_bytes}",
                payload.len()
            )));
        }
        if fnv1a64_update(FNV_OFFSET, &payload) != checksum {
            return Err(invalid("checksum mismatch — store is corrupt"));
        }
        let data = payload
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        Ok(Self { dim, data })
    }
}

/// The hidden temporary sibling used by [`Embeddings::save_binary`]'s atomic
/// write: same directory (so the final `rename` never crosses a filesystem),
/// name-mangled so neighbouring stores cannot collide.
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "embeddings".to_string());
    path.with_file_name(format!(".{name}.tmp"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Embeddings {
        Embeddings::from_node_major(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], 2)
    }

    #[test]
    fn accessors_and_similarities() {
        let e = sample();
        assert_eq!(e.num_nodes(), 3);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.vector(1), &[0.0, 1.0]);
        assert_eq!(e.dot(0, 1), 0.0);
        assert_eq!(e.dot(0, 2), 1.0);
        assert!((e.cosine(2, 2) - 1.0).abs() < 1e-6);
        assert_eq!(e.hadamard(0, 2), vec![1.0, 0.0]);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let e = Embeddings::zeros(2, 4);
        assert_eq!(e.cosine(0, 1), 0.0);
    }

    #[test]
    fn vector_mut_updates() {
        let mut e = Embeddings::zeros(2, 2);
        e.vector_mut(1)[0] = 5.0;
        assert_eq!(e.vector(1), &[5.0, 0.0]);
    }

    #[test]
    fn save_and_load_round_trip() {
        let e = sample();
        let dir = std::env::temp_dir().join("distger_embed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("emb.txt");
        e.save_text(&path).unwrap();
        let loaded = Embeddings::load_text(&path).unwrap();
        assert_eq!(e, loaded);
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn from_node_major_validates_shape() {
        Embeddings::from_node_major(vec![1.0, 2.0, 3.0], 2);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("distger_embed_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let e =
            Embeddings::from_node_major(vec![1.5, -0.0, f32::MIN_POSITIVE, 3.25e7, -1e-20, 0.1], 3);
        let path = temp_path("emb.bin");
        e.save_binary(&path).unwrap();
        let loaded = Embeddings::load_binary(&path).unwrap();
        // Bit-exact, not just approximately equal (including -0.0).
        for (a, b) in e.data.iter().zip(&loaded.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(loaded.dim(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_binary_write_leaves_previous_store_intact() {
        let old = sample();
        let path = temp_path("emb_torn.bin");
        old.save_binary(&path).unwrap();
        assert!(
            !temp_sibling(&path).exists(),
            "temp sibling must be renamed away after a successful save"
        );
        // Simulate a save killed partway: the partial bytes of a *new* store
        // only ever reach the temp sibling, never the final name.
        let new = Embeddings::from_node_major(vec![9.0; 6], 2);
        let mut torn = Vec::new();
        {
            // Reuse the real writer to produce authentic bytes, then tear.
            let full = temp_path("emb_torn_full.bin");
            new.save_binary(&full).unwrap();
            torn.extend_from_slice(&std::fs::read(&full).unwrap());
            std::fs::remove_file(&full).ok();
        }
        torn.truncate(torn.len() / 2);
        std::fs::write(temp_sibling(&path), &torn).unwrap();
        // The store under the final name still loads as the old embeddings.
        assert_eq!(Embeddings::load_binary(&path).unwrap(), old);
        // A later successful save replaces both the stale temp and the file.
        new.save_binary(&path).unwrap();
        assert_eq!(Embeddings::load_binary(&path).unwrap(), new);
        assert!(!temp_sibling(&path).exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_load_rejects_corruption_without_panicking() {
        let e = sample();
        let path = temp_path("emb_corrupt.bin");
        e.save_binary(&path).unwrap();
        let original = std::fs::read(&path).unwrap();

        // Flipped payload byte → checksum mismatch.
        let mut flipped = original.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let err = Embeddings::load_binary(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncated payload → declared/actual size mismatch.
        std::fs::write(&path, &original[..original.len() - 3]).unwrap();
        assert_eq!(
            Embeddings::load_binary(&path).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );

        // Truncated header.
        std::fs::write(&path, &original[..10]).unwrap();
        assert_eq!(
            Embeddings::load_binary(&path).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );

        // Wrong magic.
        let mut bad_magic = original.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(Embeddings::load_binary(&path)
            .unwrap_err()
            .to_string()
            .contains("magic"));

        // Unknown version.
        let mut bad_version = original.clone();
        bad_version[4] = 0xFF;
        std::fs::write(&path, &bad_version).unwrap();
        assert!(Embeddings::load_binary(&path)
            .unwrap_err()
            .to_string()
            .contains("version"));

        // A header declaring an absurd node count must error cheaply (the
        // payload on disk is tiny), not allocate or panic.
        let mut huge = original.clone();
        huge[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &huge).unwrap();
        assert_eq!(
            Embeddings::load_binary(&path).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_load_rejects_malformed_rows_without_panicking() {
        let path = temp_path("emb_bad.txt");
        // Node id beyond the declared count used to index out of bounds.
        std::fs::write(&path, "2 2\n5 1.0 2.0\n").unwrap();
        assert_eq!(
            Embeddings::load_text(&path).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        // Too many values in a row used to index out of bounds.
        std::fs::write(&path, "2 2\n0 1.0 2.0 3.0\n").unwrap();
        assert!(Embeddings::load_text(&path)
            .unwrap_err()
            .to_string()
            .contains("exactly 2 values"));
        // Too few values is now a hard error too (silent zero-fill hid
        // truncation).
        std::fs::write(&path, "2 2\n0 1.0\n").unwrap();
        assert!(Embeddings::load_text(&path).is_err());
        // Unparseable value.
        std::fs::write(&path, "2 2\n0 1.0 abc\n").unwrap();
        assert!(Embeddings::load_text(&path).is_err());
        // Bad headers.
        for bad in ["", "2", "x 2", "2 0"] {
            std::fs::write(&path, format!("{bad}\n")).unwrap();
            assert!(Embeddings::load_text(&path).is_err(), "accepted {bad:?}");
        }
        std::fs::remove_file(path).ok();
    }
}
