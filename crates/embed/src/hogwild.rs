//! Lock-free shared embedding matrices (Hogwild-style).
//!
//! The original word2vec parallelizes SGD with Hogwild \[38\]: threads update
//! the shared parameter matrices without synchronization and tolerate the
//! (rare, benign) races. All three trainers in this crate follow that model
//! within a machine, so the matrices must be mutably aliasable across
//! threads. [`HogwildMatrix`] wraps the storage in an `UnsafeCell` and exposes
//! unsafe row accessors whose contract documents the Hogwild assumption.

use std::cell::UnsafeCell;

/// A dense `rows × dim` matrix of `f32` that permits unsynchronized
/// concurrent access from multiple threads.
///
/// # Safety model
/// Concurrent `row_mut` calls may race on the same row; per Hogwild the
/// updates are small, sparse and idempotent-enough that the training still
/// converges. Torn reads of individual `f32`s cannot cause undefined
/// behaviour observable at the algorithm level (values are only ever used in
/// arithmetic), but Rust still requires `unsafe` to express the aliasing —
/// callers must not hold two mutable references to the same row on the same
/// thread.
pub struct HogwildMatrix {
    data: UnsafeCell<Vec<f32>>,
    rows: usize,
    dim: usize,
}

// SAFETY: see the type-level documentation; races are accepted by design.
unsafe impl Sync for HogwildMatrix {}

impl HogwildMatrix {
    /// Creates a zero-initialized matrix.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            data: UnsafeCell::new(vec![0.0; rows * dim]),
            rows,
            dim,
        }
    }

    /// Creates a matrix initialized uniformly in `[-0.5/dim, 0.5/dim)`, the
    /// word2vec initialization for the input matrix.
    pub fn random_init(rows: usize, dim: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let scale = 1.0 / dim as f32;
        let data: Vec<f32> = (0..rows * dim)
            .map(|_| ((next() >> 11) as f32 / (1u64 << 53) as f32 - 0.5) * scale)
            .collect();
        Self {
            data: UnsafeCell::new(data),
            rows,
            dim,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Immutable view of a row.
    ///
    /// # Safety
    /// The caller must accept that another thread may be concurrently writing
    /// the same row (Hogwild); the returned slice must not outlive `self`.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        let base = (*self.data.get()).as_ptr();
        std::slice::from_raw_parts(base.add(r * self.dim), self.dim)
    }

    /// Mutable view of a row.
    ///
    /// # Safety
    /// Same contract as [`HogwildMatrix::row`]; additionally the caller must
    /// not create two overlapping mutable row views on the same thread.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn row_mut(&self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let base = (*self.data.get()).as_mut_ptr();
        std::slice::from_raw_parts_mut(base.add(r * self.dim), self.dim)
    }

    /// Copies a row into `dst` (safe snapshot; may observe a torn update).
    pub fn copy_row_into(&self, r: usize, dst: &mut [f32]) {
        // SAFETY: read-only snapshot under the Hogwild contract.
        let src = unsafe { self.row(r) };
        dst.copy_from_slice(src);
    }

    /// Overwrites a row from `src`.
    pub fn store_row(&self, r: usize, src: &[f32]) {
        // SAFETY: single logical writer per row at write-back time (callers
        // partition rows or accept Hogwild races).
        let dst = unsafe { self.row_mut(r) };
        dst.copy_from_slice(src);
    }

    /// Consumes the matrix and returns the underlying storage (row-major).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_inner()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows * self.dim * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_dimensions() {
        let m = HogwildMatrix::zeros(4, 8);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.memory_bytes(), 4 * 8 * 4);
        let row = unsafe { m.row(2) };
        assert!(row.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn random_init_is_bounded_and_seeded() {
        let a = HogwildMatrix::random_init(10, 16, 7);
        let b = HogwildMatrix::random_init(10, 16, 7);
        let c = HogwildMatrix::random_init(10, 16, 8);
        let bound = 0.5 / 16.0 + 1e-6;
        for r in 0..10 {
            let ra = unsafe { a.row(r) };
            let rb = unsafe { b.row(r) };
            let rc = unsafe { c.row(r) };
            assert_eq!(ra, rb, "same seed must give the same init");
            assert!(ra.iter().any(|&x| x != 0.0));
            assert!(ra.iter().all(|&x| x.abs() <= bound));
            assert_ne!(ra, rc, "different seeds should differ");
        }
    }

    #[test]
    fn row_round_trip() {
        let m = HogwildMatrix::zeros(3, 4);
        m.store_row(1, &[1.0, 2.0, 3.0, 4.0]);
        let mut buf = [0.0f32; 4];
        m.copy_row_into(1, &mut buf);
        assert_eq!(buf, [1.0, 2.0, 3.0, 4.0]);
        let v = m.into_vec();
        assert_eq!(&v[4..8], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concurrent_updates_do_not_crash() {
        let m = HogwildMatrix::zeros(8, 16);
        std::thread::scope(|s| {
            for t in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..1000 {
                        let r = (t + i) % 8;
                        let row = unsafe { m.row_mut(r) };
                        for x in row.iter_mut() {
                            *x += 1.0;
                        }
                    }
                });
            }
        });
        // All entries must have been incremented a plausible number of times
        // (exact counts are racy by design).
        let v = m.into_vec();
        assert!(v.iter().all(|&x| x > 0.0));
    }
}
