//! Embedding learner for the DistGER reproduction (the *learner* of Figure 1).
//!
//! Three Skip-Gram-with-negative-sampling trainers are provided, mirroring
//! Figure 3 of the paper:
//!
//! * [`TrainerKind::Hogwild`] — the classic word2vec/SGNS scheme: threads
//!   update the shared matrices lock-free, one fresh negative set per
//!   (target, context) pair (Figure 3(a)).
//! * [`TrainerKind::Pword2vec`] — Intel's Pword2vec: the negative set is
//!   shared by all context nodes of a window, converting level-1 into
//!   level-3-style batched updates (Figure 3(b)).
//! * [`TrainerKind::Dsgl`] — the paper's DSGL (§4.2): frequency-ordered
//!   global matrices, per-thread local context/negative buffers
//!   (Improvement-I), multi-window shared negative samples across several
//!   walks assigned to the same thread (Improvement-II).
//!
//! Distributed training partitions the corpus across machines, each holding a
//! model replica, and synchronizes parameters either fully or with the
//! hotness-block mechanism of Improvement-III ([`SyncStrategy`]).

pub mod dist;
pub mod dsgl;
pub mod embeddings;
pub mod hogwild;
pub mod negative;
pub mod pword2vec;
pub mod sgns;
pub mod sync;
pub mod trainer;
pub mod vocab;

pub use dist::{train_distributed_over, train_distributed_over_loopback};
pub use embeddings::Embeddings;
pub use sync::SyncStrategy;
pub use trainer::{
    train_distributed, train_distributed_supervised, TrainStats, TrainerConfig, TrainerKind,
};
pub use vocab::Vocab;

/// Re-exports of the fault-tolerance knobs — and the transport layer — so
/// trainer callers can configure [`TrainerConfig`] and drive
/// [`dist::train_distributed_over`] without depending on `distger-cluster`
/// directly.
pub use distger_cluster::{
    ControlChannel, FaultInjector, FaultPlan, InMemoryTransport, RecoveryExhausted, RecoveryPolicy,
    SocketTransport, TransportKind,
};
