//! Negative sampling from the unigram^0.75 distribution.
//!
//! Skip-Gram with negative sampling draws `K` negative nodes per positive
//! pair from `P_n(u) ∝ freq(u)^{0.75}` (§2.1, Eq. 2). The classic word2vec
//! implementation materializes this distribution as a large lookup table,
//! which is what the trainers here use; the table indexes *ranks* of the
//! frequency-ordered vocabulary so that hot negatives touch hot cache lines.

use crate::vocab::Vocab;
use distger_walks::Corpus;

/// Unigram^0.75 sampling table over vocabulary ranks.
#[derive(Clone, Debug)]
pub struct NegativeTable {
    table: Vec<u32>,
}

impl NegativeTable {
    /// Default table size (the original word2vec uses 10⁸; scaled down to the
    /// corpus sizes of this reproduction).
    pub const DEFAULT_SIZE: usize = 1 << 20;

    /// Builds the table from a vocabulary with the default size.
    pub fn from_vocab(vocab: &Vocab) -> Self {
        Self::with_size(vocab, Self::DEFAULT_SIZE)
    }

    /// Builds the table from corpus frequencies.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        Self::from_vocab(&Vocab::from_corpus(corpus))
    }

    /// Builds a table of `size` entries. Ranks with zero frequency are never
    /// sampled. Falls back to uniform sampling over non-empty ranks when the
    /// corpus is empty.
    pub fn with_size(vocab: &Vocab, size: usize) -> Self {
        assert!(size > 0);
        let freqs = vocab.frequencies();
        let power = 0.75f64;
        let total: f64 = freqs.iter().map(|&f| (f as f64).powf(power)).sum();
        let mut table = Vec::with_capacity(size);
        if total <= 0.0 || freqs.is_empty() {
            // Degenerate corpus: sample uniformly over all ranks (or rank 0).
            let n = freqs.len().max(1) as u32;
            for i in 0..size {
                table.push((i as u64 * n as u64 / size as u64) as u32);
            }
            return Self { table };
        }
        let mut rank = 0usize;
        let mut cumulative = (freqs[0] as f64).powf(power) / total;
        for i in 0..size {
            table.push(rank as u32);
            let position = (i + 1) as f64 / size as f64;
            while position > cumulative && rank + 1 < freqs.len() && freqs[rank + 1] > 0 {
                rank += 1;
                cumulative += (freqs[rank] as f64).powf(power) / total;
            }
        }
        Self { table }
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a successfully built table).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Samples a rank given a uniformly random `u64`.
    #[inline]
    pub fn sample(&self, random: u64) -> u32 {
        self.table[(random % self.table.len() as u64) as usize]
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_ranks_are_sampled_more() {
        // rank frequencies 100, 10, 1, 0
        let vocab = Vocab::from_frequencies(&[1, 100, 10, 0]);
        let table = NegativeTable::with_size(&vocab, 10_000);
        let mut counts = [0usize; 4];
        for i in 0..table.len() {
            counts[table.table[i] as usize] += 1;
        }
        assert!(counts[0] > counts[1], "rank 0 (freq 100) most frequent");
        assert!(counts[1] > counts[2], "rank 1 (freq 10) more than rank 2");
        assert_eq!(counts[3], 0, "zero-frequency rank never sampled");
    }

    #[test]
    fn sample_returns_valid_ranks() {
        let vocab = Vocab::from_frequencies(&[5, 3, 2, 2, 1]);
        let table = NegativeTable::with_size(&vocab, 1_000);
        for r in 0..5_000u64 {
            let rank = table.sample(r.wrapping_mul(0x9E3779B97F4A7C15));
            assert!((rank as usize) < 5);
        }
    }

    #[test]
    fn empty_corpus_falls_back_to_uniform() {
        let vocab = Vocab::from_frequencies(&[0, 0, 0]);
        let table = NegativeTable::with_size(&vocab, 300);
        assert_eq!(table.len(), 300);
        for i in 0..300u64 {
            assert!(table.sample(i) < 3);
        }
    }

    #[test]
    fn power_smoothing_flattens_the_distribution() {
        // With smoothing 0.75, the ratio of samples between freq 1000 and
        // freq 1 should be far below 1000.
        let vocab = Vocab::from_frequencies(&[1000, 1]);
        let table = NegativeTable::with_size(&vocab, 100_000);
        let hot = table.table.iter().filter(|&&r| r == 0).count() as f64;
        let cold = table.table.iter().filter(|&&r| r == 1).count() as f64;
        let ratio = hot / cold.max(1.0);
        assert!(
            ratio < 400.0,
            "smoothed ratio {ratio} should be well below 1000"
        );
        assert!(ratio > 20.0);
    }
}
