//! Pword2vec-style trainer: per-window shared negative samples (Figure 3(b)).
//!
//! Intel's Pword2vec \[22\] observes that within one sliding window the target
//! node is scored against every context node, so a single negative set can be
//! shared by all of them; this turns many level-1 (vector·vector) operations
//! into one small matrix-matrix product. The batching here keeps the same
//! arithmetic (explicit loops rather than a BLAS call) but reproduces the
//! sharing pattern, which is what DSGL's multi-window mechanism then extends.

use crate::sgns::{apply_input_grad, sgns_pair_update, TrainContext};
use distger_walks::rng::SplitMix64;

/// Trains one thread's share of walks with per-window shared negatives.
/// Returns the number of (target, context) pairs processed.
#[allow(clippy::needless_range_loop)]
pub fn train_walks_pword2vec(ctx: &TrainContext<'_>, walks: &[Vec<u32>], thread_id: u64) -> u64 {
    let dim = ctx.phi_in.dim();
    let mut rng = SplitMix64::for_walker(ctx.seed ^ 0x90d2_7ec1, thread_id);
    let mut input_grad = vec![0.0f32; dim];
    let mut negatives = Vec::with_capacity(ctx.negatives);
    let mut pairs = 0u64;

    for walk in walks {
        for (j, &target) in walk.iter().enumerate() {
            // One negative set for the whole window.
            negatives.clear();
            let mut attempts = 0;
            while negatives.len() < ctx.negatives && attempts < 4 * ctx.negatives {
                attempts += 1;
                let neg = ctx.negatives_table.sample(rng.next_u64());
                if neg != target {
                    negatives.push(neg);
                }
            }
            let lo = j.saturating_sub(ctx.window);
            let hi = (j + ctx.window).min(walk.len() - 1);
            for c in lo..=hi {
                if c == j {
                    continue;
                }
                let context = walk[c];
                // SAFETY: Hogwild contract.
                let input = unsafe { ctx.phi_in.row_mut(context as usize) };
                input_grad.iter_mut().for_each(|x| *x = 0.0);
                {
                    let out = unsafe { ctx.phi_out.row_mut(target as usize) };
                    sgns_pair_update(
                        ctx.sigmoid,
                        input,
                        out,
                        1.0,
                        ctx.learning_rate,
                        &mut input_grad,
                    );
                }
                for &neg in &negatives {
                    let out = unsafe { ctx.phi_out.row_mut(neg as usize) };
                    sgns_pair_update(
                        ctx.sigmoid,
                        input,
                        out,
                        0.0,
                        ctx.learning_rate,
                        &mut input_grad,
                    );
                }
                apply_input_grad(input, &input_grad);
                pairs += 1;
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hogwild::HogwildMatrix;
    use crate::negative::NegativeTable;
    use crate::sgns::SigmoidTable;
    use crate::vocab::Vocab;

    #[test]
    fn pword2vec_training_separates_two_cliques() {
        let walks: Vec<Vec<u32>> = (0..60)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2, 0, 2, 1, 0, 1, 2, 0]
                } else {
                    vec![3, 4, 5, 3, 5, 4, 3, 4, 5, 3]
                }
            })
            .collect();
        let vocab = Vocab::from_frequencies(&[100; 6]);
        let table = NegativeTable::with_size(&vocab, 1 << 12);
        let sig = SigmoidTable::new();
        let dim = 16;
        let phi_in = HogwildMatrix::random_init(6, dim, 2);
        let phi_out = HogwildMatrix::zeros(6, dim);
        let ctx = TrainContext {
            phi_in: &phi_in,
            phi_out: &phi_out,
            negatives_table: &table,
            sigmoid: &sig,
            window: 3,
            negatives: 4,
            learning_rate: 0.05,
            seed: 9,
        };
        let mut pairs = 0;
        for _ in 0..5 {
            pairs += train_walks_pword2vec(&ctx, &walks, 0);
        }
        assert!(pairs > 0);
        let dot = |a: usize, b: usize| -> f32 {
            let ra = unsafe { phi_in.row(a) };
            let rb = unsafe { phi_in.row(b) };
            ra.iter().zip(rb).map(|(x, y)| x * y).sum()
        };
        let intra = (dot(0, 1) + dot(1, 2) + dot(3, 4) + dot(4, 5)) / 4.0;
        let inter = (dot(0, 3) + dot(1, 4) + dot(2, 5)) / 3.0;
        assert!(intra > inter, "intra {intra} must exceed inter {inter}");
    }

    #[test]
    fn processes_expected_number_of_pairs() {
        // A single walk of 5 nodes with window 1: interior nodes have two
        // context pairs, the ends one each → 8 pairs.
        let walks = vec![vec![0u32, 1, 2, 3, 4]];
        let vocab = Vocab::from_frequencies(&[10; 5]);
        let table = NegativeTable::with_size(&vocab, 256);
        let sig = SigmoidTable::new();
        let phi_in = HogwildMatrix::random_init(5, 8, 1);
        let phi_out = HogwildMatrix::zeros(5, 8);
        let ctx = TrainContext {
            phi_in: &phi_in,
            phi_out: &phi_out,
            negatives_table: &table,
            sigmoid: &sig,
            window: 1,
            negatives: 2,
            learning_rate: 0.025,
            seed: 0,
        };
        assert_eq!(train_walks_pword2vec(&ctx, &walks, 0), 8);
    }
}
