//! Skip-Gram-with-negative-sampling primitives and the Hogwild baseline
//! trainer (Figure 3(a)).
//!
//! All trainers share the same SGD kernel: for a (context, target) pair the
//! context vector `φ_in(context)` is trained against the target vector
//! `φ_out(target)` with label 1 and against `K` negative vectors with label 0
//! (Eq. 2). The trainers differ only in *which* negatives are shared across
//! *which* updates and in how the vectors are staged in memory.

use crate::hogwild::HogwildMatrix;
use crate::negative::NegativeTable;
use distger_walks::rng::SplitMix64;

/// Precomputed sigmoid lookup table (the `expTable` of word2vec).
#[derive(Clone, Debug)]
pub struct SigmoidTable {
    table: Vec<f32>,
    max_exp: f32,
}

impl SigmoidTable {
    const SIZE: usize = 1024;

    /// Builds a table covering `[-max_exp, max_exp]` (word2vec uses 6).
    pub fn new() -> Self {
        let max_exp = 6.0f32;
        let table = (0..Self::SIZE)
            .map(|i| {
                let x = (i as f32 / Self::SIZE as f32 * 2.0 - 1.0) * max_exp;
                1.0 / (1.0 + (-x).exp())
            })
            .collect();
        Self { table, max_exp }
    }

    /// σ(x), clamped lookups outside `[-max_exp, max_exp]`.
    #[inline]
    pub fn sigmoid(&self, x: f32) -> f32 {
        if x >= self.max_exp {
            1.0
        } else if x <= -self.max_exp {
            0.0
        } else {
            let idx = ((x / self.max_exp + 1.0) * 0.5 * (Self::SIZE as f32 - 1.0)) as usize;
            self.table[idx]
        }
    }
}

impl Default for SigmoidTable {
    fn default() -> Self {
        Self::new()
    }
}

/// One SGNS pair update: trains `input` against `output` with `label`,
/// accumulating the input-side gradient into `input_grad` (applied by the
/// caller once per positive/negative group) and updating `output` in place.
#[inline]
pub fn sgns_pair_update(
    sig: &SigmoidTable,
    input: &[f32],
    output: &mut [f32],
    label: f32,
    lr: f32,
    input_grad: &mut [f32],
) {
    debug_assert_eq!(input.len(), output.len());
    debug_assert_eq!(input.len(), input_grad.len());
    let mut dot = 0.0f32;
    for i in 0..input.len() {
        dot += input[i] * output[i];
    }
    let g = (label - sig.sigmoid(dot)) * lr;
    for i in 0..input.len() {
        input_grad[i] += g * output[i];
        output[i] += g * input[i];
    }
}

/// Applies an accumulated input gradient.
#[inline]
pub fn apply_input_grad(input: &mut [f32], input_grad: &[f32]) {
    for i in 0..input.len() {
        input[i] += input_grad[i];
    }
}

/// Shared parameters of a single training pass over a set of walks.
pub struct TrainContext<'a> {
    /// Input (context-node) matrix, rank-indexed.
    pub phi_in: &'a HogwildMatrix,
    /// Output (target/negative) matrix, rank-indexed.
    pub phi_out: &'a HogwildMatrix,
    /// Negative-sampling table over ranks.
    pub negatives_table: &'a NegativeTable,
    /// Sigmoid lookup table.
    pub sigmoid: &'a SigmoidTable,
    /// Context window size `w`.
    pub window: usize,
    /// Number of negative samples `K`.
    pub negatives: usize,
    /// Learning rate for this pass.
    pub learning_rate: f32,
    /// Seed for negative sampling and window jitter.
    pub seed: u64,
}

/// Trains one thread's share of walks with the plain SGNS/Hogwild scheme:
/// a fresh negative set per (target, context) pair. Returns the number of
/// (target, context) pairs processed.
#[allow(clippy::needless_range_loop)]
pub fn train_walks_hogwild(ctx: &TrainContext<'_>, walks: &[Vec<u32>], thread_id: u64) -> u64 {
    let dim = ctx.phi_in.dim();
    let mut rng = SplitMix64::for_walker(ctx.seed ^ 0x5e15_0a11, thread_id);
    let mut input_grad = vec![0.0f32; dim];
    let mut pairs = 0u64;

    for walk in walks {
        for (j, &target) in walk.iter().enumerate() {
            let lo = j.saturating_sub(ctx.window);
            let hi = (j + ctx.window).min(walk.len() - 1);
            for c in lo..=hi {
                if c == j {
                    continue;
                }
                let context = walk[c];
                // SAFETY: Hogwild contract — concurrent racy updates accepted.
                let input = unsafe { ctx.phi_in.row_mut(context as usize) };
                input_grad.iter_mut().for_each(|x| *x = 0.0);
                // Positive sample.
                {
                    let out = unsafe { ctx.phi_out.row_mut(target as usize) };
                    sgns_pair_update(
                        ctx.sigmoid,
                        input,
                        out,
                        1.0,
                        ctx.learning_rate,
                        &mut input_grad,
                    );
                }
                // Fresh negatives for every pair (this is what Pword2vec and
                // DSGL improve on).
                for _ in 0..ctx.negatives {
                    let neg = ctx.negatives_table.sample(rng.next_u64());
                    if neg == target {
                        continue;
                    }
                    let out = unsafe { ctx.phi_out.row_mut(neg as usize) };
                    sgns_pair_update(
                        ctx.sigmoid,
                        input,
                        out,
                        0.0,
                        ctx.learning_rate,
                        &mut input_grad,
                    );
                }
                apply_input_grad(input, &input_grad);
                pairs += 1;
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    #[test]
    fn sigmoid_table_matches_exact_sigmoid() {
        let sig = SigmoidTable::new();
        for &x in &[-5.9f32, -2.0, -0.5, 0.0, 0.5, 2.0, 5.9] {
            let exact = 1.0 / (1.0 + (-x).exp());
            assert!(
                (sig.sigmoid(x) - exact).abs() < 0.01,
                "sigmoid({x}) = {} vs exact {exact}",
                sig.sigmoid(x)
            );
        }
        assert_eq!(sig.sigmoid(100.0), 1.0);
        assert_eq!(sig.sigmoid(-100.0), 0.0);
    }

    #[test]
    fn pair_update_moves_positive_pair_closer() {
        let sig = SigmoidTable::new();
        let input = vec![0.1f32, -0.2, 0.3, 0.05];
        let mut output = vec![-0.1f32, 0.2, 0.1, -0.3];
        let mut grad = vec![0.0f32; 4];
        let before: f32 = input.iter().zip(&output).map(|(a, b)| a * b).sum();
        let mut inp = input.clone();
        for _ in 0..200 {
            grad.iter_mut().for_each(|x| *x = 0.0);
            sgns_pair_update(&sig, &inp, &mut output, 1.0, 0.1, &mut grad);
            apply_input_grad(&mut inp, &grad);
        }
        let after: f32 = inp.iter().zip(&output).map(|(a, b)| a * b).sum();
        assert!(after > before, "positive pair similarity must increase");
        assert!(after > 1.0);
    }

    #[test]
    fn pair_update_pushes_negative_pair_apart() {
        let sig = SigmoidTable::new();
        let mut input = vec![0.4f32, 0.4, 0.4, 0.4];
        let mut output = vec![0.4f32, 0.4, 0.4, 0.4];
        let mut grad = vec![0.0f32; 4];
        for _ in 0..200 {
            grad.iter_mut().for_each(|x| *x = 0.0);
            sgns_pair_update(&sig, &input, &mut output, 0.0, 0.1, &mut grad);
            apply_input_grad(&mut input, &grad);
        }
        let after: f32 = input.iter().zip(&output).map(|(a, b)| a * b).sum();
        assert!(
            after < 0.1,
            "negative pair similarity must shrink, got {after}"
        );
    }

    #[test]
    fn hogwild_training_separates_two_cliques() {
        // Two "communities" of ranks {0,1,2} and {3,4,5}; walks stay inside a
        // community, so after training, intra-community similarity should
        // exceed inter-community similarity.
        let walks: Vec<Vec<u32>> = (0..60)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2, 0, 2, 1, 0, 1, 2, 0]
                } else {
                    vec![3, 4, 5, 3, 5, 4, 3, 4, 5, 3]
                }
            })
            .collect();
        let freqs = vec![100u64; 6];
        let vocab = Vocab::from_frequencies(&freqs);
        let table = NegativeTable::with_size(&vocab, 1 << 12);
        let sig = SigmoidTable::new();
        let dim = 16;
        let phi_in = HogwildMatrix::random_init(6, dim, 1);
        let phi_out = HogwildMatrix::zeros(6, dim);
        let ctx = TrainContext {
            phi_in: &phi_in,
            phi_out: &phi_out,
            negatives_table: &table,
            sigmoid: &sig,
            window: 3,
            negatives: 4,
            learning_rate: 0.05,
            seed: 3,
        };
        for _ in 0..5 {
            train_walks_hogwild(&ctx, &walks, 0);
        }
        let dot = |a: usize, b: usize| -> f32 {
            let ra = unsafe { phi_in.row(a) };
            let rb = unsafe { phi_in.row(b) };
            ra.iter().zip(rb).map(|(x, y)| x * y).sum()
        };
        let intra = (dot(0, 1) + dot(1, 2) + dot(3, 4) + dot(4, 5)) / 4.0;
        let inter = (dot(0, 3) + dot(1, 4) + dot(2, 5)) / 3.0;
        assert!(
            intra > inter,
            "intra-community similarity {intra} must exceed inter {inter}"
        );
    }
}
