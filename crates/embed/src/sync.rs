//! Cross-machine parameter synchronization (§4.2, Improvement-III).
//!
//! Each machine trains on its corpus shard against a private model replica
//! and periodically synchronizes parameters with the other machines. Two
//! strategies are modelled:
//!
//! * [`SyncStrategy::Full`] — every row of both matrices is averaged across
//!   machines, costing `O(|V| · d · m)` traffic per synchronization;
//! * [`SyncStrategy::HotnessBlock`] — the rank-ordered matrices are divided
//!   into blocks of equal corpus frequency ("hotness blocks") and one row is
//!   sampled per block, so hot nodes — which are updated most — are
//!   synchronized most often, costing only `O(ocn_max · d · m)`.

use crate::hogwild::HogwildMatrix;
use crate::vocab::Vocab;
use distger_cluster::CommStats;
use distger_walks::rng::SplitMix64;

/// Parameter synchronization strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncStrategy {
    /// Average every row of both matrices across all machines.
    Full,
    /// Hotness-block sampling: one row per equal-frequency block.
    HotnessBlock,
}

/// One machine's model replica (`φ_in`, `φ_out`).
pub struct ModelReplica {
    /// Input (context) matrix, rank-indexed.
    pub phi_in: HogwildMatrix,
    /// Output (target/negative) matrix, rank-indexed.
    pub phi_out: HogwildMatrix,
}

impl ModelReplica {
    /// Creates a replica with word2vec initialization; all machines use the
    /// same seed so the replicas start identical.
    pub fn new(rows: usize, dim: usize, seed: u64) -> Self {
        Self {
            phi_in: HogwildMatrix::random_init(rows, dim, seed),
            phi_out: HogwildMatrix::zeros(rows, dim),
        }
    }

    /// Memory footprint in bytes of both matrices.
    pub fn memory_bytes(&self) -> usize {
        self.phi_in.memory_bytes() + self.phi_out.memory_bytes()
    }
}

/// Selects the ranks to synchronize under `strategy`.
pub fn select_sync_ranks(strategy: SyncStrategy, vocab: &Vocab, rng: &mut SplitMix64) -> Vec<u32> {
    match strategy {
        SyncStrategy::Full => (0..vocab.len() as u32).collect(),
        SyncStrategy::HotnessBlock => vocab
            .hotness_blocks()
            .into_iter()
            .filter(|&(start, _)| vocab.freq_at(start) > 0)
            .map(|(start, end)| start + (rng.next_bounded((end - start) as usize) as u32))
            .collect(),
    }
}

/// Averages the selected rows of both matrices across all replicas and writes
/// the averaged values back to every replica. Records the induced traffic in
/// `comm`: every synchronized row travels from each machine to the reducer and
/// back, i.e. `2 · m` messages of `d · 4` bytes per matrix row.
///
/// Takes the replicas by shared reference: [`HogwildMatrix`] rows are
/// interior-mutable by design, which lets the trainer's pooled coordinator
/// synchronize while its workers still hold `&` borrows of the replica slice
/// (the pool barrier guarantees the phases never overlap).
pub fn synchronize_replicas(replicas: &[ModelReplica], ranks: &[u32], comm: &mut CommStats) {
    let m = replicas.len();
    if m <= 1 || ranks.is_empty() {
        return;
    }
    let dim = replicas[0].phi_in.dim();
    let mut buf = vec![0.0f32; dim];
    let mut avg = vec![0.0f32; dim];
    for &rank in ranks {
        for matrix_idx in 0..2 {
            avg.iter_mut().for_each(|x| *x = 0.0);
            for replica in replicas.iter() {
                let matrix = if matrix_idx == 0 {
                    &replica.phi_in
                } else {
                    &replica.phi_out
                };
                matrix.copy_row_into(rank as usize, &mut buf);
                for (a, b) in avg.iter_mut().zip(&buf) {
                    *a += b;
                }
            }
            for a in avg.iter_mut() {
                *a /= m as f32;
            }
            for replica in replicas.iter() {
                let matrix = if matrix_idx == 0 {
                    &replica.phi_in
                } else {
                    &replica.phi_out
                };
                matrix.store_row(rank as usize, &avg);
            }
            // Traffic: each machine uploads and downloads the row once.
            for _ in 0..(2 * m) {
                comm.record_message(dim * std::mem::size_of::<f32>());
            }
        }
    }
}

/// Averages `φ_in` across replicas into a single node-major matrix ordered by
/// rank (the final model gather; not counted as synchronization traffic).
pub fn gather_phi_in(replicas: &[ModelReplica]) -> Vec<f32> {
    assert!(!replicas.is_empty());
    let rows = replicas[0].phi_in.rows();
    let dim = replicas[0].phi_in.dim();
    let mut out = vec![0.0f32; rows * dim];
    let mut buf = vec![0.0f32; dim];
    for replica in replicas {
        for r in 0..rows {
            replica.phi_in.copy_row_into(r, &mut buf);
            for (o, b) in out[r * dim..(r + 1) * dim].iter_mut().zip(&buf) {
                *o += b;
            }
        }
    }
    let m = replicas.len() as f32;
    for x in out.iter_mut() {
        *x /= m;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocab {
        Vocab::from_frequencies(&[9, 9, 5, 5, 5, 1, 0])
    }

    #[test]
    fn full_sync_selects_every_rank() {
        let v = vocab();
        let mut rng = SplitMix64::new(1);
        let ranks = select_sync_ranks(SyncStrategy::Full, &v, &mut rng);
        assert_eq!(ranks.len(), 7);
    }

    #[test]
    fn hotness_sync_selects_one_rank_per_nonzero_block() {
        let v = vocab();
        let mut rng = SplitMix64::new(1);
        let ranks = select_sync_ranks(SyncStrategy::HotnessBlock, &v, &mut rng);
        // Blocks: freq 9 (ranks 0-1), freq 5 (ranks 2-4), freq 1 (rank 5),
        // freq 0 (rank 6, excluded) → 3 sampled ranks.
        assert_eq!(ranks.len(), 3);
        assert!(ranks[0] < 2);
        assert!((2..5).contains(&ranks[1]));
        assert_eq!(ranks[2], 5);
    }

    #[test]
    fn synchronization_averages_rows_and_counts_traffic() {
        let replicas = vec![ModelReplica::new(4, 2, 7), ModelReplica::new(4, 2, 7)];
        replicas[0].phi_in.store_row(1, &[1.0, 3.0]);
        replicas[1].phi_in.store_row(1, &[3.0, 5.0]);
        let mut comm = CommStats::new();
        synchronize_replicas(&replicas, &[1], &mut comm);
        let mut buf = [0.0f32; 2];
        replicas[0].phi_in.copy_row_into(1, &mut buf);
        assert_eq!(buf, [2.0, 4.0]);
        replicas[1].phi_in.copy_row_into(1, &mut buf);
        assert_eq!(buf, [2.0, 4.0]);
        // 1 rank × 2 matrices × 2 machines × 2 directions = 8 messages.
        assert_eq!(comm.messages, 8);
        assert_eq!(comm.bytes, 8 * 8);
    }

    #[test]
    fn single_machine_sync_is_a_no_op() {
        let replicas = vec![ModelReplica::new(3, 2, 1)];
        let mut comm = CommStats::new();
        synchronize_replicas(&replicas, &[0, 1, 2], &mut comm);
        assert_eq!(comm.messages, 0);
    }

    #[test]
    fn hotness_traffic_is_much_smaller_than_full() {
        // 1000 nodes whose frequencies take only 10 distinct values.
        let freqs: Vec<u64> = (0..1000u64).map(|i| 1 + (i % 10)).collect();
        let v = Vocab::from_frequencies(&freqs);
        let mut rng = SplitMix64::new(3);
        let full = select_sync_ranks(SyncStrategy::Full, &v, &mut rng).len();
        let hot = select_sync_ranks(SyncStrategy::HotnessBlock, &v, &mut rng).len();
        assert_eq!(full, 1000);
        assert_eq!(hot, 10);
    }

    #[test]
    fn gather_averages_replicas() {
        let replicas = vec![ModelReplica::new(2, 2, 1), ModelReplica::new(2, 2, 1)];
        replicas[0].phi_in.store_row(0, &[2.0, 0.0]);
        replicas[1].phi_in.store_row(0, &[4.0, 2.0]);
        let gathered = gather_phi_in(&replicas);
        assert_eq!(&gathered[0..2], &[3.0, 1.0]);
    }
}
