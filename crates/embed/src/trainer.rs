//! End-to-end distributed training orchestration.
//!
//! The corpus is split into per-machine shards (§4.2-III); every machine owns
//! a full model replica, trains on its shard with the configured trainer kind
//! and thread count, and periodically synchronizes parameters with the other
//! machines (full or hotness-block). The machines of the simulated cluster
//! run as real concurrent threads — by default on the persistent
//! barrier-coordinated worker pool of `distger-cluster` (one thread per
//! machine for the whole run, [`ExecutionBackend::Pool`]); the original
//! spawn-per-chunk scheme is retained as
//! [`ExecutionBackend::SpawnPerStep`]. The synchronization traffic is
//! accounted through [`CommStats`] and the thread-coordination overhead
//! through [`TrainStats::superstep_sync_secs`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use distger_cluster::{
    panic_message, run_rounds, CommStats, ExecutionBackend, FaultInjector, RecoveryExhausted,
    RecoveryPolicy, TransportKind,
};
use distger_walks::rng::SplitMix64;
use distger_walks::Corpus;

use crate::dsgl::train_walks_dsgl;
use crate::embeddings::Embeddings;
use crate::negative::NegativeTable;
use crate::pword2vec::train_walks_pword2vec;
use crate::sgns::{train_walks_hogwild, SigmoidTable, TrainContext};
use crate::sync::{
    gather_phi_in, select_sync_ranks, synchronize_replicas, ModelReplica, SyncStrategy,
};
use crate::vocab::Vocab;

/// Which Skip-Gram trainer runs on each machine (Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainerKind {
    /// Plain SGNS / Hogwild: fresh negatives per (target, context) pair.
    Hogwild,
    /// Pword2vec: negatives shared across one window.
    Pword2vec,
    /// DSGL: local buffers + multi-window shared negatives (§4.2).
    Dsgl {
        /// Number of walks processed in lockstep per thread (≥ 1, paper
        /// default 2).
        multi_windows: usize,
    },
}

impl TrainerKind {
    /// Display name used by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self {
            TrainerKind::Hogwild => "SGNS",
            TrainerKind::Pword2vec => "Pword2vec",
            TrainerKind::Dsgl { .. } => "DSGL",
        }
    }
}

/// Training hyper-parameters (§6.1 defaults).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainerConfig {
    /// Embedding dimension `d` (paper default 128).
    pub dim: usize,
    /// Sliding-window size `w` (paper default 10).
    pub window: usize,
    /// Negative samples per positive `K` (paper default 5).
    pub negatives: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (word2vec default 0.025).
    pub learning_rate: f32,
    /// Final learning rate reached by linear decay.
    pub min_learning_rate: f32,
    /// Trainer kind.
    pub kind: TrainerKind,
    /// Parameter synchronization strategy.
    pub sync: SyncStrategy,
    /// Synchronization rounds per epoch (the paper's 0.1 s period maps to a
    /// per-work-chunk boundary here).
    pub sync_rounds_per_epoch: usize,
    /// Worker threads per machine.
    pub threads: usize,
    /// How machine threads are managed across training chunks:
    /// [`ExecutionBackend::RoundLoop`] / [`ExecutionBackend::Pool`] (one
    /// persistent thread per machine for the whole run — the trainer's chunk
    /// loop is already run-scoped, so the two pooled backends are identical
    /// here; `RoundLoop` is the optimized default) or
    /// [`ExecutionBackend::SpawnPerStep`] (fresh threads per chunk, the
    /// reference).
    pub execution: ExecutionBackend,
    /// How many times a crashed training chunk is retried before the failure
    /// propagates. The trainer needs no explicit checkpoint: the live
    /// replica set plus the completed-chunk counter *is* the recovery state
    /// — a retried chunk re-trains over replicas that may already carry part
    /// of its updates, which Hogwild-style training absorbs (at-least-once
    /// chunk execution). Disabled by default.
    pub recovery: RecoveryPolicy,
    /// How machines talk to each other. [`TransportKind::InMemory`] (the
    /// default) runs every machine in this process;
    /// [`TransportKind::Socket`] is served by the multi-process driver
    /// ([`crate::dist::train_distributed_over`]) — [`train_distributed`]
    /// rejects it, since a single in-process call cannot span process
    /// boundaries.
    pub transport: TransportKind,
    /// Seed for initialization and negative sampling.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            window: 10,
            negatives: 5,
            epochs: 1,
            learning_rate: 0.025,
            min_learning_rate: 0.0001,
            kind: TrainerKind::Dsgl { multi_windows: 2 },
            sync: SyncStrategy::HotnessBlock,
            sync_rounds_per_epoch: 4,
            threads: 2,
            execution: ExecutionBackend::RoundLoop,
            recovery: RecoveryPolicy::default(),
            transport: TransportKind::InMemory,
            seed: 0,
        }
    }
}

impl TrainerConfig {
    /// A configuration scaled down for unit tests and examples.
    pub fn small() -> Self {
        Self {
            dim: 32,
            window: 5,
            negatives: 5,
            epochs: 2,
            sync_rounds_per_epoch: 2,
            ..Self::default()
        }
    }

    /// Builder-style trainer kind override.
    pub fn with_kind(mut self, kind: TrainerKind) -> Self {
        self.kind = kind;
        self
    }

    /// Builder-style dimension override.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Builder-style epoch override.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style window-size override.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Builder-style negative-sample count override.
    pub fn with_negatives(mut self, negatives: usize) -> Self {
        self.negatives = negatives;
        self
    }

    /// Builder-style learning-rate override (initial and final).
    pub fn with_learning_rate(mut self, learning_rate: f32, min_learning_rate: f32) -> Self {
        self.learning_rate = learning_rate;
        self.min_learning_rate = min_learning_rate;
        self
    }

    /// Builder-style synchronization-strategy override.
    pub fn with_sync(mut self, sync: SyncStrategy) -> Self {
        self.sync = sync;
        self
    }

    /// Builder-style synchronization-cadence override.
    pub fn with_sync_rounds_per_epoch(mut self, sync_rounds_per_epoch: usize) -> Self {
        self.sync_rounds_per_epoch = sync_rounds_per_epoch;
        self
    }

    /// Builder-style per-machine thread-count override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style execution-backend override.
    pub fn with_execution_backend(mut self, execution: ExecutionBackend) -> Self {
        self.execution = execution;
        self
    }

    /// Deprecated spelling of [`Self::with_execution_backend`], kept for one
    /// release so existing callers migrate at their own pace.
    #[deprecated(since = "0.6.0", note = "renamed to `with_execution_backend`")]
    pub fn with_execution(self, execution: ExecutionBackend) -> Self {
        self.with_execution_backend(execution)
    }

    /// Builder-style recovery-policy override.
    pub fn with_recovery_policy(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Builder-style transport override.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }
}

/// Statistics of one distributed training run.
#[derive(Clone, Debug, Default)]
pub struct TrainStats {
    /// Total (target, context) pairs processed across machines and epochs.
    pub pairs_processed: u64,
    /// Total corpus tokens per epoch.
    pub corpus_tokens: u64,
    /// Wall-clock training time (excluding corpus preparation).
    pub training_secs: f64,
    /// Processed pairs per second of wall-clock time.
    pub throughput_pairs_per_sec: f64,
    /// Synchronization traffic.
    pub sync_comm: CommStats,
    /// Wall-clock thread-coordination overhead summed over training chunks:
    /// per chunk, the wall time of the concurrent compute phase minus the
    /// slowest machine's compute time. Under the pooled backends
    /// ([`ExecutionBackend::RoundLoop`] / [`ExecutionBackend::Pool`]) this
    /// is the barrier-crossing cost; under
    /// [`ExecutionBackend::SpawnPerStep`] it is the per-chunk thread
    /// spawn/join cost. The coordinator-side parameter synchronization
    /// between chunks is excluded (identical work under all backends;
    /// its traffic is `sync_comm`).
    pub superstep_sync_secs: f64,
    /// Average per-machine training-phase memory footprint in bytes (model
    /// replica + negative table + corpus shard + local buffers).
    pub avg_machine_memory_bytes: usize,
    /// Training chunks re-executed by supervised recovery (one per failed
    /// attempt). 0 on a fault-free run.
    pub recovered_chunks: u64,
}

/// Trains node embeddings over `corpus` on `num_machines` simulated machines.
///
/// Returns the embeddings (node-id indexed, averaged over replicas) and the
/// run statistics. When `config.recovery` is enabled, a worker panic retries
/// the failed chunk under the policy; an exhausted budget panics with the
/// last worker panic's message. Use [`train_distributed_supervised`] to
/// handle exhaustion as an error — and to inject deterministic faults.
pub fn train_distributed(
    corpus: &Corpus,
    num_machines: usize,
    config: &TrainerConfig,
) -> (Embeddings, TrainStats) {
    match train_distributed_inner(corpus, num_machines, config, None) {
        Ok(result) => result,
        Err(err) => panic!("supervised training failed permanently: {err}"),
    }
}

/// [`train_distributed`] with explicit fault handling: injects the faults of
/// a [`FaultInjector`] (fault coordinates are `(machine, chunk, 0)` with
/// *absolute* chunk indices, stable across retries) and returns a clean
/// error instead of panicking when the retry budget is exhausted.
pub fn train_distributed_supervised(
    corpus: &Corpus,
    num_machines: usize,
    config: &TrainerConfig,
    faults: Option<&FaultInjector>,
) -> Result<(Embeddings, TrainStats), RecoveryExhausted> {
    train_distributed_inner(corpus, num_machines, config, faults)
}

fn train_distributed_inner(
    corpus: &Corpus,
    num_machines: usize,
    config: &TrainerConfig,
    faults: Option<&FaultInjector>,
) -> Result<(Embeddings, TrainStats), RecoveryExhausted> {
    assert!(num_machines > 0, "need at least one machine");
    assert_eq!(
        config.transport,
        TransportKind::InMemory,
        "train_distributed executes every machine in this process; \
         socket transports are served by embed::dist::train_distributed_over"
    );
    let n = corpus.num_nodes();
    if n == 0 || corpus.total_tokens() == 0 {
        return Ok((Embeddings::zeros(n, config.dim), TrainStats::default()));
    }

    let vocab = Vocab::from_corpus(corpus);
    let table = NegativeTable::from_vocab(&vocab);
    let sigmoid = SigmoidTable::new();

    // Shard the corpus and convert every walk into rank space so that hot
    // nodes occupy the top rows of the matrices (Improvement-I).
    let shards: Vec<Vec<Vec<u32>>> = corpus
        .split(num_machines)
        .iter()
        .map(|shard| {
            shard
                .walks()
                .iter()
                .map(|walk| walk.iter().map(|&v| vocab.rank_of(v)).collect())
                .collect()
        })
        .collect();

    let replicas: Vec<ModelReplica> = (0..num_machines)
        .map(|_| ModelReplica::new(n, config.dim, config.seed))
        .collect();

    let mut sync_comm = CommStats::new();
    let mut sync_rng = SplitMix64::new(config.seed ^ 0x5f3c_9a1d);
    let total_chunks = (config.epochs * config.sync_rounds_per_epoch).max(1);
    let mut pairs_processed = 0u64;
    let mut peak_buffer_bytes = 0usize;

    // The learning-rate schedule is a pure function of the chunk index, so
    // pooled workers compute it locally without coordinator hand-off.
    let lr_for = |chunk: usize| {
        let progress = chunk as f32 / total_chunks as f32;
        config.learning_rate - (config.learning_rate - config.min_learning_rate) * progress
    };

    // Whether worker panics are caught and handled (retried or surfaced as a
    // clean error). When neither faults nor a recovery policy are in play,
    // panics propagate exactly as before.
    let supervised = faults.is_some() || config.recovery.is_enabled();
    let mut recovered_chunks = 0u64;

    let start = std::time::Instant::now();
    let superstep_sync_secs = match config.execution {
        ExecutionBackend::RoundLoop | ExecutionBackend::Pool => {
            // One persistent worker per machine for the whole run. Workers
            // hold `&replicas[machine]` (Hogwild matrices are
            // interior-mutable); the coordinator synchronizes parameters
            // between chunks while the workers are parked at the barrier.
            //
            // Recovery: the live replicas plus `completed_chunks` are the
            // checkpoint. A crashed attempt loses only the chunk that died —
            // every earlier chunk was harvested and synchronized at its
            // boundary — so the retry rebuilds the pool and resumes at
            // `base_chunk = completed_chunks`. Workers train absolute chunk
            // `base_chunk + generation`, which keeps the learning-rate
            // schedule and fault coordinates stable across attempts.
            let mut sync_secs = 0.0f64;
            let mut completed_chunks = 0usize;
            let mut attempt = 0u32;
            loop {
                let base_chunk = completed_chunks;
                // Fresh result slots per attempt: a crashed attempt's
                // partially written slots are never harvested.
                let chunk_results: Vec<std::sync::Mutex<(u64, usize)>> = (0..num_machines)
                    .map(|_| std::sync::Mutex::new((0, 0)))
                    .collect();
                let run = catch_unwind(AssertUnwindSafe(|| {
                    run_rounds(
                        num_machines,
                        |generation| {
                            if generation > 0 {
                                for slot in &chunk_results {
                                    let (pairs, buffer_bytes) = *slot.lock().unwrap();
                                    pairs_processed += pairs;
                                    peak_buffer_bytes = peak_buffer_bytes.max(buffer_bytes);
                                }
                                // Synchronize parameters across machines.
                                let _sync_span =
                                    distger_obs::span!("replica_sync", round = completed_chunks);
                                let ranks = select_sync_ranks(config.sync, &vocab, &mut sync_rng);
                                synchronize_replicas(&replicas, &ranks, &mut sync_comm);
                                completed_chunks += 1;
                            }
                            completed_chunks < total_chunks
                        },
                        |machine, generation| {
                            let chunk = base_chunk + generation as usize;
                            if let Some(injector) = faults {
                                injector.trip(machine, chunk as u64, 0);
                            }
                            let _chunk_span =
                                distger_obs::span!("train_chunk", machine = machine, round = chunk);
                            let slice_idx = chunk % config.sync_rounds_per_epoch.max(1);
                            let slice = epoch_slice(
                                &shards[machine],
                                slice_idx,
                                config.sync_rounds_per_epoch,
                            );
                            let result = train_machine_chunk(
                                &replicas[machine],
                                slice,
                                &table,
                                &sigmoid,
                                config,
                                lr_for(chunk),
                                machine as u64,
                            );
                            *chunk_results[machine].lock().unwrap() = result;
                        },
                    )
                }));
                match run {
                    Ok(pool_stats) => {
                        sync_secs += pool_stats.sync_secs;
                        break;
                    }
                    Err(payload) => {
                        if !supervised {
                            resume_unwind(payload);
                        }
                        attempt += 1;
                        recovered_chunks += 1;
                        if attempt > config.recovery.max_retries {
                            return Err(RecoveryExhausted {
                                attempts: attempt,
                                last_panic: panic_message(payload.as_ref()),
                            });
                        }
                        std::thread::sleep(config.recovery.backoff_for(attempt));
                    }
                }
            }
            sync_secs
        }
        ExecutionBackend::SpawnPerStep => {
            let mut sync_secs = 0.0f64;
            for chunk in 0..total_chunks {
                let lr = lr_for(chunk);
                let slice_idx = chunk % config.sync_rounds_per_epoch.max(1);

                // Machines run concurrently on freshly spawned threads, each
                // training its shard slice. Spawn-per-step recovery is
                // per-chunk: the chunk that died simply re-runs (the same
                // at-least-once contract as the pooled path).
                let mut attempt = 0u32;
                let (chunk_results, wall): (Vec<(u64, usize, f64)>, f64) = loop {
                    let chunk_started = std::time::Instant::now();
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        std::thread::scope(|scope| {
                            let handles: Vec<_> = replicas
                                .iter()
                                .zip(shards.iter())
                                .enumerate()
                                .map(|(machine, (replica, shard))| {
                                    let vocab_ref = &table;
                                    let sigmoid_ref = &sigmoid;
                                    scope.spawn(move || {
                                        if let Some(injector) = faults {
                                            injector.trip(machine, chunk as u64, 0);
                                        }
                                        let _chunk_span = distger_obs::span!(
                                            "train_chunk",
                                            machine = machine,
                                            round = chunk
                                        );
                                        let compute_started = std::time::Instant::now();
                                        let slice = epoch_slice(
                                            shard,
                                            slice_idx,
                                            config.sync_rounds_per_epoch,
                                        );
                                        let (pairs, buffer_bytes) = train_machine_chunk(
                                            replica,
                                            slice,
                                            vocab_ref,
                                            sigmoid_ref,
                                            config,
                                            lr,
                                            machine as u64,
                                        );
                                        (
                                            pairs,
                                            buffer_bytes,
                                            compute_started.elapsed().as_secs_f64(),
                                        )
                                    })
                                })
                                .collect();
                            handles
                                .into_iter()
                                .map(|h| {
                                    // Re-raise the worker's own payload so a
                                    // caught panic keeps its message.
                                    h.join().unwrap_or_else(|payload| resume_unwind(payload))
                                })
                                .collect()
                        })
                    }));
                    match run {
                        Ok(results) => break (results, chunk_started.elapsed().as_secs_f64()),
                        Err(payload) => {
                            if !supervised {
                                resume_unwind(payload);
                            }
                            attempt += 1;
                            recovered_chunks += 1;
                            if attempt > config.recovery.max_retries {
                                return Err(RecoveryExhausted {
                                    attempts: attempt,
                                    last_panic: panic_message(payload.as_ref()),
                                });
                            }
                            std::thread::sleep(config.recovery.backoff_for(attempt));
                        }
                    }
                };

                let mut slowest = 0.0f64;
                for (pairs, buffer_bytes, compute_secs) in chunk_results {
                    pairs_processed += pairs;
                    peak_buffer_bytes = peak_buffer_bytes.max(buffer_bytes);
                    slowest = slowest.max(compute_secs);
                }
                sync_secs += (wall - slowest).max(0.0);

                // Synchronize parameters across machines.
                let _sync_span = distger_obs::span!("replica_sync", round = chunk);
                let ranks = select_sync_ranks(config.sync, &vocab, &mut sync_rng);
                synchronize_replicas(&replicas, &ranks, &mut sync_comm);
            }
            sync_secs
        }
    };
    let training_secs = start.elapsed().as_secs_f64();

    // Memory accounting (Table 8): replica + table + shard + local buffers.
    let shard_bytes = shards
        .iter()
        .map(|s| s.iter().map(|w| w.len() * 4).sum::<usize>())
        .max()
        .unwrap_or(0);
    let avg_machine_memory_bytes =
        replicas[0].memory_bytes() + table.memory_bytes() + shard_bytes + peak_buffer_bytes;

    // Gather the final model and map rank-major rows back to node ids.
    let rank_major = gather_phi_in(&replicas);
    let mut node_major = vec![0.0f32; n * config.dim];
    for rank in 0..n as u32 {
        let node = vocab.node_at(rank) as usize;
        let src = &rank_major[rank as usize * config.dim..(rank as usize + 1) * config.dim];
        node_major[node * config.dim..(node + 1) * config.dim].copy_from_slice(src);
    }

    let stats = TrainStats {
        pairs_processed,
        corpus_tokens: corpus.total_tokens() as u64,
        training_secs,
        throughput_pairs_per_sec: if training_secs > 0.0 {
            pairs_processed as f64 / training_secs
        } else {
            0.0
        },
        sync_comm,
        superstep_sync_secs,
        avg_machine_memory_bytes,
        recovered_chunks,
    };
    Ok((Embeddings::from_node_major(node_major, config.dim), stats))
}

/// Convenience wrapper: single-machine training.
pub fn train(corpus: &Corpus, config: &TrainerConfig) -> (Embeddings, TrainStats) {
    train_distributed(corpus, 1, config)
}

/// The `slice_idx`-th of `slices` contiguous portions of a shard.
pub(crate) fn epoch_slice(shard: &[Vec<u32>], slice_idx: usize, slices: usize) -> &[Vec<u32>] {
    let slices = slices.max(1);
    let per = shard.len().div_ceil(slices);
    let start = (slice_idx * per).min(shard.len());
    let end = ((slice_idx + 1) * per).min(shard.len());
    &shard[start..end]
}

/// Trains one machine's chunk with the configured kind and thread count.
/// Returns `(pairs, peak_local_buffer_bytes)`.
pub(crate) fn train_machine_chunk(
    replica: &ModelReplica,
    walks: &[Vec<u32>],
    table: &NegativeTable,
    sigmoid: &SigmoidTable,
    config: &TrainerConfig,
    lr: f32,
    machine: u64,
) -> (u64, usize) {
    if walks.is_empty() {
        return (0, 0);
    }
    let ctx = TrainContext {
        phi_in: &replica.phi_in,
        phi_out: &replica.phi_out,
        negatives_table: table,
        sigmoid,
        window: config.window,
        negatives: config.negatives,
        learning_rate: lr,
        seed: config.seed ^ (machine << 32),
    };
    let threads = config.threads.max(1).min(walks.len());
    if threads == 1 {
        return run_kind(&ctx, walks, config.kind, machine);
    }
    let per = walks.len().div_ceil(threads);
    let results: Vec<(u64, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = walks
            .chunks(per)
            .enumerate()
            .map(|(t, chunk)| {
                let ctx_ref = &ctx;
                scope.spawn(move || run_kind(ctx_ref, chunk, config.kind, machine * 97 + t as u64))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trainer worker thread panicked"))
            .collect()
    });
    results
        .into_iter()
        .fold((0, 0), |(p, b), (pp, bb)| (p + pp, b.max(bb)))
}

fn run_kind(
    ctx: &TrainContext<'_>,
    walks: &[Vec<u32>],
    kind: TrainerKind,
    thread_id: u64,
) -> (u64, usize) {
    match kind {
        TrainerKind::Hogwild => (train_walks_hogwild(ctx, walks, thread_id), 0),
        TrainerKind::Pword2vec => (train_walks_pword2vec(ctx, walks, thread_id), 0),
        TrainerKind::Dsgl { multi_windows } => {
            train_walks_dsgl(ctx, walks, multi_windows, thread_id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corpus mimicking two communities: walks stay inside {0..4} or {5..9}.
    fn community_corpus() -> Corpus {
        let mut walks = Vec::new();
        let mut rng = SplitMix64::new(33);
        for i in 0..200 {
            let base: u32 = if i % 2 == 0 { 0 } else { 5 };
            let walk: Vec<u32> = (0..12).map(|_| base + rng.next_bounded(5) as u32).collect();
            walks.push(walk);
        }
        Corpus::from_walks(walks, 10)
    }

    fn avg_similarity(e: &Embeddings, pairs: &[(u32, u32)]) -> f32 {
        pairs.iter().map(|&(a, b)| e.cosine(a, b)).sum::<f32>() / pairs.len() as f32
    }

    fn check_community_structure(e: &Embeddings) {
        let intra = avg_similarity(e, &[(0, 1), (1, 2), (2, 3), (5, 6), (6, 7), (8, 9)]);
        let inter = avg_similarity(e, &[(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)]);
        assert!(
            intra > inter + 0.1,
            "intra-community cosine {intra} must exceed inter {inter}"
        );
    }

    #[test]
    fn all_trainer_kinds_learn_community_structure() {
        let corpus = community_corpus();
        for kind in [
            TrainerKind::Hogwild,
            TrainerKind::Pword2vec,
            TrainerKind::Dsgl { multi_windows: 2 },
        ] {
            let config = TrainerConfig::small().with_kind(kind).with_dim(16);
            let (embeddings, stats) = train(&corpus, &config);
            assert_eq!(embeddings.num_nodes(), 10);
            assert!(stats.pairs_processed > 0, "{} did no work", kind.name());
            check_community_structure(&embeddings);
        }
    }

    #[test]
    fn distributed_training_learns_and_syncs() {
        let corpus = community_corpus();
        let config = TrainerConfig::small().with_dim(16);
        let (embeddings, stats) = train_distributed(&corpus, 4, &config);
        check_community_structure(&embeddings);
        assert!(stats.sync_comm.messages > 0, "machines must synchronize");
        assert!(stats.avg_machine_memory_bytes > 0);
        assert!(stats.throughput_pairs_per_sec > 0.0);
    }

    #[test]
    fn hotness_sync_traffic_is_smaller_than_full() {
        let corpus = community_corpus();
        let base = TrainerConfig::small().with_dim(8);
        let full = TrainerConfig {
            sync: SyncStrategy::Full,
            ..base
        };
        let hot = TrainerConfig {
            sync: SyncStrategy::HotnessBlock,
            ..base
        };
        let (_, full_stats) = train_distributed(&corpus, 4, &full);
        let (_, hot_stats) = train_distributed(&corpus, 4, &hot);
        assert!(
            hot_stats.sync_comm.bytes < full_stats.sync_comm.bytes,
            "hotness-block sync {} must ship fewer bytes than full sync {}",
            hot_stats.sync_comm.bytes,
            full_stats.sync_comm.bytes
        );
    }

    #[test]
    fn execution_backends_produce_identical_models() {
        // Single-threaded machines: within-machine Hogwild races are off, so
        // the pooled and spawn-per-chunk schedules must be bit-identical.
        let corpus = community_corpus();
        let config = TrainerConfig {
            threads: 1,
            ..TrainerConfig::small().with_dim(16)
        };
        let (pool, pool_stats) = train_distributed(&corpus, 4, &config);
        let (spawn, spawn_stats) = train_distributed(
            &corpus,
            4,
            &config.with_execution_backend(ExecutionBackend::SpawnPerStep),
        );
        assert_eq!(pool.num_nodes(), spawn.num_nodes());
        for v in 0..10u32 {
            assert_eq!(pool.vector(v), spawn.vector(v), "node {v} diverged");
        }
        assert_eq!(pool_stats.pairs_processed, spawn_stats.pairs_processed);
        assert_eq!(pool_stats.sync_comm, spawn_stats.sync_comm);
        assert!(pool_stats.superstep_sync_secs >= 0.0);
        assert!(spawn_stats.superstep_sync_secs >= 0.0);
    }

    #[test]
    fn empty_corpus_returns_zero_embeddings() {
        let corpus = Corpus::new(5);
        let (embeddings, stats) = train(&corpus, &TrainerConfig::small());
        assert_eq!(embeddings.num_nodes(), 5);
        assert_eq!(stats.pairs_processed, 0);
    }

    #[test]
    fn single_machine_has_no_sync_traffic() {
        let corpus = community_corpus();
        let (_, stats) = train(&corpus, &TrainerConfig::small().with_dim(8));
        assert_eq!(stats.sync_comm.messages, 0);
    }

    #[test]
    fn pooled_training_recovers_from_an_injected_chunk_fault() {
        use distger_cluster::FaultPlan;
        let corpus = community_corpus();
        let config = TrainerConfig::small()
            .with_dim(16)
            .with_recovery_policy(RecoveryPolicy::retries(2));
        let faults = FaultPlan::default().panic_at(1, 2, 0).build();
        let (embeddings, stats) = train_distributed_supervised(&corpus, 4, &config, Some(&faults))
            .expect("recovery within budget");
        assert_eq!(faults.injected_faults(), 1, "the fault must fire");
        assert_eq!(stats.recovered_chunks, 1, "one chunk re-executed");
        // The run still does all its work and learns: every chunk's pairs
        // are counted exactly once, so the totals match a fault-free run.
        let (_, clean) = train_distributed(&corpus, 4, &TrainerConfig::small().with_dim(16));
        assert_eq!(stats.pairs_processed, clean.pairs_processed);
        assert_eq!(stats.sync_comm, clean.sync_comm);
        check_community_structure(&embeddings);
    }

    #[test]
    fn spawn_per_step_training_recovers_per_chunk() {
        use distger_cluster::FaultPlan;
        let corpus = community_corpus();
        let config = TrainerConfig::small()
            .with_dim(16)
            .with_execution_backend(ExecutionBackend::SpawnPerStep)
            .with_recovery_policy(RecoveryPolicy::retries(1));
        let faults = FaultPlan::default().panic_at(0, 1, 0).build();
        let (embeddings, stats) = train_distributed_supervised(&corpus, 4, &config, Some(&faults))
            .expect("recovery within budget");
        assert_eq!(faults.injected_faults(), 1);
        assert_eq!(stats.recovered_chunks, 1);
        check_community_structure(&embeddings);
    }

    #[test]
    fn exhausted_training_recovery_is_a_clean_error() {
        use distger_cluster::FaultPlan;
        let corpus = community_corpus();
        let config = TrainerConfig::small().with_dim(8);
        // Faults in two distinct chunks; retries(1) allows two attempts, and
        // absolute chunk coordinates make each attempt die deterministically.
        let faults = FaultPlan::default()
            .panic_at(2, 0, 0)
            .panic_at(3, 1, 0)
            .build();
        let err = train_distributed_supervised(
            &corpus,
            4,
            &config.with_recovery_policy(RecoveryPolicy::retries(1)),
            Some(&faults),
        )
        .expect_err("both attempts die");
        assert_eq!(err.attempts, 2);
        // The injector names the chunk coordinate "round".
        assert!(
            err.last_panic.contains("injected fault: machine 3 round 1"),
            "last panic was {}",
            err.last_panic
        );
    }

    #[test]
    fn injected_fault_without_recovery_surfaces_immediately() {
        use distger_cluster::FaultPlan;
        let corpus = community_corpus();
        let config = TrainerConfig::small().with_dim(8);
        let faults = FaultPlan::default().panic_at(0, 0, 0).build();
        let err = train_distributed_supervised(&corpus, 2, &config, Some(&faults))
            .expect_err("no retry budget");
        assert_eq!(err.attempts, 1);
    }

    #[test]
    fn epoch_slice_partitions_the_shard() {
        let shard: Vec<Vec<u32>> = (0..10).map(|i| vec![i]).collect();
        let mut seen = 0;
        for s in 0..3 {
            seen += epoch_slice(&shard, s, 3).len();
        }
        assert_eq!(seen, 10);
        assert!(epoch_slice(&shard, 2, 3).len() <= 4);
    }
}
