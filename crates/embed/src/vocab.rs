//! Frequency-ordered vocabulary over the walk corpus.
//!
//! DSGL's Improvement-I (§4.2) constructs the global matrices `φ_in` and
//! `φ_out` in descending order of node frequency in the corpus, so that the
//! rows of hot nodes stay in cache. The [`Vocab`] owns that ordering: it maps
//! original node ids to frequency ranks and back, and exposes the per-rank
//! frequencies that the hotness-block synchronization (Improvement-III) is
//! built on.

use distger_graph::NodeId;
use distger_walks::Corpus;

/// Frequency-ordered vocabulary: rank 0 is the most frequent node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vocab {
    node_to_rank: Vec<u32>,
    rank_to_node: Vec<NodeId>,
    freq_by_rank: Vec<u64>,
}

impl Vocab {
    /// Builds the vocabulary from a corpus. Nodes that never appear in the
    /// corpus are placed after all appearing nodes (frequency 0), so every
    /// node of the graph has a row in the global matrices.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let freqs = corpus.node_frequencies();
        Self::from_frequencies(&freqs)
    }

    /// Builds the vocabulary from explicit per-node frequencies.
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let n = freqs.len();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(freqs[v as usize]), v));
        let mut node_to_rank = vec![0u32; n];
        let mut freq_by_rank = vec![0u64; n];
        for (rank, &node) in order.iter().enumerate() {
            node_to_rank[node as usize] = rank as u32;
            freq_by_rank[rank] = freqs[node as usize];
        }
        Self {
            node_to_rank,
            rank_to_node: order,
            freq_by_rank,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rank_to_node.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.rank_to_node.is_empty()
    }

    /// Frequency rank of a node (0 = hottest).
    #[inline]
    pub fn rank_of(&self, node: NodeId) -> u32 {
        self.node_to_rank[node as usize]
    }

    /// Node occupying a given rank.
    #[inline]
    pub fn node_at(&self, rank: u32) -> NodeId {
        self.rank_to_node[rank as usize]
    }

    /// Corpus frequency of the node at `rank`.
    #[inline]
    pub fn freq_at(&self, rank: u32) -> u64 {
        self.freq_by_rank[rank as usize]
    }

    /// Frequencies in rank order (non-increasing).
    pub fn frequencies(&self) -> &[u64] {
        &self.freq_by_rank
    }

    /// The largest occurrence count of any node (`ocn_max` in §4.2-III).
    pub fn max_frequency(&self) -> u64 {
        self.freq_by_rank.first().copied().unwrap_or(0)
    }

    /// Hotness blocks: maximal runs of ranks sharing the same frequency,
    /// returned as `(start_rank, end_rank_exclusive)` in rank order. Ranks
    /// with frequency 0 form the final block (they are never sampled for
    /// synchronization by callers, but the block is reported for
    /// completeness).
    pub fn hotness_blocks(&self) -> Vec<(u32, u32)> {
        let mut blocks = Vec::new();
        let n = self.freq_by_rank.len();
        let mut start = 0usize;
        while start < n {
            let f = self.freq_by_rank[start];
            let mut end = start + 1;
            while end < n && self.freq_by_rank[end] == f {
                end += 1;
            }
            blocks.push((start as u32, end as u32));
            start = end;
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocab {
        // node: 0 1 2 3 4 ; freq: 3 7 7 0 1
        Vocab::from_frequencies(&[3, 7, 7, 0, 1])
    }

    #[test]
    fn ranks_are_descending_by_frequency() {
        let v = vocab();
        assert_eq!(v.len(), 5);
        assert_eq!(v.node_at(0), 1); // ties broken by node id
        assert_eq!(v.node_at(1), 2);
        assert_eq!(v.node_at(2), 0);
        assert_eq!(v.node_at(3), 4);
        assert_eq!(v.node_at(4), 3);
        assert_eq!(v.rank_of(3), 4);
        assert_eq!(v.freq_at(0), 7);
        assert_eq!(v.max_frequency(), 7);
    }

    #[test]
    fn rank_mapping_is_a_bijection() {
        let v = vocab();
        for node in 0..5u32 {
            assert_eq!(v.node_at(v.rank_of(node)), node);
        }
        for rank in 0..5u32 {
            assert_eq!(v.rank_of(v.node_at(rank)), rank);
        }
    }

    #[test]
    fn hotness_blocks_group_equal_frequencies() {
        let v = vocab();
        // freq by rank: 7 7 3 1 0 → blocks [0,2) [2,3) [3,4) [4,5)
        assert_eq!(v.hotness_blocks(), vec![(0, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn from_corpus_counts_occurrences() {
        let corpus = Corpus::from_walks(vec![vec![0, 1, 1], vec![2, 1]], 4);
        let v = Vocab::from_corpus(&corpus);
        assert_eq!(v.node_at(0), 1);
        assert_eq!(v.freq_at(0), 3);
        assert_eq!(v.freq_at(3), 0); // node 3 never appears
    }

    #[test]
    fn empty_vocab() {
        let v = Vocab::from_frequencies(&[]);
        assert!(v.is_empty());
        assert_eq!(v.max_frequency(), 0);
        assert!(v.hotness_blocks().is_empty());
    }

    #[test]
    fn frequencies_are_non_increasing() {
        let v = Vocab::from_frequencies(&[5, 1, 9, 9, 2, 0, 7]);
        assert!(v.frequencies().windows(2).all(|w| w[0] >= w[1]));
    }
}
