//! Property-based tests for the embedding learner's supporting structures.

use distger_cluster::ExecutionBackend;
use distger_embed::negative::NegativeTable;
use distger_embed::sync::select_sync_ranks;
use distger_embed::{
    train_distributed, train_distributed_supervised, Embeddings, FaultPlan, RecoveryPolicy,
    SyncStrategy, TrainerConfig, Vocab,
};
use distger_walks::rng::SplitMix64;
use distger_walks::Corpus;
use proptest::prelude::*;

proptest! {
    /// The frequency-ordered vocabulary is a bijection between nodes and
    /// ranks, with non-increasing frequencies by rank.
    #[test]
    fn vocab_is_bijective_and_sorted(freqs in prop::collection::vec(0u64..1000, 1..200)) {
        let vocab = Vocab::from_frequencies(&freqs);
        prop_assert_eq!(vocab.len(), freqs.len());
        for node in 0..freqs.len() as u32 {
            prop_assert_eq!(vocab.node_at(vocab.rank_of(node)), node);
            prop_assert_eq!(vocab.freq_at(vocab.rank_of(node)), freqs[node as usize]);
        }
        prop_assert!(vocab.frequencies().windows(2).all(|w| w[0] >= w[1]));
    }

    /// Hotness blocks tile the rank space exactly once and group equal
    /// frequencies.
    #[test]
    fn hotness_blocks_tile_rank_space(freqs in prop::collection::vec(0u64..50, 1..150)) {
        let vocab = Vocab::from_frequencies(&freqs);
        let blocks = vocab.hotness_blocks();
        let mut expected_start = 0u32;
        for &(start, end) in &blocks {
            prop_assert_eq!(start, expected_start, "blocks must be contiguous");
            prop_assert!(end > start);
            let f = vocab.freq_at(start);
            for rank in start..end {
                prop_assert_eq!(vocab.freq_at(rank), f);
            }
            if end < vocab.len() as u32 {
                prop_assert_ne!(vocab.freq_at(end), f, "maximal runs only");
            }
            expected_start = end;
        }
        prop_assert_eq!(expected_start as usize, freqs.len());
    }

    /// The negative table only samples ranks whose frequency is non-zero
    /// (unless the whole corpus is empty) and always returns valid ranks.
    #[test]
    fn negative_table_samples_valid_ranks(
        freqs in prop::collection::vec(0u64..100, 1..80),
        seeds in prop::collection::vec(any::<u64>(), 50),
    ) {
        let vocab = Vocab::from_frequencies(&freqs);
        let table = NegativeTable::with_size(&vocab, 4096);
        let any_nonzero = freqs.iter().any(|&f| f > 0);
        for seed in seeds {
            let rank = table.sample(seed);
            prop_assert!((rank as usize) < freqs.len());
            if any_nonzero {
                prop_assert!(vocab.freq_at(rank) > 0, "zero-frequency rank sampled");
            }
        }
    }

    /// Hotness-block synchronization selects exactly one rank per non-empty
    /// block, each inside its block.
    #[test]
    fn hotness_sync_selects_one_rank_per_block(
        freqs in prop::collection::vec(0u64..20, 1..120),
        seed in any::<u64>(),
    ) {
        let vocab = Vocab::from_frequencies(&freqs);
        let mut rng = SplitMix64::new(seed);
        let ranks = select_sync_ranks(SyncStrategy::HotnessBlock, &vocab, &mut rng);
        let nonzero_blocks: Vec<(u32, u32)> = vocab
            .hotness_blocks()
            .into_iter()
            .filter(|&(s, _)| vocab.freq_at(s) > 0)
            .collect();
        prop_assert_eq!(ranks.len(), nonzero_blocks.len());
        for (rank, (start, end)) in ranks.iter().zip(nonzero_blocks) {
            prop_assert!(*rank >= start && *rank < end);
        }
    }

    /// Embedding similarity helpers: dot is symmetric, cosine stays in
    /// [-1, 1] and cosine of a vector with itself is 1 (when non-zero).
    #[test]
    fn embedding_similarities_are_consistent(
        data in prop::collection::vec(-1.0f32..1.0, 8..64),
    ) {
        let dim = 4;
        let usable = (data.len() / dim) * dim;
        let emb = Embeddings::from_node_major(data[..usable].to_vec(), dim);
        let n = emb.num_nodes() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert!((emb.dot(u, v) - emb.dot(v, u)).abs() < 1e-5);
                let c = emb.cosine(u, v);
                prop_assert!((-1.0001..=1.0001).contains(&c));
            }
            let norm: f32 = emb.vector(u).iter().map(|x| x * x).sum();
            if norm > 1e-6 {
                prop_assert!((emb.cosine(u, u) - 1.0).abs() < 1e-4);
            }
        }
    }
}

/// A fresh temp-file path per call, so parallel proptest cases never collide.
fn scratch_file(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("distger_prop_embed");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Save→load round trip through both on-disk formats: the text format
    /// reproduces every value (display → parse of f32 is lossless), the
    /// binary store is defined to be bit-exact.
    #[test]
    fn save_load_round_trips_both_formats(
        data in prop::collection::vec(-1.0e3f32..1.0e3, 0..96),
        dim in 1usize..6,
    ) {
        let usable = (data.len() / dim) * dim;
        let emb = Embeddings::from_node_major(data[..usable].to_vec(), dim);

        let text = scratch_file("roundtrip.txt");
        emb.save_text(&text).unwrap();
        let from_text = Embeddings::load_text(&text).unwrap();
        prop_assert_eq!(&from_text, &emb);
        std::fs::remove_file(&text).ok();

        let binary = scratch_file("roundtrip.bin");
        emb.save_binary(&binary).unwrap();
        let from_binary = Embeddings::load_binary(&binary).unwrap();
        prop_assert_eq!(&from_binary, &emb);
        std::fs::remove_file(&binary).ok();
    }

    /// Any corruption of a binary store — a flipped byte anywhere, or a
    /// truncation at any length — must surface as an error, never a panic or
    /// a silently wrong result.
    #[test]
    fn corrupted_binary_store_errors_instead_of_panicking(
        data in prop::collection::vec(-10.0f32..10.0, 4..40),
        corrupt_at in any::<u32>(),
        flip in 1u16..256,
        truncate_to in any::<u32>(),
    ) {
        let usable = (data.len() / 4) * 4;
        let emb = Embeddings::from_node_major(data[..usable].to_vec(), 4);
        let path = scratch_file("corrupt.bin");
        emb.save_binary(&path).unwrap();
        let original = std::fs::read(&path).unwrap();

        // Single flipped byte: either caught (header/size/checksum error) or
        // — only for flips inside the unvalidated trailing bits of a value —
        // impossible, since every byte is covered by magic, version, dim,
        // count, checksum, or the checksummed payload.
        let mut flipped = original.clone();
        let at = corrupt_at as usize % flipped.len();
        flipped[at] ^= flip as u8;
        std::fs::write(&path, &flipped).unwrap();
        prop_assert!(Embeddings::load_binary(&path).is_err(),
            "flip at byte {at} loaded successfully");

        // Truncation to any strictly shorter length.
        let keep = truncate_to as usize % original.len();
        std::fs::write(&path, &original[..keep]).unwrap();
        prop_assert!(Embeddings::load_binary(&path).is_err(),
            "truncation to {keep} bytes loaded successfully");
        std::fs::remove_file(&path).ok();
    }
}

/// A two-community corpus small enough for property cases: walks alternate
/// between nodes {0..4} and {5..9}.
fn training_corpus() -> Corpus {
    let mut walks = Vec::new();
    let mut rng = SplitMix64::new(33);
    for i in 0..120 {
        let base: u32 = if i % 2 == 0 { 0 } else { 5 };
        let walk: Vec<u32> = (0..10).map(|_| base + rng.next_bounded(5) as u32).collect();
        walks.push(walk);
    }
    Corpus::from_walks(walks, 10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Trainer-path fault tolerance: an injected worker panic in any chunk,
    /// on any machine, under either execution backend, recovers — the live
    /// replicas plus the completed-chunk counter are the checkpoint — and
    /// the work accounting stays deterministic: crashed chunks are discarded
    /// and re-executed exactly once, so pair and sync totals match the
    /// fault-free run's.
    #[test]
    fn injected_trainer_fault_recovers_with_deterministic_accounting(
        fault_machine in 0usize..4,
        fault_chunk in 0u64..4, // `small()` runs epochs × sync_rounds = 4 chunks
        spawn_per_step in any::<bool>(),
    ) {
        let corpus = training_corpus();
        let backend = if spawn_per_step {
            ExecutionBackend::SpawnPerStep
        } else {
            ExecutionBackend::RoundLoop
        };
        let config = TrainerConfig::small().with_dim(8).with_execution_backend(backend);
        let (_, clean) = train_distributed(&corpus, 4, &config);

        let faults = FaultPlan::new().panic_at(fault_machine, fault_chunk, 0).build();
        let (_, stats) = train_distributed_supervised(
            &corpus,
            4,
            &config.with_recovery_policy(RecoveryPolicy::retries(2)),
            Some(&faults),
        )
        .expect("one injected fault must recover within two retries");

        prop_assert_eq!(faults.injected_faults(), 1, "the fault must fire");
        prop_assert!(stats.recovered_chunks >= 1);
        prop_assert_eq!(stats.pairs_processed, clean.pairs_processed);
        prop_assert_eq!(&stats.sync_comm, &clean.sync_comm);
    }

    /// With a zero-retry budget the supervised trainer still never
    /// deadlocks: any injected panic surfaces as a clean `RecoveryExhausted`
    /// after exactly one attempt, naming the crash coordinates.
    #[test]
    fn trainer_fault_without_retries_is_a_clean_error(
        fault_machine in 0usize..4,
        fault_chunk in 0u64..4,
        spawn_per_step in any::<bool>(),
    ) {
        let corpus = training_corpus();
        let backend = if spawn_per_step {
            ExecutionBackend::SpawnPerStep
        } else {
            ExecutionBackend::RoundLoop
        };
        let config = TrainerConfig::small().with_dim(8).with_execution_backend(backend);
        let faults = FaultPlan::new().panic_at(fault_machine, fault_chunk, 0).build();
        let err = train_distributed_supervised(&corpus, 4, &config, Some(&faults))
            .expect_err("zero retries cannot absorb a panic");
        prop_assert_eq!(err.attempts, 1);
        // The injector names the chunk coordinate "round".
        prop_assert!(
            err.last_panic
                .contains(&format!("injected fault: machine {fault_machine} round {fault_chunk}")),
            "unexpected last panic: {}",
            err.last_panic
        );
    }
}
