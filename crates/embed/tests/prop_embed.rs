//! Property-based tests for the embedding learner's supporting structures.

use distger_embed::negative::NegativeTable;
use distger_embed::sync::select_sync_ranks;
use distger_embed::{Embeddings, SyncStrategy, Vocab};
use distger_walks::rng::SplitMix64;
use proptest::prelude::*;

proptest! {
    /// The frequency-ordered vocabulary is a bijection between nodes and
    /// ranks, with non-increasing frequencies by rank.
    #[test]
    fn vocab_is_bijective_and_sorted(freqs in prop::collection::vec(0u64..1000, 1..200)) {
        let vocab = Vocab::from_frequencies(&freqs);
        prop_assert_eq!(vocab.len(), freqs.len());
        for node in 0..freqs.len() as u32 {
            prop_assert_eq!(vocab.node_at(vocab.rank_of(node)), node);
            prop_assert_eq!(vocab.freq_at(vocab.rank_of(node)), freqs[node as usize]);
        }
        prop_assert!(vocab.frequencies().windows(2).all(|w| w[0] >= w[1]));
    }

    /// Hotness blocks tile the rank space exactly once and group equal
    /// frequencies.
    #[test]
    fn hotness_blocks_tile_rank_space(freqs in prop::collection::vec(0u64..50, 1..150)) {
        let vocab = Vocab::from_frequencies(&freqs);
        let blocks = vocab.hotness_blocks();
        let mut expected_start = 0u32;
        for &(start, end) in &blocks {
            prop_assert_eq!(start, expected_start, "blocks must be contiguous");
            prop_assert!(end > start);
            let f = vocab.freq_at(start);
            for rank in start..end {
                prop_assert_eq!(vocab.freq_at(rank), f);
            }
            if end < vocab.len() as u32 {
                prop_assert_ne!(vocab.freq_at(end), f, "maximal runs only");
            }
            expected_start = end;
        }
        prop_assert_eq!(expected_start as usize, freqs.len());
    }

    /// The negative table only samples ranks whose frequency is non-zero
    /// (unless the whole corpus is empty) and always returns valid ranks.
    #[test]
    fn negative_table_samples_valid_ranks(
        freqs in prop::collection::vec(0u64..100, 1..80),
        seeds in prop::collection::vec(any::<u64>(), 50),
    ) {
        let vocab = Vocab::from_frequencies(&freqs);
        let table = NegativeTable::with_size(&vocab, 4096);
        let any_nonzero = freqs.iter().any(|&f| f > 0);
        for seed in seeds {
            let rank = table.sample(seed);
            prop_assert!((rank as usize) < freqs.len());
            if any_nonzero {
                prop_assert!(vocab.freq_at(rank) > 0, "zero-frequency rank sampled");
            }
        }
    }

    /// Hotness-block synchronization selects exactly one rank per non-empty
    /// block, each inside its block.
    #[test]
    fn hotness_sync_selects_one_rank_per_block(
        freqs in prop::collection::vec(0u64..20, 1..120),
        seed in any::<u64>(),
    ) {
        let vocab = Vocab::from_frequencies(&freqs);
        let mut rng = SplitMix64::new(seed);
        let ranks = select_sync_ranks(SyncStrategy::HotnessBlock, &vocab, &mut rng);
        let nonzero_blocks: Vec<(u32, u32)> = vocab
            .hotness_blocks()
            .into_iter()
            .filter(|&(s, _)| vocab.freq_at(s) > 0)
            .collect();
        prop_assert_eq!(ranks.len(), nonzero_blocks.len());
        for (rank, (start, end)) in ranks.iter().zip(nonzero_blocks) {
            prop_assert!(*rank >= start && *rank < end);
        }
    }

    /// Embedding similarity helpers: dot is symmetric, cosine stays in
    /// [-1, 1] and cosine of a vector with itself is 1 (when non-zero).
    #[test]
    fn embedding_similarities_are_consistent(
        data in prop::collection::vec(-1.0f32..1.0, 8..64),
    ) {
        let dim = 4;
        let usable = (data.len() / dim) * dim;
        let emb = Embeddings::from_node_major(data[..usable].to_vec(), dim);
        let n = emb.num_nodes() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert!((emb.dot(u, v) - emb.dot(v, u)).abs() < 1e-5);
                let c = emb.cosine(u, v);
                prop_assert!((-1.0001..=1.0001).contains(&c));
            }
            let norm: f32 = emb.vector(u).iter().map(|x| x * x).sum();
            if norm > 1e-6 {
                prop_assert!((emb.cosine(u, u) - 1.0).abs() < 1e-4);
            }
        }
    }
}

/// A fresh temp-file path per call, so parallel proptest cases never collide.
fn scratch_file(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("distger_prop_embed");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Save→load round trip through both on-disk formats: the text format
    /// reproduces every value (display → parse of f32 is lossless), the
    /// binary store is defined to be bit-exact.
    #[test]
    fn save_load_round_trips_both_formats(
        data in prop::collection::vec(-1.0e3f32..1.0e3, 0..96),
        dim in 1usize..6,
    ) {
        let usable = (data.len() / dim) * dim;
        let emb = Embeddings::from_node_major(data[..usable].to_vec(), dim);

        let text = scratch_file("roundtrip.txt");
        emb.save_text(&text).unwrap();
        let from_text = Embeddings::load_text(&text).unwrap();
        prop_assert_eq!(&from_text, &emb);
        std::fs::remove_file(&text).ok();

        let binary = scratch_file("roundtrip.bin");
        emb.save_binary(&binary).unwrap();
        let from_binary = Embeddings::load_binary(&binary).unwrap();
        prop_assert_eq!(&from_binary, &emb);
        std::fs::remove_file(&binary).ok();
    }

    /// Any corruption of a binary store — a flipped byte anywhere, or a
    /// truncation at any length — must surface as an error, never a panic or
    /// a silently wrong result.
    #[test]
    fn corrupted_binary_store_errors_instead_of_panicking(
        data in prop::collection::vec(-10.0f32..10.0, 4..40),
        corrupt_at in any::<u32>(),
        flip in 1u16..256,
        truncate_to in any::<u32>(),
    ) {
        let usable = (data.len() / 4) * 4;
        let emb = Embeddings::from_node_major(data[..usable].to_vec(), 4);
        let path = scratch_file("corrupt.bin");
        emb.save_binary(&path).unwrap();
        let original = std::fs::read(&path).unwrap();

        // Single flipped byte: either caught (header/size/checksum error) or
        // — only for flips inside the unvalidated trailing bits of a value —
        // impossible, since every byte is covered by magic, version, dim,
        // count, checksum, or the checksummed payload.
        let mut flipped = original.clone();
        let at = corrupt_at as usize % flipped.len();
        flipped[at] ^= flip as u8;
        std::fs::write(&path, &flipped).unwrap();
        prop_assert!(Embeddings::load_binary(&path).is_err(),
            "flip at byte {at} loaded successfully");

        // Truncation to any strictly shorter length.
        let keep = truncate_to as usize % original.len();
        std::fs::write(&path, &original[..keep]).unwrap();
        prop_assert!(Embeddings::load_binary(&path).is_err(),
            "truncation to {keep} bytes loaded successfully");
        std::fs::remove_file(&path).ok();
    }
}
