//! Multi-label node classification (§6.4, Figure 9).
//!
//! The paper trains a one-vs-rest logistic-regression classifier with L2
//! regularization on the node embeddings and reports micro-/macro-averaged F1
//! over training ratios. Following the standard protocol of DeepWalk /
//! node2vec, the classifier predicts, for every test node, as many labels as
//! the node truly has (top-`k` by score).

use crate::metrics::{macro_f1, micro_f1, LabelCounts};
use distger_embed::Embeddings;
use distger_graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of one classification evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassificationScores {
    /// Micro-averaged F1.
    pub micro_f1: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
}

/// One-vs-rest logistic regression trained by mini-batch-free SGD with L2
/// regularization.
#[derive(Clone, Debug)]
pub struct OneVsRestLogReg {
    num_labels: usize,
    dim: usize,
    /// `num_labels × (dim + 1)` weights (last column is the bias).
    weights: Vec<f64>,
}

impl OneVsRestLogReg {
    /// Trains the classifier on `(features, labels)` of the training nodes.
    pub fn train(
        features: &[&[f32]],
        labels: &[&[u16]],
        num_labels: usize,
        epochs: usize,
        learning_rate: f64,
        l2: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(features.len(), labels.len());
        let dim = features.first().map_or(0, |f| f.len());
        let mut model = Self {
            num_labels,
            dim,
            weights: vec![0.0; num_labels * (dim + 1)],
        };
        if features.is_empty() || num_labels == 0 {
            return model;
        }
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for epoch in 0..epochs {
            order.shuffle(&mut rng);
            let lr = learning_rate / (1.0 + epoch as f64 * 0.1);
            for &i in &order {
                let x = features[i];
                for label in 0..num_labels {
                    let y = if labels[i].contains(&(label as u16)) {
                        1.0
                    } else {
                        0.0
                    };
                    let p = model.probability(label, x);
                    let err = y - p;
                    let w = &mut model.weights[label * (dim + 1)..(label + 1) * (dim + 1)];
                    for d in 0..dim {
                        w[d] += lr * (err * x[d] as f64 - l2 * w[d]);
                    }
                    w[dim] += lr * err; // bias
                }
            }
        }
        model
    }

    /// `P(label | x)` under the logistic model.
    pub fn probability(&self, label: usize, x: &[f32]) -> f64 {
        let w = &self.weights[label * (self.dim + 1)..(label + 1) * (self.dim + 1)];
        let mut z = w[self.dim];
        for d in 0..self.dim {
            z += w[d] * x[d] as f64;
        }
        1.0 / (1.0 + (-z).exp())
    }

    /// Returns the `k` highest-scoring labels for `x`.
    pub fn predict_top_k(&self, x: &[f32], k: usize) -> Vec<u16> {
        let mut scored: Vec<(f64, u16)> = (0..self.num_labels)
            .map(|l| (self.probability(l, x), l as u16))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().take(k).map(|(_, l)| l).collect()
    }
}

/// Evaluates multi-label node classification at a given training ratio,
/// averaged over `trials` random train/test splits (the paper uses 50; the
/// harness uses fewer to stay laptop-friendly).
pub fn evaluate_classification(
    embeddings: &Embeddings,
    labels: &[Vec<u16>],
    num_labels: usize,
    train_ratio: f64,
    trials: usize,
    seed: u64,
) -> ClassificationScores {
    assert!(embeddings.num_nodes() >= labels.len());
    assert!((0.0..1.0).contains(&train_ratio) && train_ratio > 0.0);
    let n = labels.len();
    let mut micro_sum = 0.0;
    let mut macro_sum = 0.0;
    for trial in 0..trials.max(1) {
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(trial as u64));
        order.shuffle(&mut rng);
        let train_count = ((n as f64 * train_ratio).round() as usize).clamp(1, n - 1);
        let (train_idx, test_idx) = order.split_at(train_count);

        let train_features: Vec<&[f32]> = train_idx
            .iter()
            .map(|&i| embeddings.vector(i as NodeId))
            .collect();
        let train_labels: Vec<&[u16]> = train_idx.iter().map(|&i| labels[i].as_slice()).collect();
        let model = OneVsRestLogReg::train(
            &train_features,
            &train_labels,
            num_labels,
            30,
            0.1,
            1e-4,
            seed ^ trial as u64,
        );

        let mut counts = LabelCounts::new(num_labels);
        for &i in test_idx {
            let truth = &labels[i];
            let predicted = model.predict_top_k(embeddings.vector(i as NodeId), truth.len());
            counts.record(truth, &predicted);
        }
        micro_sum += micro_f1(&counts);
        macro_sum += macro_f1(&counts);
    }
    ClassificationScores {
        micro_f1: micro_sum / trials.max(1) as f64,
        macro_f1: macro_sum / trials.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic embeddings where the label is linearly separable.
    fn separable_setup(n: usize) -> (Embeddings, Vec<Vec<u16>>) {
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let cluster = (i % 3) as u16;
            let angle = cluster as f32 * 2.0944; // 120° apart
            let jitter = (i as f32 * 0.37).sin() * 0.1;
            data.push(angle.cos() + jitter);
            data.push(angle.sin() - jitter);
            labels.push(vec![cluster]);
        }
        (Embeddings::from_node_major(data, 2), labels)
    }

    #[test]
    fn logreg_learns_separable_labels() {
        let (emb, labels) = separable_setup(150);
        let scores = evaluate_classification(&emb, &labels, 3, 0.5, 3, 7);
        assert!(scores.micro_f1 > 0.9, "micro {}", scores.micro_f1);
        assert!(scores.macro_f1 > 0.9, "macro {}", scores.macro_f1);
    }

    #[test]
    fn random_embeddings_score_poorly() {
        let n = 120;
        let data: Vec<f32> = (0..n * 4)
            .map(|i| ((i as f32 * 12.9898).sin() * 43758.547).fract() - 0.5)
            .collect();
        let emb = Embeddings::from_node_major(data, 4);
        let labels: Vec<Vec<u16>> = (0..n).map(|i| vec![(i % 4) as u16]).collect();
        let scores = evaluate_classification(&emb, &labels, 4, 0.5, 2, 3);
        assert!(
            scores.micro_f1 < 0.6,
            "uninformative embeddings should not classify well, micro {}",
            scores.micro_f1
        );
    }

    #[test]
    fn predict_top_k_returns_k_distinct_labels() {
        let (emb, labels) = separable_setup(60);
        let feats: Vec<&[f32]> = (0..60).map(|i| emb.vector(i as NodeId)).collect();
        let labs: Vec<&[u16]> = labels.iter().map(|l| l.as_slice()).collect();
        let model = OneVsRestLogReg::train(&feats, &labs, 3, 20, 0.1, 1e-4, 1);
        let top2 = model.predict_top_k(emb.vector(0), 2);
        assert_eq!(top2.len(), 2);
        assert_ne!(top2[0], top2[1]);
        for p in model.predict_top_k(emb.vector(5), 3) {
            assert!(p < 3);
        }
    }

    #[test]
    fn empty_training_set_yields_default_model() {
        let model = OneVsRestLogReg::train(&[], &[], 3, 5, 0.1, 0.0, 1);
        assert_eq!(model.predict_top_k(&[0.0, 0.0], 1).len(), 1);
    }

    #[test]
    fn multi_label_nodes_are_supported() {
        let (emb, mut labels) = separable_setup(90);
        // Give every 10th node a second label.
        for i in (0..90).step_by(10) {
            let extra = ((i / 10) % 3) as u16;
            if !labels[i].contains(&extra) {
                labels[i].push(extra);
            }
        }
        let scores = evaluate_classification(&emb, &labels, 3, 0.6, 2, 11);
        assert!(scores.micro_f1 > 0.7);
    }
}
