//! Downstream-task evaluation for the DistGER reproduction (§6.4).
//!
//! * [`link_prediction`] — the paper's primary effectiveness metric: 50 % of
//!   the edges are removed as positive test pairs, an equal number of
//!   non-edges are sampled as negatives, and edges are scored by the
//!   dot-product of the endpoint embeddings; quality is the AUC.
//! * [`classification`] — multi-label node classification with a one-vs-rest
//!   logistic-regression classifier, reported as micro- and macro-averaged F1
//!   over a range of training ratios (Figure 9).
//! * [`recall`] — `recall@k` of the serving layer's approximate (LSH) top-k
//!   backend against the exact brute-force reference, the quality metric of
//!   the query engine in `distger-serve`.

pub mod classification;
pub mod link_prediction;
pub mod metrics;
pub mod recall;

pub use classification::{evaluate_classification, ClassificationScores};
pub use link_prediction::{auc_score, evaluate_link_prediction, split_edges, EdgeSplit};
pub use metrics::{macro_f1, micro_f1, LabelCounts};
pub use recall::{backend_recall, recall_at_k, RecallReport};
