//! Link prediction (§6.4).
//!
//! Following the paper (and [17, 18, 53, 69]): half of the edges are removed
//! uniformly at random as positive test pairs, the remaining edges form the
//! training graph on which embeddings are learned, an equal number of
//! non-adjacent node pairs are sampled as negative test pairs, and a pair
//! `(u, v)` is scored by `φ(u) · φ(v)`. Effectiveness is the area under the
//! ROC curve (AUC) — higher is better.

use distger_embed::Embeddings;
use distger_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A train/test split of the edge set for link prediction.
#[derive(Clone, Debug)]
pub struct EdgeSplit {
    /// The graph containing only the retained (training) edges.
    pub train_graph: CsrGraph,
    /// Removed edges — the positive test pairs.
    pub test_positive: Vec<(NodeId, NodeId)>,
    /// Sampled non-edges — the negative test pairs.
    pub test_negative: Vec<(NodeId, NodeId)>,
}

/// Removes `test_fraction` of the edges as positive test pairs and samples an
/// equal number of non-edges as negatives (the paper uses 0.5).
pub fn split_edges(graph: &CsrGraph, test_fraction: f64, seed: u64) -> EdgeSplit {
    assert!((0.0..1.0).contains(&test_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId, f32)> = graph.edges().collect();
    edges.shuffle(&mut rng);
    let test_count = (edges.len() as f64 * test_fraction).round() as usize;
    let (test, train) = edges.split_at(test_count.min(edges.len()));

    let mut builder = if graph.is_directed() {
        GraphBuilder::new_directed()
    } else {
        GraphBuilder::new_undirected()
    };
    builder.reserve_nodes(graph.num_nodes());
    for &(u, v, w) in train {
        if graph.is_weighted() {
            builder.add_weighted_edge(u, v, w);
        } else {
            builder.add_edge(u, v);
        }
    }
    let train_graph = builder.build();

    let n = graph.num_nodes() as NodeId;
    let mut test_negative = Vec::with_capacity(test.len());
    let mut guard = 0usize;
    while test_negative.len() < test.len() && guard < 100 * test.len().max(1) {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !graph.has_edge(u, v) {
            test_negative.push((u, v));
        }
    }

    EdgeSplit {
        train_graph,
        test_positive: test.iter().map(|&(u, v, _)| (u, v)).collect(),
        test_negative,
    }
}

/// Area under the ROC curve given scores of positive and negative examples
/// (Mann–Whitney U formulation; ties count one half).
pub fn auc_score(positive: &[f64], negative: &[f64]) -> f64 {
    if positive.is_empty() || negative.is_empty() {
        return 0.5;
    }
    // Sort all scores once and accumulate ranks of the positives.
    let mut all: Vec<(f64, bool)> = positive
        .iter()
        .map(|&s| (s, true))
        .chain(negative.iter().map(|&s| (s, false)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    // Average ranks over ties.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < all.len() {
        let mut j = i;
        while j + 1 < all.len() && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for item in all.iter().take(j + 1).skip(i) {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let np = positive.len() as f64;
    let nn = negative.len() as f64;
    (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn)
}

/// Scores an edge split with dot-product similarity and returns the AUC.
pub fn evaluate_link_prediction(embeddings: &Embeddings, split: &EdgeSplit) -> f64 {
    let score = |pairs: &[(NodeId, NodeId)]| -> Vec<f64> {
        pairs
            .iter()
            .map(|&(u, v)| embeddings.dot(u, v) as f64)
            .collect()
    };
    auc_score(&score(&split.test_positive), &score(&split.test_negative))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_graph::barabasi_albert;

    #[test]
    fn auc_perfect_and_random_and_inverted() {
        assert_eq!(auc_score(&[2.0, 3.0, 4.0], &[0.0, 1.0]), 1.0);
        assert_eq!(auc_score(&[0.0, 1.0], &[2.0, 3.0, 4.0]), 0.0);
        assert_eq!(auc_score(&[1.0, 1.0], &[1.0, 1.0]), 0.5);
        assert_eq!(auc_score(&[], &[1.0]), 0.5);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        let auc = auc_score(&[0.9, 0.7, 0.3], &[0.8, 0.2, 0.1]);
        // Positives rank 1st, 3rd, 5th from the top → AUC = 7/9.
        assert!((auc - 7.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn split_edges_preserves_counts_and_disjointness() {
        let g = barabasi_albert(300, 4, 3);
        let split = split_edges(&g, 0.5, 7);
        let expected_test = (g.num_edges() as f64 * 0.5).round() as usize;
        assert_eq!(split.test_positive.len(), expected_test);
        assert_eq!(split.test_negative.len(), expected_test);
        assert_eq!(
            split.train_graph.num_edges() + split.test_positive.len(),
            g.num_edges()
        );
        // Positive test edges must not appear in the training graph; negatives
        // must not be edges of the original graph at all.
        for &(u, v) in &split.test_positive {
            assert!(g.has_edge(u, v));
            assert!(!split.train_graph.has_edge(u, v));
        }
        for &(u, v) in &split.test_negative {
            assert!(!g.has_edge(u, v));
            assert_ne!(u, v);
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let g = barabasi_albert(100, 3, 1);
        let a = split_edges(&g, 0.3, 5);
        let b = split_edges(&g, 0.3, 5);
        assert_eq!(a.test_positive, b.test_positive);
        assert_eq!(a.test_negative, b.test_negative);
        let c = split_edges(&g, 0.3, 6);
        assert_ne!(a.test_positive, c.test_positive);
    }

    #[test]
    fn good_embeddings_score_high_auc() {
        // Hand-crafted embeddings where adjacent nodes share a direction:
        // two clusters, edges only inside clusters.
        let mut b = GraphBuilder::new_undirected();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                if (i < 5) == (j < 5) {
                    b.add_edge(i, j);
                }
            }
        }
        let g = b.build();
        let mut data = Vec::new();
        for i in 0..10 {
            if i < 5 {
                data.extend_from_slice(&[1.0, 0.0]);
            } else {
                data.extend_from_slice(&[0.0, 1.0]);
            }
        }
        let e = Embeddings::from_node_major(data, 2);
        let split = split_edges(&g, 0.5, 2);
        let auc = evaluate_link_prediction(&e, &split);
        assert!(
            auc > 0.9,
            "cluster-aligned embeddings should give high AUC, got {auc}"
        );
    }
}
