//! Micro- and macro-averaged F1 scores for multi-label classification.
//!
//! Following the paper (§6.4): Micro-F1 gives equal weight to every test
//! instance (global true/false positive counts), Macro-F1 gives equal weight
//! to every label category (per-label F1, then averaged).

/// Per-label true-positive / false-positive / false-negative counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LabelCounts {
    tp: Vec<u64>,
    fp: Vec<u64>,
    fne: Vec<u64>,
}

impl LabelCounts {
    /// Creates zeroed counts for `num_labels` labels.
    pub fn new(num_labels: usize) -> Self {
        Self {
            tp: vec![0; num_labels],
            fp: vec![0; num_labels],
            fne: vec![0; num_labels],
        }
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.tp.len()
    }

    /// Records one instance given its true and predicted label sets.
    pub fn record(&mut self, truth: &[u16], predicted: &[u16]) {
        for &l in predicted {
            if truth.contains(&l) {
                self.tp[l as usize] += 1;
            } else {
                self.fp[l as usize] += 1;
            }
        }
        for &l in truth {
            if !predicted.contains(&l) {
                self.fne[l as usize] += 1;
            }
        }
    }

    /// Per-label `(tp, fp, fn)` triple.
    pub fn label(&self, l: usize) -> (u64, u64, u64) {
        (self.tp[l], self.fp[l], self.fne[l])
    }
}

fn f1(tp: u64, fp: u64, fne: u64) -> f64 {
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fne) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Micro-averaged F1: compute precision/recall from global counts.
pub fn micro_f1(counts: &LabelCounts) -> f64 {
    let tp: u64 = counts.tp.iter().sum();
    let fp: u64 = counts.fp.iter().sum();
    let fne: u64 = counts.fne.iter().sum();
    f1(tp, fp, fne)
}

/// Macro-averaged F1: mean of the per-label F1 scores over labels that occur
/// in the truth or the predictions.
pub fn macro_f1(counts: &LabelCounts) -> f64 {
    let mut sum = 0.0;
    let mut active = 0usize;
    for l in 0..counts.num_labels() {
        let (tp, fp, fne) = counts.label(l);
        if tp + fp + fne == 0 {
            continue;
        }
        sum += f1(tp, fp, fne);
        active += 1;
    }
    if active == 0 {
        0.0
    } else {
        sum / active as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_give_f1_one() {
        let mut c = LabelCounts::new(3);
        c.record(&[0, 2], &[0, 2]);
        c.record(&[1], &[1]);
        assert_eq!(micro_f1(&c), 1.0);
        assert_eq!(macro_f1(&c), 1.0);
    }

    #[test]
    fn completely_wrong_predictions_give_zero() {
        let mut c = LabelCounts::new(2);
        c.record(&[0], &[1]);
        c.record(&[1], &[0]);
        assert_eq!(micro_f1(&c), 0.0);
        assert_eq!(macro_f1(&c), 0.0);
    }

    #[test]
    fn micro_weights_instances_macro_weights_labels() {
        let mut c = LabelCounts::new(2);
        // Label 0: 9 correct instances; label 1: 1 incorrect instance.
        for _ in 0..9 {
            c.record(&[0], &[0]);
        }
        c.record(&[1], &[0]);
        let micro = micro_f1(&c);
        let macro_ = macro_f1(&c);
        assert!(micro > 0.85, "micro {micro}");
        // Macro averages label 0 (high) with label 1 (zero) → much lower.
        assert!(macro_ < micro, "macro {macro_} must be below micro {micro}");
    }

    #[test]
    fn unused_labels_are_ignored_by_macro() {
        let mut c = LabelCounts::new(10);
        c.record(&[0], &[0]);
        assert_eq!(macro_f1(&c), 1.0);
    }

    #[test]
    fn partial_overlap_multi_label() {
        let mut c = LabelCounts::new(3);
        c.record(&[0, 1], &[1, 2]);
        // tp: label1; fp: label2; fn: label0.
        assert_eq!(c.label(1), (1, 0, 0));
        assert_eq!(c.label(2), (0, 1, 0));
        assert_eq!(c.label(0), (0, 0, 1));
        let micro = micro_f1(&c);
        assert!((micro - 0.5).abs() < 1e-12);
    }
}
