//! `recall@k` of an approximate query backend against the exact reference.
//!
//! The serving layer's LSH backend trades recall for throughput; this module
//! quantifies that trade the way the ANN literature does: for each query,
//! the fraction of the *exact* top-k (ground truth, recall 1.0 by
//! construction) the approximate backend retrieved, averaged over the batch.
//! Because every backend breaks score ties deterministically by node id (see
//! `distger_serve::topk`), recall needs no tie tolerance: the exact backend
//! evaluated against itself is exactly 1.0.

use distger_serve::{EmbeddingIndex, QueryBackend, QueryBatch, QueryEngine, ServeConfig, TopK};
use std::collections::HashSet;

/// Mean fraction of each truth top-k retrieved by the corresponding
/// approximate result. Queries whose truth set is empty (an empty index)
/// count as fully recalled. Returns 1.0 for an empty batch.
///
/// # Panics
/// Panics if the two slices have different lengths (they must answer the
/// same batch).
pub fn recall_at_k(truth: &[TopK], approx: &[TopK]) -> f64 {
    assert_eq!(
        truth.len(),
        approx.len(),
        "truth and approximate results must answer the same batch"
    );
    if truth.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for (t, a) in truth.iter().zip(approx) {
        if t.is_empty() {
            total += 1.0;
            continue;
        }
        let found: HashSet<_> = a.nodes().collect();
        let hit = t.nodes().filter(|node| found.contains(node)).count();
        total += hit as f64 / t.len() as f64;
    }
    total / truth.len() as f64
}

/// Outcome of [`backend_recall`]: the measured recall plus the two result
/// sets, so callers (the bench harness, examples) can reuse them.
#[derive(Clone, Debug)]
pub struct RecallReport {
    /// `recall@k` of `config.backend` against the exact reference.
    pub recall: f64,
    /// The exact (ground-truth) per-query results.
    pub exact: Vec<TopK>,
    /// The evaluated backend's per-query results.
    pub approx: Vec<TopK>,
}

/// Runs `config.backend` and the exact reference over the same batch and
/// index, and measures the backend's `recall@k` against the reference. The
/// exact backend evaluated this way is 1.0 identically.
pub fn backend_recall(
    index: &EmbeddingIndex,
    batch: &QueryBatch,
    config: &ServeConfig,
) -> RecallReport {
    let exact_engine = QueryEngine::new(
        index.clone(),
        ServeConfig {
            backend: QueryBackend::Exact,
            ..*config
        },
    );
    let exact = exact_engine.top_k(batch).results;
    let approx = if config.backend == QueryBackend::Exact {
        exact.clone()
    } else {
        QueryEngine::new(index.clone(), *config)
            .top_k(batch)
            .results
    };
    RecallReport {
        recall: recall_at_k(&exact, &approx),
        exact,
        approx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_serve::gaussian_clusters;

    fn fixture() -> (EmbeddingIndex, QueryBatch) {
        let index = EmbeddingIndex::build(&gaussian_clusters(400, 24, 8, 0.08, 21));
        let nodes: Vec<u32> = (0..400).step_by(7).collect();
        let batch = QueryBatch::from_nodes(&index, &nodes);
        (index, batch)
    }

    #[test]
    fn exact_backend_recall_is_identically_one() {
        let (index, batch) = fixture();
        let report = backend_recall(
            &index,
            &batch,
            &ServeConfig {
                backend: QueryBackend::Exact,
                k: 10,
                ..ServeConfig::default()
            },
        );
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.exact.len(), batch.len());
    }

    #[test]
    fn lsh_recall_clears_point_nine_on_the_cluster_fixture() {
        let (index, batch) = fixture();
        let report = backend_recall(
            &index,
            &batch,
            &ServeConfig {
                backend: QueryBackend::Lsh,
                k: 10,
                ..ServeConfig::default()
            },
        );
        assert!(
            report.recall >= 0.9,
            "LSH recall@10 on the Gaussian-cluster fixture fell to {}",
            report.recall
        );
        // And it is a real approximation, not a disguised full scan: the
        // result sets are allowed to differ.
        assert!(report.recall <= 1.0);
    }

    #[test]
    fn recall_counts_partial_overlap() {
        let (index, _) = fixture();
        let engine = QueryEngine::new(
            index,
            ServeConfig {
                backend: QueryBackend::Exact,
                k: 4,
                ..ServeConfig::default()
            },
        );
        let mut batch = QueryBatch::new(engine.index().dim());
        batch.push(engine.index().unit_vector(0));
        batch.push(engine.index().unit_vector(1));
        let truth = engine.top_k(&batch).results;
        // Approx answers query 0 perfectly and query 1 not at all.
        let approx = vec![truth[0].clone(), truth[0].clone()];
        let overlap: f64 = {
            let found: std::collections::HashSet<_> = truth[0].nodes().collect();
            truth[1].nodes().filter(|n| found.contains(n)).count() as f64 / truth[1].len() as f64
        };
        let expected = (1.0 + overlap) / 2.0;
        assert!((recall_at_k(&truth, &approx) - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_perfect_recall() {
        assert_eq!(recall_at_k(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "same batch")]
    fn mismatched_batches_rejected() {
        let (index, batch) = fixture();
        let engine = QueryEngine::new(index, ServeConfig::default());
        let results = engine.top_k(&batch).results;
        recall_at_k(&results, &results[..1]);
    }
}
