//! Property-based tests for the evaluation metrics.

use distger_eval::{auc_score, macro_f1, micro_f1, split_edges, LabelCounts};
use distger_graph::GraphBuilder;
use proptest::prelude::*;

proptest! {
    /// AUC is bounded, anti-symmetric under swapping the classes, and equals
    /// 1.0 / 0.0 for perfectly separated scores.
    #[test]
    fn auc_properties(
        pos in prop::collection::vec(-100.0f64..100.0, 1..60),
        neg in prop::collection::vec(-100.0f64..100.0, 1..60),
    ) {
        let auc = auc_score(&pos, &neg);
        prop_assert!((0.0..=1.0).contains(&auc));
        let swapped = auc_score(&neg, &pos);
        prop_assert!((auc + swapped - 1.0).abs() < 1e-9, "AUC must be anti-symmetric");
    }

    /// Shifting every positive score above every negative score yields AUC 1.
    #[test]
    fn auc_of_separated_scores_is_one(
        pos in prop::collection::vec(0.0f64..1.0, 1..40),
        neg in prop::collection::vec(0.0f64..1.0, 1..40),
    ) {
        let shifted: Vec<f64> = pos.iter().map(|p| p + 2.0).collect();
        prop_assert_eq!(auc_score(&shifted, &neg), 1.0);
        prop_assert_eq!(auc_score(&neg, &shifted), 0.0);
    }

    /// F1 scores are bounded and perfect predictions give exactly 1.
    #[test]
    fn f1_bounds(truth in prop::collection::vec(0u16..6, 1..100)) {
        let mut perfect = LabelCounts::new(6);
        let mut shifted = LabelCounts::new(6);
        for &t in &truth {
            perfect.record(&[t], &[t]);
            shifted.record(&[t], &[(t + 1) % 6]);
        }
        prop_assert_eq!(micro_f1(&perfect), 1.0);
        prop_assert_eq!(macro_f1(&perfect), 1.0);
        prop_assert_eq!(micro_f1(&shifted), 0.0);
        let mixed = {
            let mut c = LabelCounts::new(6);
            for (i, &t) in truth.iter().enumerate() {
                let predicted = if i % 2 == 0 { t } else { (t + 1) % 6 };
                c.record(&[t], &[predicted]);
            }
            c
        };
        prop_assert!((0.0..=1.0).contains(&micro_f1(&mixed)));
        prop_assert!((0.0..=1.0).contains(&macro_f1(&mixed)));
    }

    /// Edge splitting conserves edges, keeps the test sets disjoint from the
    /// training graph, and never fabricates edges.
    #[test]
    fn edge_split_conserves_edges(
        edges in prop::collection::vec((0u32..30, 0u32..30), 5..120),
        fraction in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut b = GraphBuilder::new_undirected();
        for (u, v) in edges { b.add_edge(u, v); }
        b.reserve_nodes(30);
        let g = b.build();
        prop_assume!(g.num_edges() >= 4);
        let split = split_edges(&g, fraction, seed);
        prop_assert_eq!(
            split.train_graph.num_edges() + split.test_positive.len(),
            g.num_edges()
        );
        for &(u, v) in &split.test_positive {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(!split.train_graph.has_edge(u, v));
        }
        for &(u, v) in &split.test_negative {
            prop_assert!(!g.has_edge(u, v));
            prop_assert_ne!(u, v);
        }
        prop_assert!(split.test_negative.len() <= split.test_positive.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serving recall over arbitrary embeddings: the exact backend against
    /// itself is identically 1.0, the LSH backend is in [0, 1] and fully
    /// deterministic (same index + config → same recall), and every LSH
    /// result is a subset of the node universe with true cosine scores in
    /// descending, id-tie-broken order.
    #[test]
    fn recall_properties_on_arbitrary_embeddings(
        data in prop::collection::vec(-2.0f32..2.0, 32..160),
        seed in 0u64..50,
    ) {
        use distger_eval::{backend_recall, recall_at_k};
        use distger_serve::{EmbeddingIndex, LshConfig, QueryBackend, QueryBatch, ServeConfig};

        let dim = 8;
        let usable = (data.len() / dim) * dim;
        let emb = distger_embed::Embeddings::from_node_major(data[..usable].to_vec(), dim);
        let index = EmbeddingIndex::build(&emb);
        let nodes: Vec<u32> = (0..index.num_nodes() as u32).step_by(3).collect();
        let batch = QueryBatch::from_nodes(&index, &nodes);
        let config = ServeConfig {
            backend: QueryBackend::Lsh,
            k: 5,
            threads: 2,
            lsh: LshConfig { seed, ..LshConfig::default() },
        };

        let report = backend_recall(&index, &batch, &config);
        prop_assert!((0.0..=1.0).contains(&report.recall));
        prop_assert_eq!(recall_at_k(&report.exact, &report.exact), 1.0);
        let again = backend_recall(&index, &batch, &config);
        prop_assert_eq!(report.recall, again.recall);

        for top in &report.approx {
            let scores: Vec<f32> = top.neighbors().iter().map(|n| n.score).collect();
            for pair in top.neighbors().windows(2) {
                let ordered = pair[0].score > pair[1].score
                    || (pair[0].score == pair[1].score && pair[0].node < pair[1].node);
                prop_assert!(ordered, "unsorted results: {scores:?}");
            }
            for n in top.neighbors() {
                prop_assert!((n.node as usize) < index.num_nodes());
            }
        }
    }
}
