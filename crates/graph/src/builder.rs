//! Incremental edge-list graph construction.

use crate::csr::CsrGraph;
use crate::{EdgeWeight, NodeId};

/// Builds a [`CsrGraph`] from a stream of edges.
///
/// Duplicate edges and self-loops are dropped (the paper's random-walk models
/// assume simple graphs). For undirected graphs each added edge is stored in
/// both directions.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId, EdgeWeight)>,
    directed: bool,
    weighted: bool,
    max_node: Option<NodeId>,
}

impl GraphBuilder {
    /// Creates a builder for an undirected, unweighted graph.
    pub fn new_undirected() -> Self {
        Self::new(false)
    }

    /// Creates a builder for a directed, unweighted graph.
    pub fn new_directed() -> Self {
        Self::new(true)
    }

    fn new(directed: bool) -> Self {
        Self {
            edges: Vec::new(),
            directed,
            weighted: false,
            max_node: None,
        }
    }

    /// Ensures the built graph has at least `n` nodes even if some of them end
    /// up isolated.
    pub fn reserve_nodes(&mut self, n: usize) -> &mut Self {
        if n > 0 {
            let max = (n - 1) as NodeId;
            self.max_node = Some(self.max_node.map_or(max, |m| m.max(max)));
        }
        self
    }

    /// Adds an unweighted edge.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_weighted_edge(u, v, 1.0)
    }

    /// Adds a weighted edge. Mixing weighted and unweighted additions marks
    /// the whole graph as weighted (missing weights default to `1.0`).
    ///
    /// # Panics
    /// Panics on a negative, NaN or infinite weight. Random-walk transition
    /// probabilities are proportional to edge weights (`P(u→v) ∝ w(u,v)`), so
    /// such weights have no probabilistic meaning; rejecting them here keeps
    /// every downstream sampler — the linear scan and the alias tables alike —
    /// free of silent uniform fallbacks. A weight of exactly `0.0` is allowed
    /// and means "this edge is never taken" (unless *all* of a node's weights
    /// are zero, in which case samplers fall back to a uniform draw).
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, w: EdgeWeight) -> &mut Self {
        assert!(
            w.is_finite() && w >= 0.0,
            "edge ({u}, {v}) has weight {w}: edge weights must be finite and \
             non-negative (transition probabilities are proportional to weights)"
        );
        if u == v {
            return self; // drop self-loops
        }
        if w != 1.0 {
            self.weighted = true;
        }
        self.edges.push((u, v, w));
        let hi = u.max(v);
        self.max_node = Some(self.max_node.map_or(hi, |m| m.max(hi)));
        self
    }

    /// Adds every edge from an iterator of `(u, v)` pairs.
    pub fn extend_edges(&mut self, iter: impl IntoIterator<Item = (NodeId, NodeId)>) -> &mut Self {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of edges added so far (before deduplication).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edge has been added yet.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Marks the graph as weighted even if every weight is `1.0`.
    pub fn force_weighted(&mut self) -> &mut Self {
        self.weighted = true;
        self
    }

    /// Consumes the builder and produces the CSR graph.
    pub fn build(&self) -> CsrGraph {
        let n = self.max_node.map_or(0, |m| m as usize + 1);

        // Materialize arcs: one per direction for undirected graphs.
        let mut arcs: Vec<(NodeId, NodeId, EdgeWeight)> =
            Vec::with_capacity(self.edges.len() * if self.directed { 1 } else { 2 });
        for &(u, v, w) in &self.edges {
            arcs.push((u, v, w));
            if !self.directed {
                arcs.push((v, u, w));
            }
        }
        arcs.sort_unstable_by_key(|&(u, v, _)| (u, v));
        arcs.dedup_by_key(|&mut (u, v, _)| (u, v));

        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = arcs.iter().map(|&(_, v, _)| v).collect();
        let weights = if self.weighted {
            Some(arcs.iter().map(|&(_, _, w)| w).collect())
        } else {
            None
        };

        let num_edges = if self.directed {
            arcs.len()
        } else {
            arcs.len() / 2
        };
        CsrGraph::from_parts(offsets, targets, weights, self.directed, num_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_and_self_loops_dropped() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate of the same undirected edge
        b.add_edge(0, 1); // exact duplicate
        b.add_edge(2, 2); // self loop
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn reserve_nodes_creates_isolated_nodes() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1);
        b.reserve_nodes(10);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn weighted_edges_round_trip() {
        let mut b = GraphBuilder::new_undirected();
        b.add_weighted_edge(0, 1, 2.5);
        b.add_weighted_edge(1, 2, 4.0);
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(1, 0), Some(2.5));
        assert_eq!(g.edge_weight(2, 1), Some(4.0));
    }

    #[test]
    fn directed_builder_keeps_direction() {
        let mut b = GraphBuilder::new_directed();
        b.add_edge(3, 1);
        let g = b.build();
        assert_eq!(g.num_nodes(), 4);
        assert!(g.has_edge(3, 1));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn extend_edges_builds_path() {
        let mut b = GraphBuilder::new_undirected();
        b.extend_edges((0..5u32).map(|i| (i, i + 1)));
        let g = b.build();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn negative_weights_are_rejected() {
        GraphBuilder::new_undirected().add_weighted_edge(0, 1, -2.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn nan_weights_are_rejected() {
        GraphBuilder::new_undirected().add_weighted_edge(0, 1, f32::NAN);
    }

    #[test]
    fn zero_weights_are_allowed() {
        let mut b = GraphBuilder::new_undirected();
        b.add_weighted_edge(0, 1, 0.0);
        b.add_weighted_edge(1, 2, 2.0);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(0.0));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new_undirected().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(GraphBuilder::new_undirected().is_empty());
    }
}
