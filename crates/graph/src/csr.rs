//! Compressed Sparse Row graph storage.
//!
//! The paper (§2) stores graphs in CSR form: directed edges are stored with
//! their source node, undirected edges are stored twice (once per direction),
//! and a weighted edge stores a `(destination, weight)` tuple. Adjacency lists
//! are kept **sorted by destination**, which lets common-neighbour counting
//! and the Galloping intersection of MPGP run in sub-linear time.

use crate::intersect::galloping_intersect_count;
use crate::{EdgeWeight, NodeId};

/// A Compressed Sparse Row graph.
///
/// Invariants (checked in debug builds and by property tests):
/// * `offsets.len() == num_nodes + 1`, `offsets[0] == 0`,
///   `offsets[num_nodes] == targets.len()`.
/// * offsets are non-decreasing.
/// * every adjacency slice `targets[offsets[u]..offsets[u+1]]` is sorted.
/// * `weights`, when present, has exactly `targets.len()` entries aligned with
///   `targets`, and every weight is **finite and non-negative** — random-walk
///   transition probabilities are proportional to weights, so a negative or
///   NaN weight has no probabilistic meaning. [`crate::GraphBuilder`] rejects
///   such weights at insertion time; [`CsrGraph::from_parts`] re-checks them.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Option<Vec<EdgeWeight>>,
    directed: bool,
    /// Number of *logical* edges: for undirected graphs this is half the
    /// number of stored arcs.
    num_edges: usize,
}

impl CsrGraph {
    /// Builds a CSR graph from pre-computed components.
    ///
    /// # Panics
    /// Panics if the CSR invariants do not hold.
    pub fn from_parts(
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        weights: Option<Vec<EdgeWeight>>,
        directed: bool,
        num_edges: usize,
    ) -> Self {
        assert!(
            !offsets.is_empty(),
            "offsets must contain at least one entry"
        );
        assert_eq!(offsets[0], 0, "first offset must be zero");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "last offset must equal the number of stored arcs"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        if let Some(w) = &weights {
            assert_eq!(w.len(), targets.len(), "weights must align with targets");
            assert!(
                w.iter().all(|x| x.is_finite() && *x >= 0.0),
                "edge weights must be finite and non-negative \
                 (transition probabilities are proportional to weights)"
            );
        }
        let graph = Self {
            offsets,
            targets,
            weights,
            directed,
            num_edges,
        };
        debug_assert!(graph.adjacency_sorted());
        graph
    }

    /// Returns an empty graph with `n` isolated nodes.
    pub fn empty(n: usize, directed: bool) -> Self {
        Self {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: None,
            directed,
            num_edges: 0,
        }
    }

    fn adjacency_sorted(&self) -> bool {
        (0..self.num_nodes()).all(|u| self.neighbors(u as NodeId).windows(2).all(|w| w[0] <= w[1]))
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of logical edges (undirected edges counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of stored arcs (directed adjacency entries).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Whether this graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether edges carry weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sorted adjacency list of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Weights aligned with [`Self::neighbors`]; `None` for unweighted graphs.
    #[inline]
    pub fn neighbor_weights(&self, u: NodeId) -> Option<&[EdgeWeight]> {
        let u = u as usize;
        self.weights
            .as_ref()
            .map(|w| &w[self.offsets[u]..self.offsets[u + 1]])
    }

    /// Range of arc slots owned by `u` in the flat arc arrays, i.e.
    /// `neighbors(u) == &arc_targets()[arc_range(u)]`. Lets per-arc side
    /// tables (e.g. the walk engine's alias tables) share this graph's CSR
    /// offsets instead of storing their own.
    #[inline]
    pub fn arc_range(&self, u: NodeId) -> std::ops::Range<usize> {
        let u = u as usize;
        self.offsets[u]..self.offsets[u + 1]
    }

    /// The full arc-aligned weight array (`None` for unweighted graphs).
    /// Slot `i` of this array weights the arc whose destination is slot `i`
    /// of the target array; per-node slices are addressed by
    /// [`Self::arc_range`].
    #[inline]
    pub fn arc_weights(&self) -> Option<&[EdgeWeight]> {
        self.weights.as_deref()
    }

    /// Weight of the arc `u -> v`, `1.0` when the graph is unweighted, `None`
    /// when the arc does not exist.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<EdgeWeight> {
        let adj = self.neighbors(u);
        let idx = adj.binary_search(&v).ok()?;
        Some(match &self.weights {
            Some(w) => w[self.offsets[u as usize] + idx],
            None => 1.0,
        })
    }

    /// Whether the arc `u -> v` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Number of common neighbours `|N(u) ∩ N(v)|` via Galloping intersection.
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        galloping_intersect_count(self.neighbors(u), self.neighbors(v))
    }

    /// Iterator over every stored arc `(u, v, weight)`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeWeight)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            let start = self.offsets[u as usize];
            self.neighbors(u).iter().enumerate().map(move |(i, &v)| {
                let w = self.weights.as_ref().map_or(1.0, |ws| ws[start + i]);
                (u, v, w)
            })
        })
    }

    /// Iterator over logical edges. For undirected graphs each edge `(u, v)`
    /// with `u <= v` is reported once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeWeight)> + '_ {
        let directed = self.directed;
        self.arcs().filter(move |&(u, v, _)| directed || u <= v)
    }

    /// Sum of all degrees (= number of stored arcs).
    pub fn total_degree(&self) -> usize {
        self.targets.len()
    }

    /// Nodes sorted by descending degree (ties broken by id). Used by the
    /// degree-aware streaming orders of MPGP.
    pub fn nodes_by_degree_desc(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.num_nodes() as NodeId).collect();
        nodes.sort_by_key(|&u| (std::cmp::Reverse(self.degree(u)), u));
        nodes
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Estimated resident memory of the CSR structure in bytes. Used by the
    /// Table 3 / Table 8 memory-footprint experiments.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<EdgeWeight>())
    }

    /// Returns a copy of this graph with uniformly random edge weights in
    /// `[lo, hi)`, mirroring the paper's §8.1 weighted-graph experiment
    /// (weights drawn uniformly at random from `[1, 5)`).
    ///
    /// For undirected graphs the weight of `(u, v)` equals the weight of
    /// `(v, u)`.
    pub fn with_random_weights(&self, lo: f32, hi: f32, seed: u64) -> Self {
        use rand::Rng;
        assert!(lo < hi, "weight range must be non-empty");
        assert!(lo >= 0.0, "edge weights must be non-negative");
        self.with_generated_weights(seed, |rng| rng.gen_range(lo..hi))
    }

    /// Returns a copy of this graph with heavy-tailed Pareto edge weights
    /// (`w = (1 − u)^(−1/α)`, minimum 1, shape `alpha`): the skewed-weight
    /// regime where a per-step linear scan over the adjacency list is at its
    /// worst and the alias-table sampler shines. Smaller `alpha` means a
    /// heavier tail (`alpha ≤ 2` has infinite variance).
    ///
    /// For undirected graphs the weight of `(u, v)` equals the weight of
    /// `(v, u)`.
    pub fn with_skewed_weights(&self, alpha: f32, seed: u64) -> Self {
        use rand::Rng;
        assert!(alpha > 0.0, "Pareto shape must be positive");
        self.with_generated_weights(seed, |rng| {
            let u = rng.gen_range(0.0f32..1.0f32);
            (1.0 - u).powf(-1.0 / alpha)
        })
    }

    /// Shared skeleton of the `with_*_weights` constructors: draws one weight
    /// per logical edge from `gen` and mirrors it onto both arcs of an
    /// undirected edge.
    ///
    /// # Panics
    /// Panics if `gen` produces a non-finite or negative weight (e.g. a
    /// Pareto draw with a tiny shape overflowing `f32` to `+inf`) — this
    /// constructor bypasses [`CsrGraph::from_parts`], so it must enforce the
    /// weight invariant itself.
    fn with_generated_weights(
        &self,
        seed: u64,
        mut gen: impl FnMut(&mut rand::rngs::StdRng) -> f32,
    ) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut weights = vec![0.0f32; self.targets.len()];
        if self.directed {
            for w in weights.iter_mut() {
                *w = gen(&mut rng);
            }
        } else {
            // Assign weights to canonical (min, max) pairs, then mirror.
            for u in 0..self.num_nodes() as NodeId {
                let start = self.offsets[u as usize];
                for (i, &v) in self.neighbors(u).iter().enumerate() {
                    if u <= v {
                        weights[start + i] = gen(&mut rng);
                    }
                }
            }
            for u in 0..self.num_nodes() as NodeId {
                let start = self.offsets[u as usize];
                for (i, &v) in self.neighbors(u).iter().enumerate() {
                    if u > v {
                        // Find the mirrored arc v -> u.
                        let vstart = self.offsets[v as usize];
                        let idx = self
                            .neighbors(v)
                            .binary_search(&u)
                            .expect("undirected CSR graph must contain the mirrored arc");
                        weights[start + i] = weights[vstart + idx];
                    }
                }
            }
        }
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "generated edge weights must be finite and non-negative \
             (transition probabilities are proportional to weights)"
        );
        Self {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: Some(weights),
            directed: self.directed,
            num_edges: self.num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 0-2, 2-3
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert!(!g.is_directed());
        assert!(!g.is_weighted());
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn has_edge_and_weight_lookup() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(0, 3), None);
    }

    #[test]
    fn common_neighbors_triangle() {
        let g = triangle_plus_tail();
        // N(0) = {1,2}, N(1) = {0,2} → common = {2}
        assert_eq!(g.common_neighbors(0, 1), 1);
        // N(2) = {0,1,3}, N(3) = {2} → common = {}
        assert_eq!(g.common_neighbors(2, 3), 0);
    }

    #[test]
    fn edges_reports_each_undirected_edge_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5, false);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    fn nodes_by_degree_desc_order() {
        let g = triangle_plus_tail();
        let order = g.nodes_by_degree_desc();
        assert_eq!(order[0], 2); // degree 3
        assert_eq!(order[3], 3); // degree 1
    }

    #[test]
    fn random_weights_are_in_range_and_symmetric() {
        let g = triangle_plus_tail().with_random_weights(1.0, 5.0, 42);
        assert!(g.is_weighted());
        for (u, v, w) in g.arcs() {
            assert!((1.0..5.0).contains(&w));
            assert_eq!(g.edge_weight(u, v), g.edge_weight(v, u));
        }
    }

    #[test]
    fn directed_graph_stores_single_direction() {
        let mut b = GraphBuilder::new_directed();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert!(g.is_directed());
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_arcs(), 2);
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn from_parts_rejects_bad_offsets() {
        CsrGraph::from_parts(vec![0, 5], vec![1, 2], None, false, 1);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_parts_rejects_negative_weights() {
        CsrGraph::from_parts(vec![0, 2], vec![0, 1], Some(vec![1.0, -3.0]), true, 2);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_parts_rejects_nan_weights() {
        CsrGraph::from_parts(vec![0, 1], vec![1], Some(vec![f32::NAN]), true, 1);
    }

    #[test]
    fn arc_range_addresses_weight_slices() {
        let g = triangle_plus_tail().with_random_weights(1.0, 5.0, 3);
        let all = g.arc_weights().unwrap();
        for u in 0..g.num_nodes() as NodeId {
            assert_eq!(g.arc_range(u).len(), g.degree(u));
            assert_eq!(&all[g.arc_range(u)], g.neighbor_weights(u).unwrap());
        }
        assert!(triangle_plus_tail().arc_weights().is_none());
    }

    #[test]
    fn skewed_weights_are_heavy_tailed_and_symmetric() {
        let g = barabasi_like().with_skewed_weights(1.5, 9);
        assert!(g.is_weighted());
        let mut max = 0.0f32;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for (u, v, w) in g.arcs() {
            assert!(w >= 1.0, "Pareto weights have minimum 1");
            assert_eq!(g.edge_weight(u, v), g.edge_weight(v, u));
            max = max.max(w);
            sum += w as f64;
            count += 1;
        }
        let mean = sum / count as f64;
        // A genuinely skewed distribution: the largest weight dwarfs the mean.
        assert!(
            (max as f64) > 5.0 * mean,
            "max {max} should dominate mean {mean:.2}"
        );
    }

    fn barabasi_like() -> CsrGraph {
        // A small hub-and-spoke graph with enough edges for tail statistics.
        let mut b = GraphBuilder::new_undirected();
        for v in 1..400u32 {
            b.add_edge(0, v);
            b.add_edge(v, (v % 37) + 400);
        }
        b.build()
    }

    #[test]
    fn memory_bytes_positive() {
        let g = triangle_plus_tail();
        assert!(g.memory_bytes() > 0);
        let gw = g.with_random_weights(1.0, 2.0, 1);
        assert!(gw.memory_bytes() > g.memory_bytes());
    }
}
