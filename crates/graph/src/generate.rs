//! Synthetic graph generators.
//!
//! The paper evaluates on five real-world graphs (Flickr, YouTube,
//! LiveJournal, Com-Orkut, Twitter) plus R-MAT synthetic graphs for the
//! scalability study (§6.3, \[11\]). Those datasets are not redistributable
//! here, so this module provides generators that reproduce the structural
//! properties the paper's mechanisms depend on — power-law degree skew,
//! community locality, and controllable scale — plus scaled-down "stand-in"
//! presets for each paper dataset (see [`PaperDataset`]).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::NodeId;

/// A graph together with multi-label ground truth, used for the
/// node-classification experiments (Figure 9).
#[derive(Clone, Debug)]
pub struct LabeledGraph {
    /// The generated graph.
    pub graph: CsrGraph,
    /// `labels[u]` holds the label ids assigned to node `u` (multi-label).
    pub labels: Vec<Vec<u16>>,
    /// Total number of distinct labels.
    pub num_labels: usize,
}

/// Barabási–Albert preferential-attachment graph: `n` nodes, each new node
/// attaches to `m` existing nodes chosen proportionally to degree. Produces
/// the power-law degree distribution that HuGE's information-oriented walks
/// and DSGL's hotness blocks rely on (§2.1, §4.2).
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment count must be at least 1");
    assert!(
        n > m,
        "graph must have more nodes than the attachment count"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new_undirected();
    builder.reserve_nodes(n);

    // Repeated-nodes list: node u appears deg(u) times, giving cheap
    // degree-proportional sampling.
    let mut repeated: Vec<NodeId> = Vec::with_capacity(2 * n * m);

    // Seed clique over the first m+1 nodes.
    for u in 0..=(m as NodeId) {
        for v in 0..u {
            builder.add_edge(u, v);
            repeated.push(u);
            repeated.push(v);
        }
    }

    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for u in (m as NodeId + 1)..(n as NodeId) {
        targets.clear();
        let mut guard = 0usize;
        while targets.len() < m && guard < 50 * m {
            guard += 1;
            let v = repeated[rng.gen_range(0..repeated.len())];
            if v != u && !targets.contains(&v) {
                targets.push(v);
            }
        }
        for &v in &targets {
            builder.add_edge(u, v);
            repeated.push(u);
            repeated.push(v);
        }
    }
    builder.build()
}

/// Holme–Kim "power-law cluster" graph: Barabási–Albert preferential
/// attachment where, after each preferential link, a triad-formation step
/// connects the new node to a random neighbour of the node it just attached
/// to with probability `triad_p`. Produces both the heavy-tailed degree
/// distribution *and* the high clustering / common-neighbour structure of the
/// paper's real social graphs, which the information-oriented walks (Eq. 3)
/// and link prediction (§6.4) rely on.
pub fn powerlaw_cluster(n: usize, m: usize, triad_p: f64, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment count must be at least 1");
    assert!(
        n > m,
        "graph must have more nodes than the attachment count"
    );
    assert!((0.0..=1.0).contains(&triad_p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new_undirected();
    builder.reserve_nodes(n);

    let mut repeated: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let connect = |builder: &mut GraphBuilder,
                   repeated: &mut Vec<NodeId>,
                   adjacency: &mut Vec<Vec<NodeId>>,
                   u: NodeId,
                   v: NodeId| {
        builder.add_edge(u, v);
        repeated.push(u);
        repeated.push(v);
        adjacency[u as usize].push(v);
        adjacency[v as usize].push(u);
    };

    for u in 0..=(m as NodeId) {
        for v in 0..u {
            connect(&mut builder, &mut repeated, &mut adjacency, u, v);
        }
    }

    for u in (m as NodeId + 1)..(n as NodeId) {
        let mut added: Vec<NodeId> = Vec::with_capacity(m);
        let mut last_attached: Option<NodeId> = None;
        let mut guard = 0usize;
        while added.len() < m && guard < 50 * m {
            guard += 1;
            // Triad-formation step with probability triad_p (when possible).
            let candidate = if let Some(prev) = last_attached {
                if rng.gen::<f64>() < triad_p && !adjacency[prev as usize].is_empty() {
                    adjacency[prev as usize][rng.gen_range(0..adjacency[prev as usize].len())]
                } else {
                    repeated[rng.gen_range(0..repeated.len())]
                }
            } else {
                repeated[rng.gen_range(0..repeated.len())]
            };
            if candidate != u && !added.contains(&candidate) {
                added.push(candidate);
                last_attached = Some(candidate);
            }
        }
        for &v in &added {
            connect(&mut builder, &mut repeated, &mut adjacency, u, v);
        }
    }
    builder.build()
}

/// Community-structured power-law graph (LFR-like): nodes are divided into
/// `communities` equally sized groups; every node draws `m` edges on average,
/// a `1 − mixing` fraction of which attach preferentially *inside* its own
/// community and the rest attach preferentially anywhere. The result combines
/// the heavy-tailed degrees of Barabási–Albert with the dense local
/// neighbourhoods of real social graphs, which is what makes link prediction
/// and node classification meaningful (§6.4).
pub fn community_powerlaw(
    n: usize,
    communities: usize,
    m: usize,
    mixing: f64,
    seed: u64,
) -> CsrGraph {
    assert!(communities >= 1);
    assert!(m >= 1);
    assert!((0.0..=1.0).contains(&mixing));
    assert!(
        n >= communities * 3,
        "communities must have at least 3 nodes"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new_undirected();
    builder.reserve_nodes(n);

    let block = n.div_ceil(communities);
    let community_of = |u: usize| (u / block).min(communities - 1);

    // Per-community and global repeated-node lists for preferential attachment.
    let mut local_repeat: Vec<Vec<NodeId>> = vec![Vec::new(); communities];
    let mut global_repeat: Vec<NodeId> = Vec::new();

    for u in 0..n {
        let c = community_of(u);
        let mut targets: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0usize;
        while targets.len() < m && guard < 60 * m {
            guard += 1;
            let inside = rng.gen::<f64>() >= mixing;
            let candidate = if inside && !local_repeat[c].is_empty() {
                local_repeat[c][rng.gen_range(0..local_repeat[c].len())]
            } else if inside {
                // Community still empty: pick any node already placed in it.
                let lo = (c * block) as NodeId;
                let hi = (u as NodeId).max(lo);
                if hi == lo {
                    continue;
                }
                rng.gen_range(lo..hi)
            } else if !global_repeat.is_empty() {
                global_repeat[rng.gen_range(0..global_repeat.len())]
            } else {
                continue;
            };
            if candidate != u as NodeId && !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for &v in &targets {
            builder.add_edge(u as NodeId, v);
            let cv = community_of(v as usize);
            local_repeat[c].push(u as NodeId);
            local_repeat[cv].push(v);
            global_repeat.push(u as NodeId);
            global_repeat.push(v);
        }
        // Make sure every node is represented at least once.
        if targets.is_empty() {
            local_repeat[c].push(u as NodeId);
            global_repeat.push(u as NodeId);
        }
    }
    builder.build()
}

/// Erdős–Rényi `G(n, p)` graph (undirected). Used as a low-skew contrast
/// workload in tests and ablations.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new_undirected();
    builder.reserve_nodes(n);
    if p > 0.0 {
        // Geometric skipping over the upper-triangular adjacency matrix keeps
        // generation O(#edges) instead of O(n²).
        let log_q = (1.0 - p).ln();
        let total_pairs = (n as u64) * (n as u64 - 1) / 2;
        let mut idx: f64 = -1.0;
        loop {
            let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let skip = if p >= 1.0 {
                1.0
            } else {
                (r.ln() / log_q).floor() + 1.0
            };
            idx += skip;
            if idx >= total_pairs as f64 {
                break;
            }
            let k = idx as u64;
            // Map linear index k to pair (u, v), u < v.
            let u = ((-0.5 + (0.25 + 2.0 * k as f64).sqrt()).floor()) as u64 + 1;
            let base = u * (u - 1) / 2;
            let v = k - base;
            builder.add_edge(u as NodeId, v as NodeId);
        }
    }
    builder.build()
}

/// R-MAT recursive-matrix graph (Chakrabarti et al., the generator the paper
/// cites for its synthetic scalability graphs). `scale` gives `2^scale`
/// nodes; `edge_factor` is the average degree. Probabilities `(a, b, c, d)`
/// must sum to 1; the classic skewed setting is `(0.57, 0.19, 0.19, 0.05)`.
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64, f64), seed: u64) -> CsrGraph {
    let (a, b, c, d) = probs;
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-9,
        "R-MAT probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let target_edges = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new_undirected();
    builder.reserve_nodes(n);
    for _ in 0..target_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << level;
            v |= dv << level;
        }
        builder.add_edge(u as NodeId, v as NodeId);
    }
    builder.build()
}

/// Planted-partition (stochastic block model) graph with multi-label ground
/// truth: `communities` groups of roughly equal size, intra-community edge
/// probability `p_in`, inter-community probability `p_out`. Each node gets its
/// community label plus, with probability `extra_label_prob`, one additional
/// random label — giving the multi-label setting of the paper's Flickr /
/// YouTube classification tasks.
pub fn planted_partition(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    extra_label_prob: f64,
    seed: u64,
) -> LabeledGraph {
    assert!(communities >= 1 && communities <= u16::MAX as usize);
    assert!(n >= communities, "need at least one node per community");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new_undirected();
    builder.reserve_nodes(n);

    // Communities are contiguous id blocks (nodes [k·n/c, (k+1)·n/c) belong to
    // community k) so that trivial modulo hashing does not accidentally align
    // with the ground truth.
    let block = n.div_ceil(communities);
    let community_of = move |u: usize| ((u / block).min(communities - 1)) as u16;

    for u in 0..n {
        for v in (u + 1)..n {
            let p = if community_of(u) == community_of(v) {
                p_in
            } else {
                p_out
            };
            if rng.gen::<f64>() < p {
                builder.add_edge(u as NodeId, v as NodeId);
            }
        }
    }

    let mut labels = Vec::with_capacity(n);
    for u in 0..n {
        let mut ls = vec![community_of(u)];
        if rng.gen::<f64>() < extra_label_prob {
            let extra = rng.gen_range(0..communities) as u16;
            if !ls.contains(&extra) {
                ls.push(extra);
            }
        }
        ls.sort_unstable();
        labels.push(ls);
    }
    LabeledGraph {
        graph: builder.build(),
        labels,
        num_labels: communities,
    }
}

/// Scaled-down stand-ins for the paper's real-world datasets (Table 2). Each
/// preset preserves the rough node/edge ratio and degree skew of the original
/// at laptop scale so the relative trends across datasets survive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Flickr: 80 K nodes / 5.9 M edges → dense, small.
    Flickr,
    /// YouTube: 1.1 M nodes / 3.0 M edges → sparse.
    Youtube,
    /// LiveJournal: 2.2 M nodes / 14.6 M edges.
    LiveJournal,
    /// Com-Orkut: 3.1 M nodes / 117 M edges → dense.
    ComOrkut,
    /// Twitter: 41.7 M nodes / 1.47 B edges → the billion-edge target.
    Twitter,
}

impl PaperDataset {
    /// All presets in the order the paper lists them.
    pub const ALL: [PaperDataset; 5] = [
        PaperDataset::Flickr,
        PaperDataset::Youtube,
        PaperDataset::LiveJournal,
        PaperDataset::ComOrkut,
        PaperDataset::Twitter,
    ];

    /// Short name used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            PaperDataset::Flickr => "FL",
            PaperDataset::Youtube => "YT",
            PaperDataset::LiveJournal => "LJ",
            PaperDataset::ComOrkut => "OR",
            PaperDataset::Twitter => "TW",
        }
    }

    /// (nodes, average degree) of the scaled-down stand-in at `scale = 1.0`.
    /// The average degrees mirror the originals (≈147, 5, 13, 76, 70); node
    /// counts are shrunk by ~3 orders of magnitude.
    fn standin_shape(self) -> (usize, usize) {
        match self {
            PaperDataset::Flickr => (1_000, 60),
            PaperDataset::Youtube => (8_000, 5),
            PaperDataset::LiveJournal => (16_000, 13),
            PaperDataset::ComOrkut => (12_000, 40),
            PaperDataset::Twitter => (40_000, 35),
        }
    }

    /// Generates the stand-in graph. `scale` multiplies the node count
    /// (use `1.0` for the default benchmark size, smaller for unit tests).
    ///
    /// The generator is [`community_powerlaw`] so that the stand-ins have the
    /// degree skew, the community structure and the predictability (for link
    /// prediction / classification) of the original social graphs.
    pub fn generate(self, scale: f64, seed: u64) -> CsrGraph {
        let (n, avg_deg) = self.standin_shape();
        let n = ((n as f64 * scale).round() as usize).max(avg_deg + 2);
        let communities = (n / 60).clamp(1, 512);
        community_powerlaw(n, communities, (avg_deg / 2).max(1), 0.1, seed)
    }
}

/// Converts an undirected graph into a directed one by keeping, for every
/// undirected edge, a single direction chosen at random. Used by the §8.1
/// directed-vs-undirected experiment (Table 7).
pub fn randomly_orient(graph: &CsrGraph, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new_directed();
    builder.reserve_nodes(graph.num_nodes());
    for (u, v, w) in graph.edges() {
        let (s, t) = if rng.gen::<bool>() { (u, v) } else { (v, u) };
        if graph.is_weighted() {
            builder.add_weighted_edge(s, t, w);
        } else {
            builder.add_edge(s, t);
        }
    }
    builder.build()
}

/// Random permutation of all node ids — handy for random streaming orders and
/// shuffled train/test splits.
pub fn shuffled_nodes(n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<NodeId> = (0..n as NodeId).collect();
    nodes.shuffle(&mut rng);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(500, 3, 7);
        assert_eq!(g.num_nodes(), 500);
        // Each of the ~497 non-seed nodes adds ~3 edges.
        assert!(g.num_edges() >= 3 * 450 && g.num_edges() <= 3 * 500 + 10);
        // Power-law-ish: the max degree should far exceed the average.
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(g.max_degree() as f64 > 3.0 * avg);
    }

    #[test]
    fn barabasi_albert_deterministic() {
        let g1 = barabasi_albert(200, 2, 11);
        let g2 = barabasi_albert(200, 2, 11);
        assert_eq!(g1, g2);
        let g3 = barabasi_albert(200, 2, 12);
        assert_ne!(g1, g3);
    }

    #[test]
    fn powerlaw_cluster_is_skewed_and_clustered() {
        let n = 600;
        let pc = powerlaw_cluster(n, 3, 0.7, 5);
        let ba = barabasi_albert(n, 3, 5);
        assert_eq!(pc.num_nodes(), n);
        // Similar edge budget to BA.
        assert!(pc.num_edges() >= 3 * 550 && pc.num_edges() <= 3 * 620);
        // Skewed degrees.
        let avg = 2.0 * pc.num_edges() as f64 / n as f64;
        assert!(pc.max_degree() as f64 > 3.0 * avg);
        // Much higher triangle density than plain BA: count closed triads via
        // common neighbours over sampled edges.
        let closure = |g: &CsrGraph| -> f64 {
            let mut total = 0usize;
            let mut edges = 0usize;
            for (u, v, _) in g.edges().take(1500) {
                total += g.common_neighbors(u, v);
                edges += 1;
            }
            total as f64 / edges as f64
        };
        assert!(
            closure(&pc) > 1.5 * closure(&ba),
            "triad formation should add clustering: {} vs {}",
            closure(&pc),
            closure(&ba)
        );
    }

    #[test]
    fn community_powerlaw_has_strong_communities_and_skew() {
        let n = 900;
        let g = community_powerlaw(n, 15, 5, 0.1, 4);
        assert_eq!(g.num_nodes(), n);
        let block = n.div_ceil(15);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v, _) in g.edges() {
            if (u as usize) / block == (v as usize) / block {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > 5 * inter,
            "most edges must stay inside a community ({intra} vs {inter})"
        );
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        assert!(
            g.max_degree() as f64 > 3.0 * avg,
            "degrees should be skewed"
        );
    }

    #[test]
    fn community_powerlaw_deterministic() {
        assert_eq!(
            community_powerlaw(300, 5, 4, 0.2, 8),
            community_powerlaw(300, 5, 4, 0.2, 8)
        );
    }

    #[test]
    fn powerlaw_cluster_deterministic() {
        assert_eq!(
            powerlaw_cluster(200, 2, 0.5, 3),
            powerlaw_cluster(200, 2, 0.5, 3)
        );
    }

    #[test]
    fn erdos_renyi_edge_count_close_to_expectation() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi(n, p, 3);
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < 0.25 * expected,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(50, 0.0, 1).num_edges(), 0);
        let full = erdos_renyi(20, 1.0, 1);
        assert_eq!(full.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(10, 8, (0.57, 0.19, 0.19, 0.05), 5);
        assert_eq!(g.num_nodes(), 1024);
        assert!(g.num_edges() > 1024 * 4); // duplicates removed, still dense enough
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(g.max_degree() as f64 > 4.0 * avg, "R-MAT should be skewed");
    }

    #[test]
    fn planted_partition_labels_cover_all_nodes() {
        let lg = planted_partition(120, 4, 0.2, 0.005, 0.3, 9);
        assert_eq!(lg.graph.num_nodes(), 120);
        assert_eq!(lg.labels.len(), 120);
        assert_eq!(lg.num_labels, 4);
        assert!(lg.labels.iter().all(|ls| !ls.is_empty() && ls.len() <= 2));
        // Communities should be denser inside than across.
        let g = &lg.graph;
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v, _) in g.edges() {
            if u / 30 == v / 30 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter);
    }

    #[test]
    fn paper_standins_generate() {
        for ds in PaperDataset::ALL {
            let g = ds.generate(0.05, 1);
            assert!(g.num_nodes() > 10, "{} too small", ds.short_name());
            assert!(g.num_edges() > g.num_nodes() / 2);
        }
    }

    #[test]
    fn randomly_orient_halves_arcs() {
        let g = barabasi_albert(100, 2, 3);
        let d = randomly_orient(&g, 4);
        assert!(d.is_directed());
        assert_eq!(d.num_edges(), d.num_arcs());
        assert_eq!(d.num_edges(), g.num_edges());
    }

    #[test]
    fn shuffled_nodes_is_permutation() {
        let mut s = shuffled_nodes(100, 5);
        s.sort_unstable();
        assert_eq!(s, (0..100u32).collect::<Vec<_>>());
    }
}
