//! Sorted-set intersection primitives.
//!
//! MPGP (§3.2) computes first- and second-order proximity scores that boil
//! down to intersecting sorted adjacency lists. The paper uses the *Galloping*
//! (exponential search) algorithm of Demaine, López-Ortiz and Munro, which is
//! effective when the two sets differ greatly in size — exactly the situation
//! during streaming partitioning, where one side is a node's adjacency list
//! and the other is a growing partition.

use crate::NodeId;

/// Counts `|a ∩ b|` with a linear merge. `O(|a| + |b|)`.
pub fn merge_intersect_count(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Counts `|a ∩ b|` with Galloping search: each element of the smaller set is
/// located in the larger set by exponential probing followed by binary search.
/// `O(min · log(max / min))` — asymptotically better than the merge when the
/// sizes are very unbalanced.
pub fn galloping_intersect_count(a: &[NodeId], b: &[NodeId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() || large.is_empty() {
        return 0;
    }
    // For nearly equal sizes the merge is faster in practice.
    if large.len() < 4 * small.len() {
        return merge_intersect_count(small, large);
    }
    let mut count = 0usize;
    let mut lo = 0usize; // search window start in `large` (both inputs sorted)
    for &x in small {
        if lo >= large.len() {
            break;
        }
        // Exponential probe: grow `bound` until `large[lo + bound] >= x` or
        // the end of the slice is reached; the answer then lies in
        // `large[lo..lo + bound + 1]`.
        let mut bound = 1usize;
        while lo + bound < large.len() && large[lo + bound] < x {
            bound *= 2;
        }
        let end = (lo + bound + 1).min(large.len());
        match large[lo..end].binary_search(&x) {
            Ok(pos) => {
                count += 1;
                lo += pos + 1;
            }
            Err(pos) => {
                lo += pos;
            }
        }
    }
    count
}

/// Materializes `a ∩ b` (sorted). Used where MPGP needs the actual common
/// neighbour set rather than just its size.
pub fn merge_intersect(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_galloping_agree_on_simple_sets() {
        let a = [1, 3, 5, 7, 9];
        let b = [2, 3, 4, 7, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21];
        assert_eq!(merge_intersect_count(&a, &b), 2);
        assert_eq!(galloping_intersect_count(&a, &b), 2);
        assert_eq!(merge_intersect(&a, &b), vec![3, 7]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(galloping_intersect_count(&[], &[1, 2, 3]), 0);
        assert_eq!(galloping_intersect_count(&[1, 2, 3], &[]), 0);
        assert_eq!(merge_intersect_count(&[], &[]), 0);
    }

    #[test]
    fn identical_sets() {
        let a: Vec<NodeId> = (0..100).collect();
        assert_eq!(galloping_intersect_count(&a, &a), 100);
        assert_eq!(merge_intersect_count(&a, &a), 100);
    }

    #[test]
    fn disjoint_sets() {
        let a: Vec<NodeId> = (0..50).collect();
        let b: Vec<NodeId> = (100..200).collect();
        assert_eq!(galloping_intersect_count(&a, &b), 0);
    }

    #[test]
    fn highly_unbalanced_sets() {
        let small = [10, 500, 999, 5000];
        let large: Vec<NodeId> = (0..10_000).collect();
        assert_eq!(galloping_intersect_count(&small, &large), 4);
        let large_even: Vec<NodeId> = (0..10_000).map(|x| x * 2).collect();
        // 10, 500, 5000 are even; 999 is odd.
        assert_eq!(galloping_intersect_count(&small, &large_even), 3);
    }
}
