//! Plain-text edge-list I/O.
//!
//! Real datasets (SNAP-style `u v [w]` edge lists, `#`-prefixed comments) can
//! be dropped into the pipeline through [`load_edge_list`]; the synthetic
//! stand-ins can be exported with [`save_edge_list`] for inspection with
//! external tools.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::NodeId;

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Loads a whitespace-separated edge list (`u v` or `u v w` per line, `#`
/// comments ignored) into a [`CsrGraph`].
pub fn load_edge_list(path: impl AsRef<Path>, directed: bool) -> Result<CsrGraph, LoadError> {
    let file = File::open(path)?;
    parse_edge_list(BufReader::new(file), directed)
}

/// Parses an edge list from any reader (see [`load_edge_list`]).
pub fn parse_edge_list(reader: impl BufRead, directed: bool) -> Result<CsrGraph, LoadError> {
    let mut builder = if directed {
        GraphBuilder::new_directed()
    } else {
        GraphBuilder::new_undirected()
    };
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse_err = || LoadError::Parse {
            line: idx + 1,
            content: trimmed.to_string(),
        };
        let u: NodeId = it
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let v: NodeId = it
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        match it.next() {
            Some(w) => {
                let w: f32 = w.parse().map_err(|_| parse_err())?;
                // The builder panics on out-of-domain weights (its invariant);
                // for untrusted input files report them as parse errors instead.
                if !w.is_finite() || w < 0.0 {
                    return Err(parse_err());
                }
                builder.add_weighted_edge(u, v, w);
            }
            None => {
                builder.add_edge(u, v);
            }
        }
    }
    Ok(builder.build())
}

/// Writes the logical edges of `graph` as a whitespace-separated edge list.
pub fn save_edge_list(graph: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# nodes={} edges={} directed={}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.is_directed()
    )?;
    for (u, v, weight) in graph.edges() {
        if graph.is_weighted() {
            writeln!(w, "{u} {v} {weight}")?;
        } else {
            writeln!(w, "{u} {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_simple_edge_list() {
        let input = "# a comment\n0 1\n1 2\n\n2 3\n";
        let g = parse_edge_list(Cursor::new(input), false).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_weighted());
    }

    #[test]
    fn parse_weighted_edge_list() {
        let input = "0 1 2.5\n1 2 0.5\n";
        let g = parse_edge_list(Cursor::new(input), true).unwrap();
        assert!(g.is_weighted());
        assert!(g.is_directed());
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn parse_error_reports_line() {
        let input = "0 1\nnot an edge\n";
        let err = parse_edge_list(Cursor::new(input), false).unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn out_of_domain_weights_are_parse_errors_not_panics() {
        for bad in ["0 1 -2.5", "0 1 nan", "0 1 inf"] {
            let err = parse_edge_list(Cursor::new(bad), false).unwrap_err();
            match err {
                LoadError::Parse { line, .. } => assert_eq!(line, 1, "{bad}"),
                other => panic!("expected parse error for {bad:?}, got {other}"),
            }
        }
    }

    #[test]
    fn save_and_reload_round_trip() {
        let g = crate::generate::barabasi_albert(50, 2, 1);
        let dir = std::env::temp_dir().join("distger_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.edges");
        save_edge_list(&g, &path).unwrap();
        let reloaded = load_edge_list(&path, false).unwrap();
        assert_eq!(g.num_nodes(), reloaded.num_nodes());
        assert_eq!(g.num_edges(), reloaded.num_edges());
        for (u, v, _) in g.edges() {
            assert!(reloaded.has_edge(u, v));
        }
        std::fs::remove_file(&path).ok();
    }
}
