//! Graph substrate for the DistGER reproduction.
//!
//! This crate provides the storage layer every other subsystem builds on:
//!
//! * [`CsrGraph`] — a Compressed Sparse Row graph (the representation used by
//!   the paper, §2), supporting directed/undirected and weighted/unweighted
//!   graphs with sorted adjacency lists.
//! * [`GraphBuilder`] — incremental edge-list construction.
//! * [`generate`] — synthetic graph generators (R-MAT, Barabási–Albert,
//!   Erdős–Rényi, planted communities) standing in for the paper's real-world
//!   datasets (Flickr, YouTube, LiveJournal, Com-Orkut, Twitter).
//! * [`intersect`] — the Galloping set-intersection algorithm used by MPGP's
//!   proximity computations (§3.2).
//! * [`stats`] — degree distributions and power-law diagnostics.
//! * [`io`] — plain-text edge-list loading/saving so real datasets can be
//!   dropped in.

pub mod builder;
pub mod csr;
pub mod generate;
pub mod intersect;
pub mod io;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use generate::{
    barabasi_albert, community_powerlaw, erdos_renyi, planted_partition, powerlaw_cluster, rmat,
    LabeledGraph,
};
pub use stats::GraphStats;

/// Node identifier. Graphs in this reproduction are laptop-scale (≤ a few
/// million nodes), so 32 bits keep the CSR arrays and walker messages compact.
pub type NodeId = u32;

/// Edge weight type. Unweighted graphs simply do not allocate weights.
pub type EdgeWeight = f32;
