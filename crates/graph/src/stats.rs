//! Degree statistics and power-law diagnostics.
//!
//! HuGE's heuristic for the number of walks per node (§2.1, Eq. 6–7) compares
//! the node-degree distribution with the corpus-occurrence distribution via
//! relative entropy, so the degree distribution `p(v) = deg(v) / Σ deg` is a
//! first-class object here.

use crate::csr::CsrGraph;

/// Summary statistics of a graph, as reported in the paper's Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of logical edges.
    pub num_edges: usize,
    /// Mean degree (arcs per node).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) nodes.
    pub isolated_nodes: usize,
    /// Maximum-likelihood estimate of the power-law exponent `α` for the tail
    /// of the degree distribution (degrees ≥ `x_min = max(2, avg degree)`);
    /// `None` when the graph has no node in that tail.
    pub power_law_alpha: Option<f64>,
}

impl GraphStats {
    /// Computes summary statistics for `graph`.
    pub fn compute(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let mut max_degree = 0usize;
        let mut isolated = 0usize;
        let mut tail_log_sum = 0.0f64;
        let mut tail_count = 0usize;
        // Fit only the tail above the mean degree: the bulk of both skewed and
        // non-skewed graphs looks similar, the tail is what distinguishes them.
        let x_min = if n == 0 {
            2.0
        } else {
            (graph.total_degree() as f64 / n as f64).max(2.0)
        };
        for u in 0..n {
            let d = graph.degree(u as u32);
            max_degree = max_degree.max(d);
            if d == 0 {
                isolated += 1;
            }
            if d as f64 >= x_min {
                tail_log_sum += (d as f64 / (x_min - 0.5)).ln();
                tail_count += 1;
            }
        }
        let alpha = if tail_count > 0 && tail_log_sum > 0.0 {
            Some(1.0 + tail_count as f64 / tail_log_sum)
        } else {
            None
        };
        Self {
            num_nodes: n,
            num_edges: graph.num_edges(),
            avg_degree: if n == 0 {
                0.0
            } else {
                graph.total_degree() as f64 / n as f64
            },
            max_degree,
            isolated_nodes: isolated,
            power_law_alpha: alpha,
        }
    }
}

/// Node-degree probability distribution `p(v) = deg(v) / Σ_u deg(u)`
/// (Eq. 6's `p`). Returns an all-zero vector for an edgeless graph.
pub fn degree_distribution(graph: &CsrGraph) -> Vec<f64> {
    let total = graph.total_degree() as f64;
    (0..graph.num_nodes())
        .map(|u| {
            if total == 0.0 {
                0.0
            } else {
                graph.degree(u as u32) as f64 / total
            }
        })
        .collect()
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(graph: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for u in 0..graph.num_nodes() {
        hist[graph.degree(u as u32)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{barabasi_albert, erdos_renyi};
    use crate::GraphBuilder;

    #[test]
    fn stats_on_small_graph() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.reserve_nodes(4);
        let g = b.build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 2);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated_nodes, 1);
        assert!((s.avg_degree - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_distribution_sums_to_one() {
        let g = barabasi_albert(300, 3, 1);
        let dist = degree_distribution(&g);
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(dist.len(), 300);
    }

    #[test]
    fn degree_distribution_of_empty_graph_is_zero() {
        let g = CsrGraph::empty(3, false);
        assert_eq!(degree_distribution(&g), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn power_law_alpha_skewed_vs_uniform() {
        let ba = barabasi_albert(2_000, 4, 2);
        let er = erdos_renyi(2_000, 0.004, 2);
        let a_ba = GraphStats::compute(&ba).power_law_alpha.unwrap();
        let a_er = GraphStats::compute(&er).power_law_alpha.unwrap();
        // BA graphs have heavier tails, hence a *smaller* fitted exponent.
        assert!(a_ba < a_er, "expected BA alpha {a_ba} < ER alpha {a_er}");
        assert!(a_ba > 1.0);
    }

    #[test]
    fn histogram_counts_all_nodes() {
        let g = barabasi_albert(100, 2, 3);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 100);
    }
}
