//! Property-based tests for the graph substrate.

use distger_graph::intersect::{galloping_intersect_count, merge_intersect, merge_intersect_count};
use distger_graph::{CsrGraph, GraphBuilder, NodeId};
use proptest::prelude::*;

fn arb_edges(max_node: NodeId, max_edges: usize) -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    prop::collection::vec((0..max_node, 0..max_node), 0..max_edges)
}

fn build_undirected(edges: &[(NodeId, NodeId)]) -> CsrGraph {
    let mut b = GraphBuilder::new_undirected();
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

proptest! {
    /// The CSR invariants hold for arbitrary edge lists: sorted adjacency,
    /// symmetric arcs, consistent degree sums.
    #[test]
    fn csr_invariants_hold(edges in arb_edges(60, 200)) {
        let g = build_undirected(&edges);
        let mut arc_count = 0usize;
        for u in 0..g.num_nodes() as NodeId {
            let adj = g.neighbors(u);
            arc_count += adj.len();
            prop_assert!(adj.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
            for &v in adj {
                prop_assert!(g.has_edge(v, u), "undirected arcs must be symmetric");
                prop_assert_ne!(u, v, "no self loops");
            }
        }
        prop_assert_eq!(arc_count, g.num_arcs());
        prop_assert_eq!(arc_count, 2 * g.num_edges());
    }

    /// Galloping intersection agrees with the straightforward merge on
    /// arbitrary sorted deduplicated inputs.
    #[test]
    fn galloping_matches_merge(
        mut a in prop::collection::vec(0u32..500, 0..120),
        mut b in prop::collection::vec(0u32..500, 0..120),
    ) {
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let expected = merge_intersect_count(&a, &b);
        prop_assert_eq!(galloping_intersect_count(&a, &b), expected);
        prop_assert_eq!(galloping_intersect_count(&b, &a), expected);
        prop_assert_eq!(merge_intersect(&a, &b).len(), expected);
    }

    /// Common-neighbour counts are symmetric and bounded by the smaller degree.
    #[test]
    fn common_neighbors_symmetric(edges in arb_edges(40, 150), x in 0u32..40, y in 0u32..40) {
        let g = build_undirected(&edges);
        if (x as usize) < g.num_nodes() && (y as usize) < g.num_nodes() {
            let c1 = g.common_neighbors(x, y);
            let c2 = g.common_neighbors(y, x);
            prop_assert_eq!(c1, c2);
            prop_assert!(c1 <= g.degree(x).min(g.degree(y)));
        }
    }

    /// Edge-list save/parse round trip preserves the edge set.
    #[test]
    fn edges_iterator_consistent_with_has_edge(edges in arb_edges(50, 100)) {
        let g = build_undirected(&edges);
        let mut logical = 0usize;
        for (u, v, w) in g.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
            prop_assert_eq!(w, 1.0);
            logical += 1;
        }
        prop_assert_eq!(logical, g.num_edges());
    }

    /// Random weighting preserves structure and stays within the range.
    #[test]
    fn weighting_preserves_structure(edges in arb_edges(30, 80), seed in 0u64..1000) {
        let g = build_undirected(&edges);
        let w = g.with_random_weights(1.0, 5.0, seed);
        prop_assert_eq!(g.num_nodes(), w.num_nodes());
        prop_assert_eq!(g.num_edges(), w.num_edges());
        for (u, v, wt) in w.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!((1.0..5.0).contains(&wt));
        }
    }
}
