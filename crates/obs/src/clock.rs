//! The monotonic trace clock and wall-clock phase timing.
//!
//! Every trace timestamp in this crate is microseconds since a
//! **process-global epoch**: the first call to [`now_micros`] lazily pins an
//! [`Instant`] and every later reading is measured against it. Monotonic by
//! construction (it inherits `Instant`'s guarantee), cheap (one `OnceLock`
//! load + one `Instant::now`), and comparable across threads of one process.
//! Cross-*process* comparability is handled at serialization time by
//! shifting with a per-process clock offset (see
//! [`encode_events`](crate::export::encode_events)), which the socket
//! transport derives from its HELLO handshake.
//!
//! [`Stopwatch`] and [`PhaseTimes`] moved here from `distger-cluster`'s
//! `timer` module (which now deprecates and re-exports them): the paper
//! reports end-to-end time broken down into partitioning, random walks
//! (sampling), and training (§6.2, §8.1), and that breakdown belongs to the
//! observability layer, not the cluster runtime.

use std::sync::OnceLock;
use std::time::Instant;

/// The process-global trace epoch, pinned on first use.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process-global trace epoch.
///
/// Non-decreasing across calls within one thread and between threads of the
/// same process (per the platform's `Instant` guarantee). Signed so that
/// cross-process clock-offset shifts cannot wrap.
pub fn now_micros() -> i64 {
    epoch().elapsed().as_micros() as i64
}

/// A simple wall-clock stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts (or restarts) timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Restarts the stopwatch and returns the elapsed seconds before restart.
    pub fn lap(&mut self) -> f64 {
        let elapsed = self.elapsed_secs();
        self.start = Instant::now();
        elapsed
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Per-phase wall-clock times of one end-to-end run, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Graph partitioning time.
    pub partition_secs: f64,
    /// Random-walk (sampling) time.
    pub sampling_secs: f64,
    /// Embedding training time.
    pub training_secs: f64,
    /// Modelled additional communication time (from the network model).
    pub modelled_comm_secs: f64,
}

impl PhaseTimes {
    /// End-to-end wall-clock total (excluding the modelled communication
    /// component, which is reported separately because the computation here
    /// runs on one physical host).
    pub fn end_to_end_secs(&self) -> f64 {
        self.partition_secs + self.sampling_secs + self.training_secs
    }

    /// End-to-end total including the modelled cross-machine communication.
    pub fn end_to_end_with_comm_secs(&self) -> f64 {
        self.end_to_end_secs() + self.modelled_comm_secs
    }

    /// Component-wise sum of two phase breakdowns.
    pub fn add(&self, other: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            partition_secs: self.partition_secs + other.partition_secs,
            sampling_secs: self.sampling_secs + other.sampling_secs,
            training_secs: self.training_secs + other.training_secs,
            modelled_comm_secs: self.modelled_comm_secs + other.modelled_comm_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_time() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let t = sw.lap();
        assert!(t >= 0.004, "expected at least ~5ms, got {t}");
        assert!(sw.elapsed_secs() < t, "lap must restart the stopwatch");
    }

    #[test]
    fn phase_times_totals() {
        let a = PhaseTimes {
            partition_secs: 1.0,
            sampling_secs: 2.0,
            training_secs: 3.0,
            modelled_comm_secs: 0.5,
        };
        assert!((a.end_to_end_secs() - 6.0).abs() < 1e-12);
        assert!((a.end_to_end_with_comm_secs() - 6.5).abs() < 1e-12);
        let b = a.add(&a);
        assert!((b.training_secs - 6.0).abs() < 1e-12);
    }

    #[test]
    fn trace_clock_is_monotonic_across_threads() {
        let t0 = now_micros();
        let t1 = std::thread::spawn(now_micros).join().unwrap();
        let t2 = now_micros();
        assert!(t0 <= t1 && t1 <= t2);
    }
}
