//! Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and a
//! compact wire codec for shipping event buffers between processes.
//!
//! The JSON writer is hand-rolled (this crate has no dependencies); the
//! emitted document is the Chrome `traceEvents` array-of-objects form that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load directly,
//! with one track per `(pid, tid)` — i.e. per machine and thread once the
//! cross-process merge has stamped endpoint ids.
//!
//! The wire codec is little-endian and self-describing enough for the
//! coordinator to decode buffers gathered from workers. It lives here (not
//! in the cluster crate's `wire` module) because `distger-obs` sits below
//! every other crate in the dependency graph. Encoding stamps two things
//! serialization time is the right moment for: the sender's endpoint id as
//! `pid`, and the sender's clock offset (measured against the coordinator's
//! clock during the transport handshake) added to every timestamp, so merged
//! timelines share the coordinator's time base.

use crate::span::{Phase, TraceEvent};
use std::borrow::Cow;
use std::fmt::Write as _;

/// Renders events as a Chrome trace-event JSON document.
///
/// Each event becomes `{"name", "ph", "ts", "pid", "tid", "args"}`; instant
/// events carry `"s": "t"` (thread scope). `machine`/`round` ride in `args`
/// when present so Perfetto shows them in the span details pane.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match event.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        };
        out.push_str("{\"name\":\"");
        escape_json_into(&mut out, &event.name);
        let _ = write!(
            out,
            "\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            event.ts_micros, event.pid, event.tid
        );
        if event.phase == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if event.machine >= 0 || event.round >= 0 {
            out.push_str(",\"args\":{");
            let mut first = true;
            if event.machine >= 0 {
                let _ = write!(out, "\"machine\":{}", event.machine);
                first = false;
            }
            if event.round >= 0 {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "\"round\":{}", event.round);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Escapes `s` for a JSON string literal (quotes, backslashes, control
/// characters — span names are plain identifiers in practice, but the
/// exporter must not emit invalid JSON for any input).
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

const EVENT_WIRE_VERSION: u16 = 1;

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| "trace event payload truncated".to_string())?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Serializes an event buffer for the cross-process merge, stamping every
/// event with the sender's endpoint id (`pid`) and shifting timestamps by
/// `offset_micros` (the sender's clock offset relative to the coordinator,
/// from the transport handshake) so the decoded timeline is already aligned
/// to the coordinator's clock.
pub fn encode_events(events: &[TraceEvent], pid: u32, offset_micros: i64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + events.len() * 40);
    put_u16(&mut buf, EVENT_WIRE_VERSION);
    put_u32(&mut buf, pid);
    put_u32(&mut buf, events.len() as u32);
    for event in events {
        let name = event.name.as_bytes();
        put_u16(&mut buf, name.len().min(u16::MAX as usize) as u16);
        buf.extend_from_slice(&name[..name.len().min(u16::MAX as usize)]);
        buf.push(match event.phase {
            Phase::Begin => 0,
            Phase::End => 1,
            Phase::Instant => 2,
        });
        put_i64(&mut buf, event.ts_micros.saturating_add(offset_micros));
        put_u32(&mut buf, event.tid);
        put_i64(&mut buf, event.machine);
        put_i64(&mut buf, event.round);
    }
    buf
}

/// Decodes a buffer produced by [`encode_events`]. The embedded endpoint id
/// becomes every event's `pid`; timestamps were already offset-aligned by
/// the sender.
pub fn decode_events(payload: &[u8]) -> Result<Vec<TraceEvent>, String> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let version = r.u16()?;
    if version != EVENT_WIRE_VERSION {
        return Err(format!(
            "unsupported trace event wire version {version} (expected {EVENT_WIRE_VERSION})"
        ));
    }
    let pid = r.u32()?;
    let count = r.u32()? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let name_len = r.u16()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| "trace event name is not UTF-8".to_string())?;
        let phase = match r.take(1)?[0] {
            0 => Phase::Begin,
            1 => Phase::End,
            2 => Phase::Instant,
            other => return Err(format!("unknown trace event phase tag {other}")),
        };
        let ts_micros = r.i64()?;
        let tid = r.u32()?;
        let machine = r.i64()?;
        let round = r.i64()?;
        events.push(TraceEvent {
            name: Cow::Owned(name),
            phase,
            ts_micros,
            pid,
            tid,
            machine,
            round,
        });
    }
    if r.pos != payload.len() {
        return Err("trailing bytes after trace event payload".to_string());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                name: Cow::Borrowed("superstep"),
                phase: Phase::Begin,
                ts_micros: 100,
                pid: 0,
                tid: 1,
                machine: 2,
                round: 7,
            },
            TraceEvent {
                name: Cow::Borrowed("fault \"x\"\n"),
                phase: Phase::Instant,
                ts_micros: 150,
                pid: 0,
                tid: 1,
                machine: -1,
                round: -1,
            },
            TraceEvent {
                name: Cow::Borrowed("superstep"),
                phase: Phase::End,
                ts_micros: 200,
                pid: 0,
                tid: 1,
                machine: 2,
                round: 7,
            },
        ]
    }

    #[test]
    fn chrome_trace_has_expected_shape() {
        let json = chrome_trace_json(&sample_events());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains(
            "{\"name\":\"superstep\",\"ph\":\"B\",\"ts\":100,\"pid\":0,\"tid\":1,\
             \"args\":{\"machine\":2,\"round\":7}}"
        ));
        // Instant events carry thread scope; special characters are escaped.
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("fault \\\"x\\\"\\n"));
        // No args object for context-free events.
        let instant = json.split("\"ph\":\"i\"").nth(1).unwrap();
        assert!(!instant[..instant.find('}').unwrap()].contains("args"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
    }

    #[test]
    fn wire_roundtrip_stamps_pid_and_offset() {
        let events = sample_events();
        let payload = encode_events(&events, 3, 1000);
        let decoded = decode_events(&payload).unwrap();
        assert_eq!(decoded.len(), events.len());
        for (orig, dec) in events.iter().zip(&decoded) {
            assert_eq!(dec.name, orig.name);
            assert_eq!(dec.phase, orig.phase);
            assert_eq!(dec.ts_micros, orig.ts_micros + 1000);
            assert_eq!(dec.pid, 3);
            assert_eq!(dec.tid, orig.tid);
            assert_eq!(dec.machine, orig.machine);
            assert_eq!(dec.round, orig.round);
        }
    }

    #[test]
    fn negative_offset_shifts_backwards() {
        let events = sample_events();
        let decoded = decode_events(&encode_events(&events, 1, -90)).unwrap();
        assert_eq!(decoded[0].ts_micros, 10);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let good = encode_events(&sample_events(), 0, 0);
        assert!(decode_events(&good[..good.len() - 1]).is_err(), "truncated");
        let mut extra = good.clone();
        extra.push(0);
        assert!(decode_events(&extra).is_err(), "trailing bytes");
        let mut bad_version = good.clone();
        bad_version[0] = 99;
        assert!(decode_events(&bad_version).is_err(), "bad version");
        assert!(decode_events(&[]).is_err(), "empty payload");
    }

    #[test]
    fn empty_event_list_roundtrips() {
        let payload = encode_events(&[], 5, 123);
        assert_eq!(decode_events(&payload).unwrap(), Vec::new());
    }
}
