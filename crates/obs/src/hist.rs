//! The shared histogram type of the metrics layer.
//!
//! Moved here from `distger-serve`'s scheduler (which keeps a re-export shim)
//! so every layer records distributions into the same representation and the
//! [`MetricsRegistry`](crate::MetricsRegistry) can expose them uniformly —
//! including as Prometheus cumulative buckets, which the power-of-two layout
//! maps onto directly.

/// A fixed-bucket power-of-two histogram: values land in the bucket of
/// their bit length, so 65 buckets cover all of `u64` with no allocation
/// and O(1) recording. Quantiles report the **upper bound** of the bucket
/// the quantile falls in (a ≤2x overestimate — conservative in the right
/// direction for latency SLOs); the exact maximum is tracked separately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; 65],
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            counts: [0; 65],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Merges another histogram into this one: bucket-wise count addition,
    /// saturating sum, and the maximum of the two maxima. The result is
    /// exactly the histogram that recording both value streams into one
    /// instance would have produced.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The histogram of values recorded since `earlier` was snapshotted from
    /// this same instance (bucket-wise saturating subtraction). The exact
    /// maximum of only-the-new values is not recoverable from two snapshots,
    /// so the diff conservatively keeps this instance's maximum.
    pub fn diff(&self, earlier: &Log2Histogram) -> Log2Histogram {
        let mut out = self.clone();
        for (mine, theirs) in out.counts.iter_mut().zip(&earlier.counts) {
            *mine = mine.saturating_sub(*theirs);
        }
        out.total = out.total.saturating_sub(earlier.total);
        out.sum = out.sum.saturating_sub(earlier.sum);
        out
    }

    /// Iterates the non-empty buckets as `(upper_bound, count)` pairs in
    /// ascending bound order (bucket 64's bound saturates to `u64::MAX`).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(bucket, &count)| (bucket_upper_bound(bucket), count))
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q·total)`-th smallest recorded value, clamped to
    /// the exact maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // bucket 64's bound wraps to u64::MAX via the wrapping ops in
                // bucket_upper_bound; clamp every bucket to the observed max.
                return bucket_upper_bound(bucket).min(self.max);
            }
        }
        self.max
    }
}

/// Largest value that lands in `bucket` (0 for bucket 0, `2^b - 1` for
/// bucket `b`, saturating to `u64::MAX` for bucket 64).
fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        (1u64 << (bucket - 1)).wrapping_mul(2).wrapping_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_the_exact_values() {
        let mut hist = Log2Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            hist.record(v);
        }
        assert_eq!(hist.total(), 7);
        assert_eq!(hist.max(), 1_000_000);
        assert_eq!(hist.quantile(1.0), 1_000_000);
        // p50 of 7 values = 4th smallest (3) → bucket upper bound 3.
        assert_eq!(hist.quantile(0.5), 3);
        // The upper-bound contract: quantile ≥ the true value, ≤ 2x.
        let p85 = hist.quantile(0.85); // 6th smallest = 1000
        assert!((1000..=2047).contains(&p85));
        assert_eq!(Log2Histogram::default().quantile(0.99), 0);
        assert_eq!(hist.quantile(0.0), 0, "rank clamps to the first value");
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let (a_vals, b_vals) = ([1u64, 5, 5, 900], [0u64, 2, 65_000]);
        let mut a = Log2Histogram::default();
        let mut b = Log2Histogram::default();
        let mut both = Log2Histogram::default();
        for v in a_vals {
            a.record(v);
            both.record(v);
        }
        for v in b_vals {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.total(), 7);
        assert_eq!(a.max(), 65_000);
    }

    #[test]
    fn diff_recovers_the_values_recorded_in_between() {
        let mut hist = Log2Histogram::default();
        hist.record(3);
        hist.record(100);
        let earlier = hist.clone();
        hist.record(7);
        hist.record(7);
        let d = hist.diff(&earlier);
        assert_eq!(d.total(), 2);
        assert_eq!(d.sum(), 14);
        assert_eq!(d.quantile(1.0).min(7), 7);
    }

    #[test]
    fn buckets_iterate_cumulative_friendly_bounds() {
        let mut hist = Log2Histogram::default();
        hist.record(0);
        hist.record(1);
        hist.record(6);
        let buckets: Vec<(u64, u64)> = hist.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (7, 1)]);
        let total: u64 = buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, hist.total());
    }

    #[test]
    fn top_bucket_bound_saturates() {
        let mut hist = Log2Histogram::default();
        hist.record(u64::MAX);
        assert_eq!(hist.buckets().next(), Some((u64::MAX, 1)));
        assert_eq!(hist.quantile(1.0), u64::MAX);
    }
}
