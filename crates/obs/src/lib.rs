//! # distger-obs — unified tracing + metrics for the DistGER reproduction
//!
//! The observability layer every other crate records into. Std-only, no
//! dependencies, and deliberately the **lowest** crate in the workspace so
//! the cluster runtime, walk engine, trainer, and serving front-end can all
//! instrument themselves without dependency cycles.
//!
//! Three pieces:
//!
//! - **Metrics** ([`MetricsRegistry`]): named counters, gauges, and
//!   [`Log2Histogram`]s behind cheap atomic handles, with a snapshot/diff
//!   API and Prometheus text exposition ([`MetricsSnapshot::to_prometheus`]).
//! - **Spans** ([`span!`], [`SpanGuard`]): begin/end events into per-thread
//!   ring buffers on a monotonic microsecond clock ([`now_micros`]). Off by
//!   default; when disabled each instrumentation site costs one relaxed
//!   atomic load, which keeps the walk engine's hot path unaffected (gated
//!   by the `obs_overhead` benchmark).
//! - **Export** ([`chrome_trace_json`], [`encode_events`]/[`decode_events`]):
//!   Chrome trace-event JSON that Perfetto loads directly, plus a compact
//!   wire codec for the cross-process merge — workers drain their buffers at
//!   round boundaries, ship them over the control channel, and the
//!   coordinator [`absorb`]s them into one clock-aligned timeline.
//!
//! ```
//! use distger_obs as obs;
//!
//! obs::set_tracing(true);
//! {
//!     let _round = obs::span!("round", machine = 0, round = 3);
//!     obs::global().counter("walks.steps").add(128);
//! }
//! let trace = obs::chrome_trace_json(&obs::drain_all());
//! assert!(trace.contains("\"name\":\"round\""));
//! # obs::set_tracing(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod export;
mod hist;
mod metrics;
mod span;

pub use clock::{now_micros, PhaseTimes, Stopwatch};
pub use export::{chrome_trace_json, decode_events, encode_events};
pub use hist::Log2Histogram;
pub use metrics::{global, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use span::{
    absorb, drain_all, drain_thread, instant, record, set_tracing, span_guard, tracing_enabled,
    Phase, SpanGuard, TraceEvent, DEFAULT_RING_CAPACITY,
};
