//! The metrics registry: named counters, gauges, and histograms with cheap
//! atomic handles, a snapshot/diff API, and Prometheus text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s resolved once
//! by name and then updated lock-free (counters, gauges) or under an
//! uncontended per-metric mutex (histograms) — hot paths never touch the
//! name table. [`MetricsRegistry::snapshot`] freezes every metric into a
//! [`MetricsSnapshot`]; `later.diff(&earlier)` isolates what one phase
//! contributed, which is how per-round transport traffic is attributed
//! without resetting live counters.

use crate::hist::Log2Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed value that may go up or down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle over a shared [`Log2Histogram`].
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<Mutex<Log2Histogram>>);

impl Histogram {
    /// Records one value.
    pub fn record(&self, value: u64) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(value);
    }

    /// A copy of the current distribution.
    pub fn get(&self) -> Log2Histogram {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A registry of named metrics. Cloning shares the underlying store; the
/// [`global`] registry is what the instrumented layers use so one scrape
/// sees the whole process.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

/// Recovers a poisoned name-table lock: the maps hold only independent
/// handles, valid in any state a panicking holder left them.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use. Resolve once and keep
    /// the handle; updates through the handle never touch the name table.
    pub fn counter(&self, name: &str) -> Counter {
        lock(&self.inner.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        lock(&self.inner.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        lock(&self.inner.histograms)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Freezes every metric into an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.inner.counters)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: lock(&self.inner.gauges)
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: lock(&self.inner.histograms)
                .iter()
                .map(|(name, h)| (name.clone(), h.get()))
                .collect(),
        }
    }
}

/// The process-wide registry the instrumented layers record into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

/// A point-in-time copy of a registry's metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram distributions by name.
    pub histograms: BTreeMap<String, Log2Histogram>,
}

impl MetricsSnapshot {
    /// What happened between `earlier` and `self` (both snapshots of the
    /// same registry): counters and histograms subtract (saturating — a
    /// metric born after `earlier` reports its full value), gauges keep the
    /// later reading (a gauge is a level, not a flow).
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, &v)| {
                    let before = earlier.counters.get(name).copied().unwrap_or(0);
                    (name.clone(), v.saturating_sub(before))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| match earlier.histograms.get(name) {
                    Some(before) => (name.clone(), h.diff(before)),
                    None => (name.clone(), h.clone()),
                })
                .collect(),
        }
    }

    /// Merges another snapshot into this one: counters add, gauges add
    /// (useful when per-endpoint gauges measure disjoint resources),
    /// histograms merge.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Histograms become cumulative `_bucket{le="..."}` series over the
    /// power-of-two bounds, plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, &value) in &self.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, &value) in &self.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in hist.buckets() {
                cumulative += count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.total());
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_count {}", hist.total());
        }
        out
    }

    /// Writes [`to_prometheus`](MetricsSnapshot::to_prometheus) to a file.
    pub fn write_prometheus(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_prometheus())
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map everything else to `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("frames");
        let b = registry.counter("frames");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("frames").get(), 3);

        let g = registry.gauge("inflight");
        g.add(5);
        g.add(-2);
        assert_eq!(registry.gauge("inflight").get(), 3);

        registry.histogram("lat").record(100);
        assert_eq!(registry.histogram("lat").get().total(), 1);
    }

    #[test]
    fn snapshot_diff_isolates_a_phase() {
        let registry = MetricsRegistry::new();
        let frames = registry.counter("frames");
        let lat = registry.histogram("lat");
        frames.add(10);
        lat.record(50);
        let before = registry.snapshot();
        frames.add(7);
        lat.record(9);
        registry.counter("born_later").add(3);
        let after = registry.snapshot();
        let delta = after.diff(&before);
        assert_eq!(delta.counters["frames"], 7);
        assert_eq!(delta.counters["born_later"], 3);
        assert_eq!(delta.histograms["lat"].total(), 1);
        assert_eq!(delta.histograms["lat"].sum(), 9);
    }

    #[test]
    fn merge_sums_across_snapshots() {
        let r1 = MetricsRegistry::new();
        r1.counter("frames").add(2);
        r1.histogram("lat").record(4);
        let r2 = MetricsRegistry::new();
        r2.counter("frames").add(3);
        r2.histogram("lat").record(8);
        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counters["frames"], 5);
        assert_eq!(merged.histograms["lat"].total(), 2);
        assert_eq!(merged.histograms["lat"].sum(), 12);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let registry = MetricsRegistry::new();
        registry.counter("transport.frames_sent").add(12);
        registry.gauge("queue-depth").set(-1);
        let lat = registry.histogram("latency_nanos");
        lat.record(1);
        lat.record(3);
        lat.record(3);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE transport_frames_sent counter"));
        assert!(text.contains("transport_frames_sent 12"));
        assert!(text.contains("queue_depth -1"));
        // Cumulative buckets: one value ≤1, all three ≤3 and ≤+Inf.
        assert!(text.contains("latency_nanos_bucket{le=\"1\"} 1"));
        assert!(text.contains("latency_nanos_bucket{le=\"3\"} 3"));
        assert!(text.contains("latency_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("latency_nanos_sum 7"));
        assert!(text.contains("latency_nanos_count 3"));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("obs.test.global").inc();
        assert!(global().snapshot().counters["obs.test.global"] >= 1);
    }
}
