//! Span-based tracing into per-thread ring buffers.
//!
//! The recording path is built to be cheap enough for the walk engine's hot
//! loop to tolerate when tracing is off: [`span!`](crate::span!) first loads
//! one relaxed `AtomicBool` and, when tracing is disabled, does nothing else
//! — no clock read, no allocation, no lock. When enabled, each thread
//! appends [`TraceEvent`]s to its own bounded ring buffer (oldest events are
//! dropped on overflow), so threads never contend on a shared sink.
//!
//! Buffers are registered in a process-global table the first time a thread
//! records, which lets [`drain_all`] collect every thread's events — plus
//! any foreign (cross-process) events deposited via [`absorb`] — into one
//! timeline for export.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Default per-thread ring capacity, in events. At two events per span this
/// holds ~32k spans per thread — hours of round-granular tracing — while
/// bounding memory at ~4 MB/thread worst case.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span recording is currently on.
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide. Off is the default; when
/// off, instrumentation sites cost one relaxed atomic load.
pub fn set_tracing(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A span opened ("B" in the Chrome trace format).
    Begin,
    /// A span closed ("E").
    End,
    /// A point event with no duration ("i").
    Instant,
}

/// One record in the trace timeline.
///
/// `pid` is 0 until export: [`encode_events`](crate::export::encode_events)
/// stamps the transport endpoint id so merged cross-process timelines keep
/// one track group per machine. `machine`/`round` are −1 when the span has
/// no such context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span or event name (static in the common case — no allocation).
    pub name: Cow<'static, str>,
    /// Begin, end, or instant.
    pub phase: Phase,
    /// Microseconds since the trace epoch (see [`crate::now_micros`]),
    /// strictly increasing within one `(pid, tid)` track.
    pub ts_micros: i64,
    /// Process (endpoint) id; 0 until stamped at serialization time.
    pub pid: u32,
    /// Thread ordinal within the process.
    pub tid: u32,
    /// Machine id the work belongs to, or −1.
    pub machine: i64,
    /// BSP round / superstep index, or −1.
    pub round: i64,
}

struct Ring {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    /// Last timestamp handed out on this thread; recording clamps to
    /// `last + 1` so per-thread timestamps are strictly monotonic even when
    /// two events land within the same microsecond.
    last_ts: i64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            events: std::collections::VecDeque::new(),
            capacity,
            last_ts: -1,
        }
    }

    fn push(&mut self, mut event: TraceEvent) {
        event.ts_micros = event.ts_micros.max(self.last_ts + 1);
        self.last_ts = event.ts_micros;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }
}

#[derive(Default)]
struct Registry {
    /// Every thread's ring, kept alive past thread exit so late drains still
    /// see the events.
    rings: Vec<Arc<Mutex<Ring>>>,
    /// Events absorbed from other processes, already pid-stamped.
    foreign: Vec<TraceEvent>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static THREAD_RING: (u32, Arc<Mutex<Ring>>) = {
        static NEXT_TID: AtomicU32 = AtomicU32::new(0);
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(Mutex::new(Ring::new(DEFAULT_RING_CAPACITY)));
        lock(registry()).rings.push(ring.clone());
        (tid, ring)
    };
}

/// Records one event into the current thread's ring. No-op while tracing is
/// disabled.
pub fn record(name: Cow<'static, str>, phase: Phase, machine: i64, round: i64) {
    if !tracing_enabled() {
        return;
    }
    let ts_micros = crate::now_micros();
    THREAD_RING.with(|(tid, ring)| {
        lock(ring).push(TraceEvent {
            name,
            phase,
            ts_micros,
            pid: 0,
            tid: *tid,
            machine,
            round,
        });
    });
}

/// Records an [`Phase::Instant`] event (a durationless marker such as a
/// fault trip or a shed request). No-op while tracing is disabled.
pub fn instant(name: impl Into<Cow<'static, str>>, machine: i64, round: i64) {
    if tracing_enabled() {
        record(name.into(), Phase::Instant, machine, round);
    }
}

/// An RAII guard that closes a span on drop.
///
/// Created by [`span_guard`] (usually via the [`span!`](crate::span!)
/// macro). If tracing was off when the span opened, the guard is unarmed
/// and drop records nothing — so a span enabled mid-flight cannot emit an
/// `End` without its `Begin`.
#[must_use = "a span closes when this guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    name: Option<Cow<'static, str>>,
    machine: i64,
    round: i64,
}

impl SpanGuard {
    /// A guard that records nothing on drop.
    pub fn disarmed() -> Self {
        Self {
            name: None,
            machine: -1,
            round: -1,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            // Record the End unconditionally (even if tracing was switched
            // off mid-span) so every recorded Begin gets its matching End.
            let ts_micros = crate::now_micros();
            THREAD_RING.with(|(tid, ring)| {
                lock(ring).push(TraceEvent {
                    name,
                    phase: Phase::End,
                    ts_micros,
                    pid: 0,
                    tid: *tid,
                    machine: self.machine,
                    round: self.round,
                });
            });
        }
    }
}

/// Opens a span: records a [`Phase::Begin`] now and a [`Phase::End`] when
/// the returned guard drops. Returns a disarmed guard while tracing is off.
pub fn span_guard(name: impl Into<Cow<'static, str>>, machine: i64, round: i64) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard::disarmed();
    }
    let name = name.into();
    record(name.clone(), Phase::Begin, machine, round);
    SpanGuard {
        name: Some(name),
        machine,
        round,
    }
}

/// Opens a [`SpanGuard`](crate::SpanGuard) for the enclosing scope.
///
/// ```
/// # use distger_obs::span;
/// # distger_obs::set_tracing(true);
/// {
///     let _span = span!("superstep", machine = 3, round = 7);
///     // ... work ...
/// } // span ends here
/// let _span = span!("flush"); // no machine/round context
/// # drop(_span);
/// # distger_obs::set_tracing(false);
/// # distger_obs::drain_all();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_guard($name, -1, -1)
    };
    ($name:expr, machine = $machine:expr) => {
        $crate::span_guard($name, $machine as i64, -1)
    };
    ($name:expr, round = $round:expr) => {
        $crate::span_guard($name, -1, $round as i64)
    };
    ($name:expr, machine = $machine:expr, round = $round:expr) => {
        $crate::span_guard($name, $machine as i64, $round as i64)
    };
}

/// Drains and returns the current thread's buffered events. This is what
/// workers ship at round boundaries: each endpoint's round loop runs on one
/// thread, so draining the current thread captures exactly its events.
pub fn drain_thread() -> Vec<TraceEvent> {
    THREAD_RING.with(|(_, ring)| {
        let mut ring = lock(ring);
        ring.events.drain(..).collect()
    })
}

/// Drains every thread's buffer plus all [`absorb`]ed foreign events into
/// one timeline, sorted by `(pid, tid, ts_micros)`.
pub fn drain_all() -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = Vec::new();
    {
        let mut reg = lock(registry());
        for ring in &reg.rings {
            out.extend(lock(ring).events.drain(..));
        }
        out.append(&mut reg.foreign);
    }
    out.sort_by_key(|e| (e.pid, e.tid, e.ts_micros));
    out
}

/// Deposits events collected from another process (already pid-stamped and
/// clock-aligned by [`encode_events`](crate::export::encode_events)) into
/// the global store, to be returned by the next [`drain_all`].
pub fn absorb(events: Vec<TraceEvent>) {
    lock(registry()).foreign.extend(events);
}

#[cfg(test)]
mod tests {
    use super::*;

    // All span tests share the process-global tracing flag and registry, so
    // they run as ONE #[test] to avoid cross-test interference under the
    // parallel test runner.
    #[test]
    fn span_recording_lifecycle() {
        // Disabled: nothing is recorded, guards are disarmed.
        assert!(!tracing_enabled());
        {
            let _g = span!("ignored", machine = 1, round = 2);
            instant("also_ignored", -1, -1);
        }
        assert!(drain_thread().is_empty());

        // Enabled: Begin/End pairs and instants land in order.
        set_tracing(true);
        {
            let _outer = span!("round", machine = 0, round = 5);
            instant("fault_trip", 0, 5);
            let _inner = span!("exchange");
        }
        let events = drain_thread();
        set_tracing(false);
        let names: Vec<(&str, Phase)> = events.iter().map(|e| (e.name.as_ref(), e.phase)).collect();
        assert_eq!(
            names,
            vec![
                ("round", Phase::Begin),
                ("fault_trip", Phase::Instant),
                ("exchange", Phase::Begin),
                ("exchange", Phase::End),
                ("round", Phase::End),
            ]
        );
        assert_eq!(events[0].machine, 0);
        assert_eq!(events[0].round, 5);
        assert_eq!(events[2].machine, -1);
        // Strictly monotonic timestamps within the thread track.
        for pair in events.windows(2) {
            assert!(pair[0].ts_micros < pair[1].ts_micros);
        }
        // All on the same tid; drained, so the buffer is now empty.
        assert!(events.iter().all(|e| e.tid == events[0].tid));
        assert!(drain_thread().is_empty());

        // A span that outlives a mid-flight disable still closes.
        set_tracing(true);
        let g = span!("closed_anyway");
        set_tracing(false);
        drop(g);
        let events = drain_thread();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].phase, Phase::End);

        // A span opened while disabled records nothing even if tracing
        // turns on before the guard drops.
        let g = span!("never_began");
        set_tracing(true);
        drop(g);
        let leftover = drain_thread();
        set_tracing(false);
        assert!(leftover.iter().all(|e| e.name != "never_began"));

        // drain_all sees other threads' events and absorbed foreign ones.
        set_tracing(true);
        std::thread::spawn(|| {
            let _g = span!("worker_side", machine = 3);
        })
        .join()
        .unwrap();
        absorb(vec![TraceEvent {
            name: Cow::Borrowed("foreign"),
            phase: Phase::Instant,
            ts_micros: 42,
            pid: 9,
            tid: 0,
            machine: -1,
            round: -1,
        }]);
        let all = drain_all();
        set_tracing(false);
        assert!(all.iter().any(|e| e.name == "worker_side"));
        assert!(all.iter().any(|e| e.pid == 9 && e.name == "foreign"));
        // Sorted by (pid, tid, ts): local pid-0 events precede foreign pid-9.
        let foreign_pos = all.iter().position(|e| e.pid == 9).unwrap();
        assert!(all[..foreign_pos].iter().all(|e| e.pid == 0));
        assert!(drain_all().is_empty());
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let mut ring = Ring::new(3);
        for i in 0..5 {
            ring.push(TraceEvent {
                name: Cow::Borrowed("e"),
                phase: Phase::Instant,
                ts_micros: i,
                pid: 0,
                tid: 0,
                machine: -1,
                round: -1,
            });
        }
        assert_eq!(ring.events.len(), 3);
        assert_eq!(ring.events[0].ts_micros, 2);
        // Equal raw timestamps are nudged to stay strictly increasing.
        ring.push(TraceEvent {
            name: Cow::Borrowed("same_ts"),
            phase: Phase::Instant,
            ts_micros: 4,
            pid: 0,
            tid: 0,
            machine: -1,
            round: -1,
        });
        assert_eq!(ring.events.back().unwrap().ts_micros, 5);
    }
}
