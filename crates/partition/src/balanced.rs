//! KnightKing-style workload-balancing node partitioner.
//!
//! KnightKing (§2.2) assigns each node (with its edges) to a machine so that
//! the per-machine *edge counts* — a proxy for random-walk workload — are
//! balanced. Locality is ignored entirely, which is exactly the weakness MPGP
//! addresses: the paper measures ~45% more cross-machine messages under this
//! scheme (Figure 10(c)).

use crate::{MachineId, Partitioning};
use distger_graph::CsrGraph;

/// Greedy workload-balancing partition: nodes are visited in descending
/// degree order and each is placed on the machine currently holding the
/// fewest arcs (longest-processing-time-first scheduling).
pub fn workload_balanced_partition(graph: &CsrGraph, num_machines: usize) -> Partitioning {
    assert!(num_machines > 0);
    let mut assignment: Vec<MachineId> = vec![0; graph.num_nodes()];
    let mut load = vec![0usize; num_machines];
    for u in graph.nodes_by_degree_desc() {
        let target = (0..num_machines)
            .min_by_key(|&m| load[m])
            .expect("at least one machine");
        assignment[u as usize] = target;
        load[target] += graph.degree(u).max(1);
    }
    Partitioning::new(assignment, num_machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_graph::barabasi_albert;

    #[test]
    fn workload_is_balanced() {
        let g = barabasi_albert(500, 4, 2);
        let p = workload_balanced_partition(&g, 4);
        let factor = p.arc_balance_factor(&g);
        assert!(
            factor < 1.05,
            "arc balance factor should be near 1, got {factor}"
        );
    }

    #[test]
    fn every_machine_gets_nodes() {
        let g = barabasi_albert(100, 2, 3);
        let p = workload_balanced_partition(&g, 8);
        assert!(p.node_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn single_machine_case() {
        let g = barabasi_albert(50, 2, 3);
        let p = workload_balanced_partition(&g, 1);
        assert_eq!(p.edge_cut(&g), 0);
    }
}
