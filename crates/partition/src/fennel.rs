//! FENNEL streaming partitioner.
//!
//! Tsourakakis et al.'s FENNEL replaces LDG's hard capacities with a soft
//! cost: a streamed node goes to the partition maximizing
//! `|N(v) ∩ P_i| − α·γ·|P_i|^(γ−1)`, with the load exponent `γ = 1.5` and
//! `α = √m · |E| / |V|^1.5` as recommended in the original paper. Like LDG it
//! is one of the streaming baselines MPGP is compared against (§3.2).

use crate::{order::stream_order, MachineId, Partitioning, StreamingOrder};
use distger_graph::CsrGraph;

/// Configuration for [`fennel_partition`].
#[derive(Clone, Copy, Debug)]
pub struct FennelConfig {
    /// Load-cost exponent (`γ` in the FENNEL paper; 1.5 by default).
    pub gamma: f64,
    /// Balance slack: a partition may not exceed `slack · n / m` nodes.
    pub slack: f64,
    /// Node streaming order.
    pub order: StreamingOrder,
}

impl Default for FennelConfig {
    fn default() -> Self {
        Self {
            gamma: 1.5,
            slack: 1.1,
            order: StreamingOrder::Random,
        }
    }
}

/// Runs FENNEL over the configured streaming order.
pub fn fennel_partition(
    graph: &CsrGraph,
    num_machines: usize,
    config: FennelConfig,
    seed: u64,
) -> Partitioning {
    assert!(num_machines > 0);
    let n = graph.num_nodes();
    let e = graph.num_edges();
    let gamma = config.gamma;
    let alpha = if n == 0 {
        0.0
    } else {
        (num_machines as f64).sqrt() * e as f64 / (n as f64).powf(1.5)
    };
    let capacity = ((n as f64 / num_machines as f64) * config.slack)
        .ceil()
        .max(1.0);

    let mut assignment: Vec<MachineId> = vec![0; n];
    let mut assigned = vec![false; n];
    let mut sizes = vec![0usize; num_machines];
    let mut neighbor_counts = vec![0usize; num_machines];

    for v in stream_order(graph, config.order, seed) {
        neighbor_counts.iter_mut().for_each(|c| *c = 0);
        for &u in graph.neighbors(v) {
            if assigned[u as usize] {
                neighbor_counts[assignment[u as usize]] += 1;
            }
        }
        let mut best_m = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for m in 0..num_machines {
            if sizes[m] as f64 >= capacity {
                continue;
            }
            let load_cost = alpha * gamma * (sizes[m] as f64).powf(gamma - 1.0);
            let score = neighbor_counts[m] as f64 - load_cost;
            if score > best_score || (score == best_score && sizes[m] < sizes[best_m]) {
                best_score = score;
                best_m = m;
            }
        }
        if best_score == f64::NEG_INFINITY {
            best_m = (0..num_machines).min_by_key(|&m| sizes[m]).unwrap();
        }
        assignment[v as usize] = best_m;
        assigned[v as usize] = true;
        sizes[best_m] += 1;
    }
    Partitioning::new(assignment, num_machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_graph::{barabasi_albert, planted_partition};

    #[test]
    fn fennel_is_reasonably_balanced() {
        let g = barabasi_albert(400, 3, 9);
        let p = fennel_partition(&g, 4, FennelConfig::default(), 1);
        assert!(p.balance_factor() <= 1.15);
        assert_eq!(p.node_counts().iter().sum::<usize>(), 400);
    }

    #[test]
    fn fennel_exploits_communities() {
        let lg = planted_partition(200, 4, 0.25, 0.01, 0.0, 5);
        let g = &lg.graph;
        let fennel = fennel_partition(
            g,
            4,
            FennelConfig {
                order: StreamingOrder::Bfs,
                ..FennelConfig::default()
            },
            1,
        );
        let hash = crate::hash::hash_partition(g, 4);
        assert!(fennel.local_edge_fraction(g) > hash.local_edge_fraction(g));
    }

    #[test]
    fn fennel_single_machine() {
        let g = barabasi_albert(60, 2, 1);
        let p = fennel_partition(&g, 1, FennelConfig::default(), 3);
        assert_eq!(p.edge_cut(&g), 0);
    }
}
