//! Trivial modulo partitioner — the quality floor.

use crate::Partitioning;
use distger_graph::CsrGraph;

/// Assigns node `u` to machine `u % num_machines`. No locality, perfect node
/// balance; used as a sanity baseline in tests and ablations.
pub fn hash_partition(graph: &CsrGraph, num_machines: usize) -> Partitioning {
    assert!(num_machines > 0);
    let assignment = (0..graph.num_nodes()).map(|u| u % num_machines).collect();
    Partitioning::new(assignment, num_machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_graph::barabasi_albert;

    #[test]
    fn hash_partition_is_balanced() {
        let g = barabasi_albert(100, 2, 1);
        let p = hash_partition(&g, 4);
        assert_eq!(p.node_counts(), vec![25, 25, 25, 25]);
        assert!(p.balance_factor() <= 1.0 + 1e-9);
    }

    #[test]
    fn single_machine_hash_has_no_cut() {
        let g = barabasi_albert(100, 2, 1);
        let p = hash_partition(&g, 1);
        assert_eq!(p.edge_cut(&g), 0);
    }
}
