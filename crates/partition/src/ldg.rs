//! Linear Deterministic Greedy (LDG) streaming partitioner.
//!
//! Stanton & Kliot's LDG assigns a streamed node to the partition maximizing
//! `|N(v) ∩ P_i| · (1 − |P_i| / C)` where `C` is a fixed per-partition
//! capacity chosen in advance from the total node count. The paper (§3.2)
//! contrasts this fixed-capacity behaviour with MPGP's dynamic balancing.

use crate::{order::stream_order, MachineId, Partitioning, StreamingOrder};
use distger_graph::CsrGraph;
#[cfg(test)]
use distger_graph::NodeId;

/// Runs LDG over the given streaming order. `slack` multiplies the nominal
/// capacity `n / m` (1.0 = strict capacities, as in the original paper).
pub fn ldg_partition(
    graph: &CsrGraph,
    num_machines: usize,
    order: StreamingOrder,
    slack: f64,
    seed: u64,
) -> Partitioning {
    assert!(num_machines > 0);
    assert!(slack >= 1.0, "slack below 1.0 cannot fit all nodes");
    let n = graph.num_nodes();
    let capacity = ((n as f64 / num_machines as f64) * slack).ceil().max(1.0);
    let mut assignment: Vec<Option<MachineId>> = vec![None; n];
    let mut sizes = vec![0usize; num_machines];
    let mut neighbor_counts = vec![0usize; num_machines];

    for v in stream_order(graph, order, seed) {
        neighbor_counts.iter_mut().for_each(|c| *c = 0);
        for &u in graph.neighbors(v) {
            if let Some(m) = assignment[u as usize] {
                neighbor_counts[m] += 1;
            }
        }
        let mut best: Option<(f64, MachineId)> = None;
        for m in 0..num_machines {
            if (sizes[m] as f64) >= capacity {
                continue;
            }
            let score = neighbor_counts[m] as f64 * (1.0 - sizes[m] as f64 / capacity);
            let better = match best {
                None => true,
                Some((bs, bm)) => score > bs || (score == bs && sizes[m] < sizes[bm]),
            };
            if better {
                best = Some((score, m));
            }
        }
        // All partitions full can only happen due to ceil rounding; fall back
        // to the least-loaded machine.
        let target = best
            .map(|(_, m)| m)
            .unwrap_or_else(|| (0..num_machines).min_by_key(|&m| sizes[m]).unwrap());
        assignment[v as usize] = Some(target);
        sizes[target] += 1;
    }

    Partitioning::new(
        assignment.into_iter().map(|m| m.unwrap_or(0)).collect(),
        num_machines,
    )
}

/// Convenience wrapper matching the defaults used by the Table 5 comparison:
/// random streaming order and strict capacities.
pub fn ldg_default(graph: &CsrGraph, num_machines: usize, seed: u64) -> Partitioning {
    ldg_partition(graph, num_machines, StreamingOrder::Random, 1.0, seed)
}

/// Test helper: first-order neighbour count of `v` inside machine `m` under
/// `p`.
#[cfg(test)]
pub(crate) fn neighbors_in_partition(
    graph: &CsrGraph,
    p: &Partitioning,
    v: NodeId,
    m: MachineId,
) -> usize {
    graph
        .neighbors(v)
        .iter()
        .filter(|&&u| p.machine_of(u) == m)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_graph::{barabasi_albert, planted_partition};

    #[test]
    fn ldg_respects_capacity() {
        let g = barabasi_albert(400, 3, 1);
        let p = ldg_default(&g, 4, 7);
        let cap = (400f64 / 4.0).ceil() as usize;
        assert!(p.node_counts().iter().all(|&c| c <= cap + 1));
    }

    #[test]
    fn ldg_beats_hash_on_community_graph() {
        let lg = planted_partition(200, 4, 0.25, 0.01, 0.0, 3);
        let g = &lg.graph;
        let ldg = ldg_partition(g, 4, StreamingOrder::Bfs, 1.0, 1);
        let hash = crate::hash::hash_partition(g, 4);
        assert!(
            ldg.local_edge_fraction(g) > hash.local_edge_fraction(g),
            "LDG should exploit community structure better than hashing"
        );
    }

    #[test]
    fn neighbors_in_partition_helper() {
        let g = barabasi_albert(50, 2, 2);
        let p = crate::hash::hash_partition(&g, 2);
        let v = 10;
        let total: usize = (0..2).map(|m| neighbors_in_partition(&g, &p, v, m)).sum();
        assert_eq!(total, g.degree(v));
    }

    #[test]
    fn ldg_covers_all_nodes() {
        let g = barabasi_albert(123, 2, 5);
        let p = ldg_default(&g, 3, 0);
        assert_eq!(p.num_nodes(), 123);
        assert_eq!(p.node_counts().iter().sum::<usize>(), 123);
    }
}
