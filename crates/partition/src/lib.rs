//! Graph partitioners for the DistGER reproduction.
//!
//! Balanced graph partitioning with minimum edge-cut is NP-hard (§3.2), so
//! all partitioners here are streaming heuristics:
//!
//! * [`hash::hash_partition`] — trivial modulo assignment (lower bound on
//!   quality, upper bound on speed).
//! * [`balanced::workload_balanced_partition`] — KnightKing's scheme: balance
//!   the per-machine edge counts and nothing else (§2.2).
//! * [`ldg::ldg_partition`] — Linear Deterministic Greedy (Stanton & Kliot).
//! * [`fennel::fennel_partition`] — FENNEL (Tsourakakis et al.).
//! * [`mpgp`] — the paper's Multi-Proximity-aware streaming Graph
//!   Partitioning, sequential and parallel, with selectable streaming orders.
//!
//! Every partitioner returns a [`Partitioning`], which also exposes the
//! quality metrics used throughout §6.5 (edge cut, local edge fraction,
//! balance factor).

pub mod balanced;
pub mod fennel;
pub mod hash;
pub mod ldg;
pub mod mpgp;
pub mod order;

pub use mpgp::{mpgp_partition, parallel_mpgp_partition, MpgpConfig};
pub use order::StreamingOrder;

use distger_graph::{CsrGraph, NodeId};

/// Identifier of a (simulated) computing machine.
pub type MachineId = usize;

/// A node-to-machine assignment, the output of every partitioner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<MachineId>,
    num_machines: usize,
}

impl Partitioning {
    /// Creates a partitioning from an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if `num_machines == 0` or any entry is out of range.
    pub fn new(assignment: Vec<MachineId>, num_machines: usize) -> Self {
        assert!(num_machines > 0, "need at least one machine");
        assert!(
            assignment.iter().all(|&m| m < num_machines),
            "machine id out of range"
        );
        Self {
            assignment,
            num_machines,
        }
    }

    /// Puts every node on machine 0 — the single-machine degenerate case.
    pub fn single_machine(num_nodes: usize) -> Self {
        Self {
            assignment: vec![0; num_nodes],
            num_machines: 1,
        }
    }

    /// Machine owning node `u`.
    #[inline]
    pub fn machine_of(&self, u: NodeId) -> MachineId {
        self.assignment[u as usize]
    }

    /// Number of machines.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Number of nodes covered by the assignment.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// Raw assignment slice.
    #[inline]
    pub fn assignment(&self) -> &[MachineId] {
        &self.assignment
    }

    /// Number of nodes per machine.
    pub fn node_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_machines];
        for &m in &self.assignment {
            counts[m] += 1;
        }
        counts
    }

    /// Number of stored arcs (≈ walking workload) per machine; the quantity
    /// KnightKing balances.
    pub fn arc_counts(&self, graph: &CsrGraph) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_machines];
        for u in 0..graph.num_nodes() {
            counts[self.assignment[u]] += graph.degree(u as NodeId);
        }
        counts
    }

    /// Nodes assigned to machine `m`, in ascending id order.
    pub fn nodes_of(&self, m: MachineId) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &pm)| pm == m)
            .map(|(u, _)| u as NodeId)
            .collect()
    }

    /// Number of logical edges whose endpoints live on different machines.
    pub fn edge_cut(&self, graph: &CsrGraph) -> usize {
        graph
            .edges()
            .filter(|&(u, v, _)| self.machine_of(u) != self.machine_of(v))
            .count()
    }

    /// Fraction of logical edges that stay inside one machine. This is the
    /// "local partition utilization" MPGP optimizes for: a random walker
    /// crossing an edge stays local with exactly this probability under a
    /// uniform edge-usage model.
    pub fn local_edge_fraction(&self, graph: &CsrGraph) -> f64 {
        let total = graph.num_edges();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.edge_cut(graph) as f64 / total as f64
    }

    /// Load-balance factor: `max nodes per machine / (n / m)`. 1.0 is perfect.
    pub fn balance_factor(&self) -> f64 {
        let counts = self.node_counts();
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let avg = self.assignment.len() as f64 / self.num_machines as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Arc (workload) balance factor: `max arcs per machine / (arcs / m)`.
    pub fn arc_balance_factor(&self, graph: &CsrGraph) -> f64 {
        let counts = self.arc_counts(graph);
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let avg = graph.total_degree() as f64 / self.num_machines as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_graph::GraphBuilder;

    fn square_graph() -> CsrGraph {
        // 0-1, 1-2, 2-3, 3-0 (a 4-cycle)
        let mut b = GraphBuilder::new_undirected();
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        b.build()
    }

    #[test]
    fn metrics_on_explicit_partitioning() {
        let g = square_graph();
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.machine_of(0), 0);
        assert_eq!(p.machine_of(3), 1);
        assert_eq!(p.node_counts(), vec![2, 2]);
        assert_eq!(p.edge_cut(&g), 2); // edges 1-2 and 3-0 are cut
        assert!((p.local_edge_fraction(&g) - 0.5).abs() < 1e-12);
        assert!((p.balance_factor() - 1.0).abs() < 1e-12);
        assert_eq!(p.arc_counts(&g), vec![4, 4]);
    }

    #[test]
    fn single_machine_has_no_cut() {
        let g = square_graph();
        let p = Partitioning::single_machine(g.num_nodes());
        assert_eq!(p.edge_cut(&g), 0);
        assert_eq!(p.num_machines(), 1);
        assert!((p.local_edge_fraction(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nodes_of_lists_members() {
        let p = Partitioning::new(vec![0, 1, 0, 1, 1], 2);
        assert_eq!(p.nodes_of(0), vec![0, 2]);
        assert_eq!(p.nodes_of(1), vec![1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "machine id out of range")]
    fn new_rejects_out_of_range() {
        Partitioning::new(vec![0, 2], 2);
    }

    #[test]
    fn imbalanced_partitioning_has_high_balance_factor() {
        let p = Partitioning::new(vec![0, 0, 0, 1], 2);
        assert!((p.balance_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn local_edge_fraction_of_empty_graph_is_one() {
        let g = CsrGraph::empty(3, false);
        let p = Partitioning::new(vec![0, 1, 0], 2);
        assert_eq!(p.local_edge_fraction(&g), 1.0);
    }
}
