//! MPGP — Multi-Proximity-aware streaming Graph Partitioning (§3.2).
//!
//! An un-partitioned node `v` is assigned to the machine `i` maximizing
//!
//! ```text
//! (PΓ1(v, P_i) + PΓ2(v, P_i)) · τ(P_i)
//! τ(P_i) = 1 − |P_i| / (γ · avg partition size)
//! ```
//!
//! where `PΓ1` is the first-order proximity (the number — or total weight —
//! of `v`'s neighbours already in `P_i`), `PΓ2` the second-order proximity
//! (common-neighbour counts between `v` and its already-assigned neighbours
//! in `P_i`), and `τ` a dynamic load-balancing discount with slack `γ`.
//!
//! The three optimizations of the paper are implemented:
//! 1. first-order proximity via the Galloping intersection (implicitly, by
//!    scanning `N(v)` against the assignment array — `O(deg(v))` for all
//!    machines at once, which is never worse);
//! 2. second-order proximity only over nodes `u ∈ N(v) ∩ P_i` (a walker can
//!    only reach `u` from `v` if they are adjacent);
//! 3. selectable streaming orders (`DFS+degree` recommended sequentially);
//! 4. a parallel variant ([`parallel_mpgp_partition`]) that splits the stream
//!    into segments, partitions each independently, and merges the results
//!    (`BFS+degree` recommended there).

use crate::{order::stream_order, MachineId, Partitioning, StreamingOrder};
use distger_graph::{CsrGraph, NodeId};

/// Configuration of the MPGP partitioner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MpgpConfig {
    /// Load-balancing slack `γ` (Eq. 15). `1.0` forces strict balance,
    /// larger values trade balance for locality. The paper recommends `2.0`
    /// (Figure 13).
    pub gamma: f64,
    /// Node streaming order. The paper recommends `DFS+degree` for the
    /// sequential partitioner and `BFS+degree` for the parallel one.
    pub order: StreamingOrder,
    /// Whether to include the second-order proximity term `PΓ2`. Disabling it
    /// gives a cheaper, first-order-only ablation.
    pub use_second_order: bool,
    /// Seed for stochastic streaming orders.
    pub seed: u64,
}

impl Default for MpgpConfig {
    fn default() -> Self {
        Self {
            gamma: 2.0,
            order: StreamingOrder::DfsDegree,
            use_second_order: true,
            seed: 0,
        }
    }
}

impl MpgpConfig {
    /// The configuration recommended for the parallel variant.
    pub fn parallel_default() -> Self {
        Self {
            order: StreamingOrder::BfsDegree,
            ..Self::default()
        }
    }
}

/// Internal state shared by the sequential and parallel variants: assigns the
/// nodes of `stream` given (possibly pre-populated) partial partitions.
struct MpgpState<'g> {
    graph: &'g CsrGraph,
    config: MpgpConfig,
    num_machines: usize,
    assignment: Vec<Option<MachineId>>,
    sizes: Vec<usize>,
}

impl<'g> MpgpState<'g> {
    fn new(graph: &'g CsrGraph, num_machines: usize, config: MpgpConfig) -> Self {
        Self {
            graph,
            config,
            num_machines,
            assignment: vec![None; graph.num_nodes()],
            sizes: vec![0usize; num_machines],
        }
    }

    /// Dynamic balancing discount `τ(P_i)` (Eq. 15).
    fn tau(&self, machine: MachineId, assigned_total: usize) -> f64 {
        if assigned_total == 0 {
            return 1.0;
        }
        let avg = assigned_total as f64 / self.num_machines as f64;
        1.0 - self.sizes[machine] as f64 / (self.config.gamma * avg)
    }

    /// Assigns one node and returns its machine.
    fn place(&mut self, v: NodeId) -> MachineId {
        let graph = self.graph;
        let weighted = graph.is_weighted();
        let neighbors = graph.neighbors(v);
        let weights = graph.neighbor_weights(v);

        // First-order proximity per machine, plus the list of assigned
        // neighbours per machine for the second-order term.
        let mut first = vec![0.0f64; self.num_machines];
        let mut second = vec![0.0f64; self.num_machines];
        for (idx, &u) in neighbors.iter().enumerate() {
            if let Some(m) = self.assignment[u as usize] {
                let w = if weighted {
                    weights.map_or(1.0, |ws| ws[idx] as f64)
                } else {
                    1.0
                };
                first[m] += w;
                if self.config.use_second_order {
                    let cm = graph.common_neighbors(v, u) as f64;
                    second[m] += cm * w;
                }
            }
        }

        let assigned_total: usize = self.sizes.iter().sum();
        let mut best_m: MachineId = 0;
        let mut best_score = f64::NEG_INFINITY;
        for m in 0..self.num_machines {
            let score = (first[m] + second[m]) * self.tau(m, assigned_total);
            // Ties (including the all-zero cold start) go to the smallest
            // partition to keep the assignment balanced.
            let better =
                score > best_score || (score == best_score && self.sizes[m] < self.sizes[best_m]);
            if better {
                best_score = score;
                best_m = m;
            }
        }
        self.assignment[v as usize] = Some(best_m);
        self.sizes[best_m] += 1;
        best_m
    }

    fn run(&mut self, stream: &[NodeId]) {
        for &v in stream {
            self.place(v);
        }
    }
}

/// Sequential MPGP over the whole graph.
pub fn mpgp_partition(graph: &CsrGraph, num_machines: usize, config: MpgpConfig) -> Partitioning {
    assert!(num_machines > 0);
    let stream = stream_order(graph, config.order, config.seed);
    let mut state = MpgpState::new(graph, num_machines, config);
    state.run(&stream);
    Partitioning::new(
        state
            .assignment
            .into_iter()
            .map(|m| m.expect("every streamed node is assigned"))
            .collect(),
        num_machines,
    )
}

/// Parallel MPGP (MPGP-P): the stream is cut into `num_segments` contiguous
/// segments, each segment is partitioned independently with MPGP, and
/// partition `k` of every segment is merged into global partition `k`.
pub fn parallel_mpgp_partition(
    graph: &CsrGraph,
    num_machines: usize,
    num_segments: usize,
    config: MpgpConfig,
) -> Partitioning {
    assert!(num_machines > 0);
    assert!(num_segments > 0);
    let stream = stream_order(graph, config.order, config.seed);
    if num_segments == 1 || stream.len() < 2 * num_segments {
        let mut state = MpgpState::new(graph, num_machines, config);
        state.run(&stream);
        return Partitioning::new(
            state.assignment.into_iter().map(|m| m.unwrap()).collect(),
            num_machines,
        );
    }

    let chunk = stream.len().div_ceil(num_segments);
    let segments: Vec<&[NodeId]> = stream.chunks(chunk).collect();

    let mut merged: Vec<MachineId> = vec![0; graph.num_nodes()];
    let results: Vec<Vec<(NodeId, MachineId)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = segments
            .iter()
            .map(|segment| {
                scope.spawn(move || {
                    let mut state = MpgpState::new(graph, num_machines, config);
                    state.run(segment);
                    segment
                        .iter()
                        .map(|&v| (v, state.assignment[v as usize].unwrap()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partitioning threads must not panic"))
            .collect()
    });

    for segment_result in results {
        for (v, m) in segment_result {
            merged[v as usize] = m;
        }
    }
    Partitioning::new(merged, num_machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balanced::workload_balanced_partition;
    use crate::hash::hash_partition;
    use distger_graph::{barabasi_albert, planted_partition, CsrGraph, GraphBuilder};

    fn community_graph() -> CsrGraph {
        planted_partition(240, 4, 0.25, 0.005, 0.0, 11).graph
    }

    #[test]
    fn mpgp_assigns_every_node() {
        let g = barabasi_albert(300, 3, 5);
        let p = mpgp_partition(&g, 4, MpgpConfig::default());
        assert_eq!(p.num_nodes(), 300);
        assert_eq!(p.node_counts().iter().sum::<usize>(), 300);
        assert!(p.node_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn mpgp_local_fraction_beats_workload_balancing() {
        let g = community_graph();
        let mpgp = mpgp_partition(&g, 4, MpgpConfig::default());
        let balanced = workload_balanced_partition(&g, 4);
        let hash = hash_partition(&g, 4);
        assert!(
            mpgp.local_edge_fraction(&g) > balanced.local_edge_fraction(&g),
            "MPGP {} should beat workload balancing {}",
            mpgp.local_edge_fraction(&g),
            balanced.local_edge_fraction(&g)
        );
        assert!(mpgp.local_edge_fraction(&g) > hash.local_edge_fraction(&g));
    }

    #[test]
    fn mpgp_respects_gamma_balance() {
        let g = barabasi_albert(400, 3, 7);
        let strict = mpgp_partition(
            &g,
            4,
            MpgpConfig {
                gamma: 1.0,
                ..MpgpConfig::default()
            },
        );
        // γ = 1.0: τ goes negative as soon as a partition exceeds the average,
        // so the result must be tightly balanced.
        assert!(
            strict.balance_factor() <= 1.26,
            "got {}",
            strict.balance_factor()
        );

        let loose = mpgp_partition(
            &g,
            4,
            MpgpConfig {
                gamma: 10.0,
                ..MpgpConfig::default()
            },
        );
        assert!(
            loose.balance_factor() >= strict.balance_factor(),
            "looser gamma should not be more balanced"
        );
    }

    #[test]
    fn first_order_only_ablation_still_valid() {
        let g = community_graph();
        let p = mpgp_partition(
            &g,
            4,
            MpgpConfig {
                use_second_order: false,
                ..MpgpConfig::default()
            },
        );
        assert_eq!(p.node_counts().iter().sum::<usize>(), g.num_nodes());
        assert!(p.local_edge_fraction(&g) > 0.3);
    }

    #[test]
    fn parallel_mpgp_matches_sequential_quality_roughly() {
        let g = community_graph();
        let seq = mpgp_partition(&g, 4, MpgpConfig::default());
        let par = parallel_mpgp_partition(&g, 4, 4, MpgpConfig::parallel_default());
        assert_eq!(par.node_counts().iter().sum::<usize>(), g.num_nodes());
        // Parallel partitioning loses some quality but must stay in the same
        // ballpark (the paper reports comparable random-walk times).
        assert!(par.local_edge_fraction(&g) > 0.5 * seq.local_edge_fraction(&g));
    }

    #[test]
    fn parallel_mpgp_single_segment_equals_sequential() {
        let g = barabasi_albert(150, 2, 3);
        let cfg = MpgpConfig::default();
        let seq = mpgp_partition(&g, 3, cfg);
        let par = parallel_mpgp_partition(&g, 3, 1, cfg);
        assert_eq!(seq, par);
    }

    #[test]
    fn mpgp_on_weighted_graph() {
        let g = barabasi_albert(200, 3, 13).with_random_weights(1.0, 5.0, 3);
        let p = mpgp_partition(&g, 4, MpgpConfig::default());
        assert_eq!(p.num_nodes(), 200);
    }

    #[test]
    fn mpgp_single_machine_is_trivial() {
        let g = barabasi_albert(80, 2, 1);
        let p = mpgp_partition(&g, 1, MpgpConfig::default());
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn mpgp_on_tiny_graph() {
        let mut b = GraphBuilder::new_undirected();
        b.add_edge(0, 1);
        let g = b.build();
        let p = mpgp_partition(&g, 4, MpgpConfig::default());
        assert_eq!(p.num_nodes(), 2);
    }
}
