//! Node streaming orders for streaming partitioners.
//!
//! §3.2 of the paper observes that the order in which nodes arrive strongly
//! affects both partitioning time and quality, and compares random, BFS, DFS
//! and degree-aware hybrids (Figure 11). The recommended orders are
//! DFS+degree for sequential MPGP and BFS+degree for parallel MPGP.

use distger_graph::{generate::shuffled_nodes, CsrGraph, NodeId};
use std::collections::VecDeque;

/// The order in which nodes are streamed into a partitioner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamingOrder {
    /// Ascending node id (the order the file was loaded in).
    Natural,
    /// Uniformly random permutation.
    Random,
    /// Breadth-first traversal from the highest-degree node, visiting
    /// neighbours in adjacency order.
    Bfs,
    /// Depth-first traversal from the highest-degree node, visiting
    /// neighbours in adjacency order.
    Dfs,
    /// BFS, but the unexplored neighbours of a node are visited in descending
    /// degree order ("BFS+degree" in the paper).
    BfsDegree,
    /// DFS, but among unexplored neighbours the highest-degree one is explored
    /// first ("DFS+degree", recommended for sequential MPGP).
    DfsDegree,
}

impl StreamingOrder {
    /// All orders, in the order Figure 11 plots them.
    pub const ALL: [StreamingOrder; 6] = [
        StreamingOrder::Bfs,
        StreamingOrder::Dfs,
        StreamingOrder::BfsDegree,
        StreamingOrder::DfsDegree,
        StreamingOrder::Random,
        StreamingOrder::Natural,
    ];

    /// Human-readable name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            StreamingOrder::Natural => "Natural",
            StreamingOrder::Random => "Random",
            StreamingOrder::Bfs => "BFS",
            StreamingOrder::Dfs => "DFS",
            StreamingOrder::BfsDegree => "BFS+degree",
            StreamingOrder::DfsDegree => "DFS+degree",
        }
    }
}

/// Produces the full node sequence for `order`. Traversal-based orders cover
/// disconnected components by restarting from the highest-degree unvisited
/// node, so every node appears exactly once.
pub fn stream_order(graph: &CsrGraph, order: StreamingOrder, seed: u64) -> Vec<NodeId> {
    let n = graph.num_nodes();
    match order {
        StreamingOrder::Natural => (0..n as NodeId).collect(),
        StreamingOrder::Random => shuffled_nodes(n, seed),
        StreamingOrder::Bfs => traversal(graph, false, false),
        StreamingOrder::Dfs => traversal(graph, true, false),
        StreamingOrder::BfsDegree => traversal(graph, false, true),
        StreamingOrder::DfsDegree => traversal(graph, true, true),
    }
}

/// BFS/DFS traversal covering all components. `by_degree` makes the traversal
/// prefer high-degree neighbours first.
fn traversal(graph: &CsrGraph, depth_first: bool, by_degree: bool) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut visited = vec![false; n];
    let mut out = Vec::with_capacity(n);
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut scratch: Vec<NodeId> = Vec::new();

    // Roots: restart from the highest-degree unvisited node so that the big
    // component is streamed first, as the paper's implementation does.
    let roots = graph.nodes_by_degree_desc();

    for &root in &roots {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        if depth_first {
            stack.push(root);
        } else {
            queue.push_back(root);
        }
        loop {
            let u = if depth_first {
                match stack.pop() {
                    Some(u) => u,
                    None => break,
                }
            } else {
                match queue.pop_front() {
                    Some(u) => u,
                    None => break,
                }
            };
            out.push(u);
            scratch.clear();
            scratch.extend(
                graph
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&v| !visited[v as usize]),
            );
            if by_degree {
                // Highest degree first for BFS; for DFS we push lowest first so
                // the highest-degree neighbour is popped (explored) first.
                scratch.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
            }
            if depth_first {
                for &v in scratch.iter().rev() {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        stack.push(v);
                    }
                }
            } else {
                for &v in scratch.iter() {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_graph::{barabasi_albert, GraphBuilder};

    fn is_permutation(order: &[NodeId], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &u in order {
            if seen[u as usize] {
                return false;
            }
            seen[u as usize] = true;
        }
        order.len() == n
    }

    #[test]
    fn all_orders_are_permutations() {
        let g = barabasi_albert(200, 3, 7);
        for order in StreamingOrder::ALL {
            let seq = stream_order(&g, order, 42);
            assert!(
                is_permutation(&seq, 200),
                "{} not a permutation",
                order.name()
            );
        }
    }

    #[test]
    fn natural_order_is_ascending() {
        let g = barabasi_albert(50, 2, 1);
        assert_eq!(
            stream_order(&g, StreamingOrder::Natural, 0),
            (0..50u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn traversals_cover_disconnected_components() {
        // Two disjoint triangles.
        let mut b = GraphBuilder::new_undirected();
        b.extend_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let g = b.build();
        for order in [
            StreamingOrder::Bfs,
            StreamingOrder::Dfs,
            StreamingOrder::DfsDegree,
        ] {
            let seq = stream_order(&g, order, 0);
            assert!(is_permutation(&seq, 6));
        }
    }

    #[test]
    fn bfs_starts_from_highest_degree_node() {
        // Star centred at 0 → 0 has the highest degree and must stream first.
        let mut b = GraphBuilder::new_undirected();
        b.extend_edges([(0, 1), (0, 2), (0, 3), (0, 4)]);
        let g = b.build();
        let seq = stream_order(&g, StreamingOrder::Bfs, 0);
        assert_eq!(seq[0], 0);
    }

    #[test]
    fn degree_orders_prefer_heavy_neighbours() {
        // 0 connected to 1 (deg 1) and 2; 2 connected to 3 and 4 → deg(2)=3.
        let mut b = GraphBuilder::new_undirected();
        b.extend_edges([(0, 1), (0, 2), (2, 3), (2, 4)]);
        let g = b.build();
        let seq = stream_order(&g, StreamingOrder::BfsDegree, 0);
        // Highest degree node is 2 (degree 3): it is the root.
        assert_eq!(seq[0], 2);
        // Its neighbours in degree order: 0 (deg 2), then 3, 4 (deg 1).
        assert_eq!(seq[1], 0);
    }

    #[test]
    fn random_order_depends_on_seed() {
        let g = barabasi_albert(100, 2, 3);
        let a = stream_order(&g, StreamingOrder::Random, 1);
        let b = stream_order(&g, StreamingOrder::Random, 2);
        assert_ne!(a, b);
        assert_eq!(a, stream_order(&g, StreamingOrder::Random, 1));
    }
}
