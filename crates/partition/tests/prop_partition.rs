//! Property-based tests for the partitioners: every partitioner must produce
//! a total assignment with valid machine ids, and the metric helpers must be
//! internally consistent.

use distger_graph::{barabasi_albert, GraphBuilder, NodeId};
use distger_partition::fennel::{fennel_partition, FennelConfig};
use distger_partition::hash::hash_partition;
use distger_partition::ldg::ldg_default;
use distger_partition::{
    balanced::workload_balanced_partition, mpgp_partition, parallel_mpgp_partition, MpgpConfig,
    Partitioning, StreamingOrder,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = distger_graph::CsrGraph> {
    (prop::collection::vec((0u32..40, 0u32..40), 1..150)).prop_map(|edges| {
        let mut b = GraphBuilder::new_undirected();
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.reserve_nodes(40);
        b.build()
    })
}

fn check_total_assignment(p: &Partitioning, n: usize, m: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(p.num_nodes(), n);
    prop_assert_eq!(p.num_machines(), m);
    prop_assert_eq!(p.node_counts().iter().sum::<usize>(), n);
    prop_assert!(p.assignment().iter().all(|&x| x < m));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_partitioners_produce_total_assignments(
        g in arb_graph(),
        machines in 1usize..6,
        seed in 0u64..100,
    ) {
        let n = g.num_nodes();
        check_total_assignment(&hash_partition(&g, machines), n, machines)?;
        check_total_assignment(&workload_balanced_partition(&g, machines), n, machines)?;
        check_total_assignment(&ldg_default(&g, machines, seed), n, machines)?;
        check_total_assignment(
            &fennel_partition(&g, machines, FennelConfig::default(), seed),
            n,
            machines,
        )?;
        check_total_assignment(
            &mpgp_partition(&g, machines, MpgpConfig { seed, ..MpgpConfig::default() }),
            n,
            machines,
        )?;
        check_total_assignment(
            &parallel_mpgp_partition(&g, machines, 3, MpgpConfig { seed, ..MpgpConfig::parallel_default() }),
            n,
            machines,
        )?;
    }

    #[test]
    fn edge_cut_plus_local_edges_equals_total(g in arb_graph(), machines in 1usize..5) {
        let p = mpgp_partition(&g, machines, MpgpConfig::default());
        let cut = p.edge_cut(&g);
        let local = (p.local_edge_fraction(&g) * g.num_edges() as f64).round() as usize;
        prop_assert_eq!(cut + local, g.num_edges());
        prop_assert!(p.local_edge_fraction(&g) >= 0.0 && p.local_edge_fraction(&g) <= 1.0);
    }

    #[test]
    fn single_machine_never_cuts(g in arb_graph()) {
        for p in [
            hash_partition(&g, 1),
            workload_balanced_partition(&g, 1),
            mpgp_partition(&g, 1, MpgpConfig::default()),
        ] {
            prop_assert_eq!(p.edge_cut(&g), 0);
            prop_assert_eq!(p.balance_factor(), 1.0);
        }
    }

    #[test]
    fn mpgp_deterministic_given_seed(seed in 0u64..50) {
        let g = barabasi_albert(120, 2, 9);
        let cfg = MpgpConfig { seed, order: StreamingOrder::Random, ..MpgpConfig::default() };
        let p1 = mpgp_partition(&g, 4, cfg);
        let p2 = mpgp_partition(&g, 4, cfg);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn streaming_orders_are_permutations_for_all_graphs(g in arb_graph(), seed in 0u64..20) {
        for order in StreamingOrder::ALL {
            let seq = distger_partition::order::stream_order(&g, order, seed);
            let mut seen = vec![false; g.num_nodes()];
            for &u in &seq {
                prop_assert!(!seen[u as usize], "{} visited twice under {:?}", u, order);
                seen[u as usize] = true;
            }
            prop_assert_eq!(seq.len(), g.num_nodes());
        }
    }
}

#[test]
fn mpgp_gamma_one_is_most_balanced_on_average() {
    // Deterministic ablation mirroring Figure 13: strict γ keeps partitions
    // close to equal.
    let g = barabasi_albert(600, 3, 21);
    let strict = mpgp_partition(
        &g,
        8,
        MpgpConfig {
            gamma: 1.0,
            ..MpgpConfig::default()
        },
    );
    let loose = mpgp_partition(
        &g,
        8,
        MpgpConfig {
            gamma: 8.0,
            ..MpgpConfig::default()
        },
    );
    assert!(strict.balance_factor() <= loose.balance_factor() + 0.05);
}

#[test]
fn degree_based_nodes_sorted_desc() {
    let g = barabasi_albert(100, 2, 5);
    let order: Vec<NodeId> = g.nodes_by_degree_desc();
    for w in order.windows(2) {
        assert!(g.degree(w[0]) >= g.degree(w[1]));
    }
}
