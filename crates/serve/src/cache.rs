//! Hot-query cache for the request scheduler.
//!
//! A bounded map from a query's *identity bits* to its [`TopK`] answer.
//! The key is the exact [`f32::to_bits`] image of the **unit-normalized**
//! query vector — normalization is the quantization step: every query is
//! projected onto the unit sphere before the engine scores it (see
//! `index::normalize_into`), so two queries that normalize to the same bit
//! pattern are *provably* answered identically by the engine, and the cache
//! can hand back a stored `TopK` without ever violating the scheduler's
//! bit-identical-to-`top_k` contract. Colinear queries that differ by an
//! exact power-of-two scale normalize to identical bits and still hit.
//!
//! `k` is fixed per engine (it lives in `ServeConfig`), so it does not need
//! to be part of the key; the scheduler owns one cache per engine.
//!
//! Eviction is least-recently-used via a monotone touch tick: `get` and
//! `insert` stamp the entry, and a full insert evicts the minimum-tick entry
//! with an O(capacity) scan. Capacities are small (hot set, not a store), so
//! the scan beats maintaining an intrusive list, and the map stays a plain
//! `HashMap` like the rest of the workspace's small-bounded structures.

use std::collections::HashMap;

use crate::topk::TopK;

/// Exact bit image of a normalized query — the cache key.
pub(crate) type QueryKey = Vec<u32>;

#[derive(Clone, Debug)]
struct Entry {
    answer: TopK,
    last_used: u64,
}

/// Bounded LRU map from normalized-query bits to `TopK` answers.
/// `capacity == 0` disables the cache (every lookup misses, inserts are
/// dropped), which is the scheduler's default.
#[derive(Debug, Default)]
pub(crate) struct QueryCache {
    entries: HashMap<QueryKey, Entry>,
    capacity: usize,
    tick: u64,
}

impl QueryCache {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::with_capacity(capacity),
            capacity,
            tick: 0,
        }
    }

    /// Bit image of a normalized query vector.
    pub(crate) fn key_of(unit_query: &[f32]) -> QueryKey {
        unit_query.iter().map(|value| value.to_bits()).collect()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Looks up an answer and marks it most-recently-used.
    pub(crate) fn get(&mut self, key: &[u32]) -> Option<TopK> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.answer.clone())
    }

    /// Stores an answer, evicting the least-recently-used entry when full.
    pub(crate) fn insert(&mut self, key: QueryKey, answer: TopK) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.answer = answer;
            entry.last_used = tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            // O(capacity) LRU scan; see the module docs for why this beats
            // an intrusive list at hot-set sizes.
            let evict = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone());
            if let Some(evict) = evict {
                self.entries.remove(&evict);
            }
        }
        self.entries.insert(
            key,
            Entry {
                answer,
                last_used: tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::{BoundedTopK, Neighbor};

    fn answer(node: u32) -> TopK {
        let mut heap = BoundedTopK::new(1);
        heap.push(Neighbor {
            node,
            score: 1.0 - node as f32 * 0.01,
        });
        heap.into_topk()
    }

    fn key(tag: u32) -> QueryKey {
        vec![tag, tag.wrapping_mul(31)]
    }

    #[test]
    fn get_returns_what_was_inserted() {
        let mut cache = QueryCache::new(4);
        cache.insert(key(1), answer(1));
        assert_eq!(cache.get(&key(1)), Some(answer(1)));
        assert_eq!(cache.get(&key(2)), None);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = QueryCache::new(0);
        cache.insert(key(1), answer(1));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(&key(1)), None);
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let mut cache = QueryCache::new(2);
        cache.insert(key(1), answer(1));
        cache.insert(key(2), answer(2));
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), answer(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some(), "recently used survives");
        assert_eq!(cache.get(&key(2)), None, "LRU entry evicted");
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut cache = QueryCache::new(2);
        cache.insert(key(1), answer(1));
        cache.insert(key(2), answer(2));
        cache.insert(key(1), answer(9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1)), Some(answer(9)));
        assert!(cache.get(&key(2)).is_some(), "update evicted nothing");
    }

    #[test]
    fn key_of_is_exact_bits() {
        let a = QueryCache::key_of(&[0.5, -0.25]);
        let b = QueryCache::key_of(&[0.5, -0.25]);
        let c = QueryCache::key_of(&[0.5, -0.25 + f32::EPSILON]);
        assert_eq!(a, b);
        assert_ne!(a, c, "any bit difference is a different key");
    }
}
