//! Injectable time for the request scheduler.
//!
//! The dynamic-batching dispatcher ([`Scheduler`](crate::Scheduler)) makes
//! exactly one kind of timing decision: *park until either a new request
//! arrives or the oldest queued request's flush deadline passes*. Testing
//! that decision against the wall clock means sleeping and hoping — so the
//! scheduler takes its time through the [`Clock`] trait instead:
//! [`SystemClock`] (the default) reads monotonic wall time, and
//! [`VirtualClock`] is a test double whose time only moves when the test
//! calls [`advance`](VirtualClock::advance), which makes deadline behavior
//! ("flushes exactly at the deadline, never before") a deterministic
//! assertion instead of a race.
//!
//! # The park/wake protocol
//!
//! [`Clock::wait_until`] is shaped to make lost wakeups impossible without
//! the clock knowing anything about the caller's state:
//!
//! 1. the caller decides to park **while holding its own state lock** (so
//!    the decision is based on a consistent queue snapshot);
//! 2. `wait_until` first acquires the clock's internal lock, *then* releases
//!    the caller's guard — so between the caller's decision and the park
//!    there is never a window in which a waker can run to completion
//!    unobserved;
//! 3. producers call [`Clock::wake`] (after releasing the caller's state
//!    lock), which bumps a generation counter under the clock lock and
//!    notifies — if the parker has not reached its condition wait yet, the
//!    waker blocks on the clock lock until it has.
//!
//! `wait_until` may return spuriously; the caller re-acquires its lock and
//! re-evaluates, exactly like a condition-variable loop. The lock order is
//! `caller state → clock`, everywhere, so the protocol cannot deadlock.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The deadline meaning "no deadline — park until woken". Passing it to
/// [`Clock::wait_until`] parks indefinitely (the dispatcher's idle state).
pub const IDLE: Duration = Duration::MAX;

/// A source of monotonic time plus the park/wake primitive the scheduler's
/// dispatcher blocks on. See the [module docs](self) for the protocol.
pub trait Clock: Send + Sync + 'static {
    /// Monotonic time elapsed since the clock's epoch (its creation for
    /// [`SystemClock`], zero for [`VirtualClock`]).
    fn now(&self) -> Duration;

    /// Atomically releases `guard` and blocks until `deadline` may have
    /// passed or [`wake`](Clock::wake) was called — whichever is first. May
    /// also return spuriously; callers must re-acquire their lock and
    /// re-evaluate.
    fn wait_until<T>(&self, guard: MutexGuard<'_, T>, deadline: Duration);

    /// Wakes every thread blocked in [`wait_until`](Clock::wait_until).
    /// Called by producers after enqueueing work (and after releasing the
    /// state lock the parker's guard came from).
    fn wake(&self);
}

/// The production clock: monotonic wall time via [`Instant`], parking via a
/// plain timed condition wait.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
    /// Wake generation counter; bumped by [`wake`](Clock::wake).
    wakes: Mutex<u64>,
    cvar: Condvar,
}

impl Default for SystemClock {
    fn default() -> Self {
        Self {
            epoch: Instant::now(),
            wakes: Mutex::new(0),
            cvar: Condvar::new(),
        }
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn wait_until<T>(&self, guard: MutexGuard<'_, T>, deadline: Duration) {
        // Clock lock before guard release: see the module docs, step 2. Lock
        // poisoning is recovered — the protected state is a plain counter,
        // valid in any state, and panicking here would hang the dispatcher.
        let mut wakes = self.wakes.lock().unwrap_or_else(PoisonError::into_inner);
        drop(guard);
        let baseline = *wakes;
        loop {
            let now = self.now();
            if now >= deadline || *wakes != baseline {
                return;
            }
            let (next, timeout) = self
                .cvar
                .wait_timeout(wakes, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            wakes = next;
            if timeout.timed_out() {
                return;
            }
        }
    }

    fn wake(&self) {
        let mut wakes = self.wakes.lock().unwrap_or_else(PoisonError::into_inner);
        *wakes = wakes.wrapping_add(1);
        self.cvar.notify_all();
    }
}

#[derive(Debug, Default)]
struct VirtualState {
    now: Duration,
    wakes: u64,
    /// The deadline a `wait_until` caller is currently parked on
    /// ([`IDLE`] for the no-deadline park), `None` while nobody is parked —
    /// the observation hook deterministic tests synchronize on.
    parked: Option<Duration>,
}

/// A test clock: time is a counter that only [`advance`](VirtualClock::advance)
/// moves. Cloning shares the same underlying time, so a test holds one clone
/// while the scheduler under test holds another.
///
/// Two extra observation hooks make deadline tests deterministic without a
/// single sleep: [`parked_deadline`] reads which deadline the dispatcher is
/// currently parked on, and [`wait_for_park_until`] blocks the *test* thread
/// until the dispatcher has parked on a deadline at or below a bound.
///
/// [`parked_deadline`]: VirtualClock::parked_deadline
/// [`wait_for_park_until`]: VirtualClock::wait_for_park_until
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    inner: Arc<VirtualInner>,
}

#[derive(Debug, Default)]
struct VirtualInner {
    state: Mutex<VirtualState>,
    cvar: Condvar,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, VirtualState> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Moves time forward by `delta` and wakes every parked waiter so it
    /// re-evaluates its deadline.
    pub fn advance(&self, delta: Duration) {
        let mut state = self.lock();
        state.now = state.now.saturating_add(delta);
        self.inner.cvar.notify_all();
    }

    /// The deadline a [`wait_until`](Clock::wait_until) caller is currently
    /// parked on ([`IDLE`] for the no-deadline park), or `None` while nobody
    /// is parked. While this returns `Some(d)` with the current time below
    /// `d`, the parked thread *cannot* have proceeded past its wait — which
    /// is what lets a test assert "not flushed yet" without waiting wall
    /// time.
    pub fn parked_deadline(&self) -> Option<Duration> {
        self.lock().parked
    }

    /// Blocks until a [`wait_until`](Clock::wait_until) caller is parked on
    /// a deadline `<= limit`, and returns that deadline. The deterministic
    /// way for a test to know the dispatcher has armed a flush deadline
    /// (the idle park's [`IDLE`] deadline exceeds any real limit, so this
    /// skips it).
    pub fn wait_for_park_until(&self, limit: Duration) -> Duration {
        let mut state = self.lock();
        loop {
            if let Some(deadline) = state.parked {
                if deadline <= limit {
                    return deadline;
                }
            }
            state = self
                .inner
                .cvar
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        self.lock().now
    }

    fn wait_until<T>(&self, guard: MutexGuard<'_, T>, deadline: Duration) {
        let mut state = self.lock();
        drop(guard); // caller lock released only after the clock lock is held
        let baseline = state.wakes;
        while state.now < deadline && state.wakes == baseline {
            state.parked = Some(deadline);
            // Park observers (wait_for_park_until) see the transition.
            self.inner.cvar.notify_all();
            state = self
                .inner
                .cvar
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.parked = None;
    }

    fn wake(&self) {
        let mut state = self.lock();
        state.wakes = state.wakes.wrapping_add(1);
        self.inner.cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::default();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn system_clock_wait_returns_at_deadline() {
        let clock = SystemClock::default();
        let state = Mutex::new(());
        let before = clock.now();
        clock.wait_until(state.lock().unwrap(), before + Duration::from_millis(5));
        assert!(clock.now() >= before + Duration::from_millis(5));
    }

    #[test]
    fn system_clock_wake_interrupts_an_idle_park() {
        let clock = SystemClock::default();
        let state = Mutex::new(());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Parked with no deadline; only the wake below can end this.
                clock.wait_until(state.lock().unwrap(), IDLE);
            });
            // Not sleep-based: wake() blocks on the clock lock until the
            // parker holds it, so repeated wakes eventually land after the
            // park — and the scope join proves the park ended.
            loop {
                clock.wake();
                if state.try_lock().is_ok() {
                    break;
                }
            }
        });
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(7));
        assert_eq!(clock.now(), Duration::from_millis(7));
        let clone = clock.clone();
        clone.advance(Duration::from_millis(1));
        assert_eq!(clock.now(), Duration::from_millis(8), "clones share time");
    }

    #[test]
    fn virtual_clock_park_is_observable_and_deadline_gated() {
        let clock = VirtualClock::new();
        let state = Mutex::new(());
        let deadline = Duration::from_millis(2);
        std::thread::scope(|scope| {
            let parker = clock.clone();
            scope.spawn(move || {
                parker.wait_until(state.lock().unwrap(), deadline);
                // Having returned, time must have reached the deadline: the
                // test below never calls wake, so the deadline is the only
                // way out.
                assert!(parker.now() >= deadline);
            });
            assert_eq!(clock.wait_for_park_until(deadline), deadline);
            clock.advance(Duration::from_millis(2) - Duration::from_nanos(1));
            // Still short of the deadline: the parker is provably still
            // parked on it.
            assert_eq!(clock.parked_deadline(), Some(deadline));
            clock.advance(Duration::from_nanos(1));
        });
        assert_eq!(clock.parked_deadline(), None, "park cleared on exit");
    }

    #[test]
    fn virtual_clock_wake_interrupts_before_the_deadline() {
        let clock = VirtualClock::new();
        let state = Mutex::new(());
        std::thread::scope(|scope| {
            let parker = clock.clone();
            scope.spawn(move || {
                parker.wait_until(state.lock().unwrap(), IDLE);
            });
            clock.wait_for_park_until(IDLE);
            clock.wake();
        });
        assert_eq!(clock.now(), Duration::ZERO, "woke without time moving");
    }
}
