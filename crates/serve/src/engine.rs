//! The batched top-k query engine.
//!
//! [`QueryEngine`] answers batches of cosine top-k queries over an
//! [`EmbeddingIndex`] with one of two [`QueryBackend`]s — mirroring the
//! `FreqBackend` / `SamplingBackend` / `ExecutionBackend` pattern of the
//! sampler crates: the approximate LSH path is the optimized default, the
//! exact brute-force scan is the ground-truth reference (and what `recall@k`
//! is measured against).
//!
//! A batch is fanned out across threads with the same
//! [`run_rounds`] worker pool the walk engine
//! and trainer run on: workers take queries in stride, and a single
//! barrier-delimited round replaces per-query thread churn. Per-stage
//! timings (candidate generation vs exact re-rank) are accumulated across
//! workers so a serving deployment can see where batch time goes.

use crate::exact::scan_top_k;
use crate::index::{normalize_into, EmbeddingIndex};
use crate::lsh::{LshConfig, LshIndex, ProbeScratch};
use crate::topk::{BoundedTopK, Neighbor, TopK};
use distger_cluster::run_rounds;
use distger_graph::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Which algorithm answers top-k queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueryBackend {
    /// Chunked brute-force cosine scan over every node: recall 1.0 by
    /// construction, `O(n·d)` per query (the reference).
    Exact,
    /// Random-hyperplane signatures with multi-probe buckets and an exact
    /// re-rank of the candidates: sublinear candidate sets at recall < 1
    /// (the optimized default).
    #[default]
    Lsh,
}

impl QueryBackend {
    /// Display name used by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self {
            QueryBackend::Exact => "exact",
            QueryBackend::Lsh => "lsh",
        }
    }
}

/// Configuration of a [`QueryEngine`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Which backend answers queries.
    pub backend: QueryBackend,
    /// Results per query.
    pub k: usize,
    /// Worker threads a batch is fanned out across.
    pub threads: usize,
    /// LSH parameters (ignored by [`QueryBackend::Exact`]).
    pub lsh: LshConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            backend: QueryBackend::default(),
            k: 10,
            threads: 4,
            lsh: LshConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Builder-style backend override.
    pub fn with_backend(mut self, backend: QueryBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style k override.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }
}

/// A batch of query vectors, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryBatch {
    dim: usize,
    data: Vec<f32>,
}

impl QueryBatch {
    /// An empty batch of `dim`-dimensional queries.
    ///
    /// # Panics
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "need a positive query dimension");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Appends one query vector.
    ///
    /// # Panics
    /// Panics if `query.len() != dim`.
    pub fn push(&mut self, query: &[f32]) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        self.data.extend_from_slice(query);
    }

    /// A batch querying the (already indexed) embeddings of `nodes` — the
    /// "more like this node" shape of similarity serving.
    pub fn from_nodes(index: &EmbeddingIndex, nodes: &[NodeId]) -> Self {
        let mut batch = Self::new(index.dim());
        for &node in nodes {
            batch.push(index.unit_vector(node));
        }
        batch
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the batch holds no query.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Query dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th query vector.
    pub fn query(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// Per-stage accounting of one batch.
///
/// The stage times are **CPU-seconds summed across workers** (stages
/// interleave per query inside each worker, so per-stage wall time is not
/// separable); `wall_secs` is the end-to-end batch wall time the QPS numbers
/// divide by.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryStats {
    /// Candidate generation: the full scan (exact) or signature computation
    /// plus bucket probing (LSH).
    pub candidate_secs: f64,
    /// Exact scoring of the candidates (LSH only; 0 for exact, whose scan
    /// *is* the scoring).
    pub rerank_secs: f64,
    /// End-to-end batch wall time.
    pub wall_secs: f64,
    /// Candidates scored across the batch (exact: `queries × num_nodes`).
    pub candidates_scored: u64,
}

impl QueryStats {
    /// Queries per second of a batch of `queries`. An empty batch is 0.0.
    ///
    /// # Panics
    /// Panics if `queries > 0` but `wall_secs` is not positive: a
    /// zero-duration run has no meaningful throughput, and returning 0.0
    /// here (the old behavior) silently passed the bench regression gate on
    /// degenerate configs — a misconfigured bench must fail loudly instead.
    pub fn qps(&self, queries: usize) -> f64 {
        if queries == 0 {
            return 0.0;
        }
        assert!(
            self.wall_secs > 0.0,
            "qps of {queries} queries over a non-positive wall time ({}s): \
             degenerate measurement, refusing to report 0.0",
            self.wall_secs
        );
        queries as f64 / self.wall_secs
    }
}

/// Results of one batch: `results[i]` answers `batch.query(i)`.
#[derive(Clone, Debug)]
pub struct BatchResults {
    /// Per-query top-k, in batch order.
    pub results: Vec<TopK>,
    /// Per-stage accounting.
    pub stats: QueryStats,
}

/// Anything the request [`Scheduler`](crate::schedule::Scheduler) can put
/// its dynamic batches in front of: the single-process [`QueryEngine`] (one
/// pool-chunked scan) or the
/// [`ShardedQueryEngine`](crate::shard::ShardedQueryEngine) (batches fan out
/// per shard over the transport). Implementations must uphold the
/// scheduler's transparency contract — `serve` answers every query of the
/// batch deterministically, in batch order — and may panic to signal a
/// fail-stop fault (the scheduler catches it and surfaces the payload).
pub trait ServeEngine: Send + Sync + 'static {
    /// Query dimension the engine accepts.
    fn dim(&self) -> usize;

    /// Answers every query of `batch`.
    fn serve(&self, batch: &QueryBatch) -> BatchResults;
}

impl ServeEngine for QueryEngine {
    fn dim(&self) -> usize {
        self.index.dim()
    }

    fn serve(&self, batch: &QueryBatch) -> BatchResults {
        self.top_k(batch)
    }
}

/// Per-worker reusable state leased from the engine's scratch pool for the
/// duration of one batch: LSH probe scratch, candidate buffer, and the
/// query-normalization buffer.
#[derive(Debug)]
struct WorkerScratch {
    probe: Option<ProbeScratch>,
    candidates: Vec<NodeId>,
    query_unit: Vec<f32>,
}

/// A ready-to-serve query engine: the read-optimized index plus (for the LSH
/// backend) the built signature tables.
#[derive(Debug)]
pub struct QueryEngine {
    index: EmbeddingIndex,
    config: ServeConfig,
    lsh: Option<LshIndex>,
    /// Recycled per-worker scratch (LSH seen-stamps are `O(num_nodes)`, so
    /// rebuilding them every batch would cost more than the sublinear
    /// candidate gathering they exist to speed up). Leased at batch start,
    /// returned at batch end; uncontended in steady state.
    scratch_pool: Mutex<Vec<WorkerScratch>>,
}

impl Clone for QueryEngine {
    fn clone(&self) -> Self {
        Self {
            index: self.index.clone(),
            config: self.config,
            lsh: self.lsh.clone(),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }
}

impl QueryEngine {
    /// Builds the engine; the LSH tables are constructed here (once) so
    /// serving itself is read-only.
    ///
    /// # Panics
    /// Panics if `config.k` or `config.threads` is zero.
    pub fn new(index: EmbeddingIndex, config: ServeConfig) -> Self {
        assert!(config.k > 0, "top-k needs k >= 1");
        assert!(config.threads > 0, "need at least one query thread");
        let lsh = match config.backend {
            QueryBackend::Exact => None,
            QueryBackend::Lsh => Some(LshIndex::build(&index, &config.lsh)),
        };
        Self {
            index,
            config,
            lsh,
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &EmbeddingIndex {
        &self.index
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Resident memory of the engine in bytes (index plus LSH tables).
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.lsh.as_ref().map_or(0, LshIndex::memory_bytes)
    }

    /// Answers one query (convenience wrapper over a one-element batch).
    pub fn top_k_one(&self, query: &[f32]) -> TopK {
        let mut batch = QueryBatch::new(self.index.dim());
        batch.push(query);
        self.top_k(&batch).results.remove(0)
    }

    /// Answers every query of `batch`, fanned out across
    /// `config.threads` pool workers.
    ///
    /// # Panics
    /// Panics if `batch.dim()` differs from the index dimension.
    pub fn top_k(&self, batch: &QueryBatch) -> BatchResults {
        assert_eq!(
            batch.dim(),
            self.index.dim(),
            "query dimension does not match the index"
        );
        let queries = batch.len();
        if queries == 0 {
            return BatchResults {
                results: Vec::new(),
                stats: QueryStats::default(),
            };
        }
        let workers = self.config.threads.min(queries);
        let slots: Vec<Mutex<Vec<(usize, TopK)>>> =
            (0..workers).map(|_| Mutex::new(Vec::new())).collect();
        let candidate_nanos = AtomicU64::new(0);
        let rerank_nanos = AtomicU64::new(0);
        let scored = AtomicU64::new(0);

        let wall = Instant::now();
        run_rounds(
            workers,
            |round| round == 0,
            |worker, _| {
                let mut out = Vec::new();
                // Lease recycled scratch (or build fresh on a cold pool); the
                // backend is fixed at construction, so pooled entries always
                // match the engine's needs. Scratch entries are plain
                // reusable buffers — valid in any state — so a lock poisoned
                // by an earlier batch's panic is recovered rather than
                // unwrapped: a long-lived engine keeps serving after a
                // caller catches a panicked batch, and a panic unwinding
                // through here is never masked by a second one.
                let mut scratch = self
                    .scratch_pool
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop()
                    .unwrap_or_else(|| WorkerScratch {
                        probe: self
                            .lsh
                            .as_ref()
                            .map(|lsh| ProbeScratch::for_index(lsh, &self.index)),
                        candidates: Vec::new(),
                        query_unit: vec![0.0; self.index.dim()],
                    });
                for qi in (worker..queries).step_by(workers) {
                    normalize_into(batch.query(qi), &mut scratch.query_unit);
                    let top = match &self.lsh {
                        None => {
                            let started = Instant::now();
                            let top = scan_top_k(&self.index, &scratch.query_unit, self.config.k);
                            candidate_nanos
                                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            scored.fetch_add(self.index.num_nodes() as u64, Ordering::Relaxed);
                            top
                        }
                        Some(lsh) => {
                            let probe = scratch.probe.as_mut().expect("LSH scratch exists");
                            let started = Instant::now();
                            lsh.candidates(&scratch.query_unit, probe, &mut scratch.candidates);
                            candidate_nanos
                                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            let started = Instant::now();
                            let mut heap = BoundedTopK::new(self.config.k);
                            for &node in scratch.candidates.iter() {
                                heap.push(Neighbor {
                                    node,
                                    score: self.index.cosine(&scratch.query_unit, node),
                                });
                            }
                            rerank_nanos
                                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            scored.fetch_add(scratch.candidates.len() as u64, Ordering::Relaxed);
                            heap.into_topk()
                        }
                    };
                    out.push((qi, top));
                }
                // Poison-recovering for the same reason as the lease above.
                self.scratch_pool
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(scratch);
                // Safety of the unwrap: slot `worker` is only ever locked by
                // this worker during the round, so the mutex can be poisoned
                // only by this very thread — which cannot reach this line
                // after panicking.
                *slots[worker].lock().unwrap() = out;
            },
        );
        let wall_secs = wall.elapsed().as_secs_f64();

        let mut results: Vec<Option<TopK>> = vec![None; queries];
        for slot in &slots {
            // Safety of the unwrap: `run_rounds` has returned, so every
            // worker either finished cleanly or its panic already propagated
            // out of this function — a poisoned slot cannot reach this loop.
            for (qi, top) in slot.lock().unwrap().drain(..) {
                results[qi] = Some(top);
            }
        }
        BatchResults {
            results: results
                .into_iter()
                .map(|r| r.expect("every query answered"))
                .collect(),
            stats: QueryStats {
                candidate_secs: candidate_nanos.load(Ordering::Relaxed) as f64 / 1e9,
                rerank_secs: rerank_nanos.load(Ordering::Relaxed) as f64 / 1e9,
                wall_secs,
                candidates_scored: scored.load(Ordering::Relaxed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::gaussian_clusters;

    fn engine(backend: QueryBackend, threads: usize) -> QueryEngine {
        let index = EmbeddingIndex::build(&gaussian_clusters(300, 16, 6, 0.05, 11));
        QueryEngine::new(
            index,
            ServeConfig {
                backend,
                k: 5,
                threads,
                ..ServeConfig::default()
            },
        )
    }

    #[test]
    fn exact_self_query_returns_the_node_first() {
        let engine = engine(QueryBackend::Exact, 2);
        let batch = QueryBatch::from_nodes(engine.index(), &[0, 17, 123]);
        let out = engine.top_k(&batch);
        assert_eq!(out.results.len(), 3);
        for (query_node, top) in [0u32, 17, 123].into_iter().zip(&out.results) {
            assert_eq!(top.neighbors()[0].node, query_node);
            assert!((top.neighbors()[0].score - 1.0).abs() < 1e-5);
            assert_eq!(top.len(), 5);
        }
        assert_eq!(out.stats.candidates_scored, 3 * 300);
        assert!(out.stats.wall_secs > 0.0);
        assert_eq!(out.stats.rerank_secs, 0.0);
    }

    #[test]
    fn lsh_self_query_returns_the_node_first() {
        let engine = engine(QueryBackend::Lsh, 2);
        let batch = QueryBatch::from_nodes(engine.index(), &[5, 42]);
        let out = engine.top_k(&batch);
        for (query_node, top) in [5u32, 42].into_iter().zip(&out.results) {
            assert_eq!(top.neighbors()[0].node, query_node);
        }
        // LSH scores fewer candidates than the exact scan would.
        assert!(out.stats.candidates_scored < 2 * 300);
        assert!(out.stats.candidate_secs >= 0.0 && out.stats.rerank_secs >= 0.0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let batch_nodes: Vec<u32> = (0..40).collect();
        let single = engine(QueryBackend::Lsh, 1);
        let batch = QueryBatch::from_nodes(single.index(), &batch_nodes);
        let a = single.top_k(&batch);
        let b = engine(QueryBackend::Lsh, 4).top_k(&batch);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = engine(QueryBackend::Exact, 3);
        let out = engine.top_k(&QueryBatch::new(16));
        assert!(out.results.is_empty());
        assert_eq!(out.stats.candidates_scored, 0);
    }

    #[test]
    fn identical_vectors_tie_break_by_node_id_on_both_backends() {
        // Every node has the same embedding: all cosines are exactly equal,
        // so top-k must be the k smallest node ids, in order, on both
        // backends.
        let embeddings = distger_embed::Embeddings::from_node_major(vec![1.0f32; 50 * 4], 4);
        for backend in [QueryBackend::Exact, QueryBackend::Lsh] {
            let engine = QueryEngine::new(
                EmbeddingIndex::build(&embeddings),
                ServeConfig {
                    backend,
                    k: 4,
                    threads: 2,
                    ..ServeConfig::default()
                },
            );
            let top = engine.top_k_one(&[1.0, 1.0, 1.0, 1.0]);
            assert_eq!(
                top.nodes().collect::<Vec<_>>(),
                vec![0, 1, 2, 3],
                "{} backend broke ties non-deterministically",
                backend.name()
            );
        }
    }

    #[test]
    fn poisoned_scratch_pool_recovers_and_keeps_serving() {
        // A serving deployment keeps one engine alive across many batches;
        // if a caller catches a batch that panicked while the scratch-pool
        // mutex was held, the next batch must recover the poisoned lock and
        // serve identical results — not die on a PoisonError forever after.
        let engine = engine(QueryBackend::Lsh, 2);
        let batch = QueryBatch::from_nodes(engine.index(), &[1, 42, 200]);
        let baseline = engine.top_k(&batch);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.scratch_pool.lock().unwrap();
            panic!("batch exploded mid-lease");
        }));
        assert!(panicked.is_err());
        assert!(engine.scratch_pool.is_poisoned(), "precondition: poisoned");
        let after = engine.top_k(&batch);
        assert_eq!(baseline.results, after.results);
    }

    #[test]
    fn qps_is_consistent_with_wall_time() {
        let stats = QueryStats {
            wall_secs: 0.5,
            ..QueryStats::default()
        };
        assert_eq!(stats.qps(100), 200.0);
        assert_eq!(QueryStats::default().qps(0), 0.0, "empty batch is fine");
    }

    #[test]
    #[should_panic(expected = "non-positive wall time")]
    fn qps_rejects_zero_duration_runs() {
        // Regression: this used to return 0.0, which the bench gate's
        // missing-row check never saw — a degenerate config sailed through.
        QueryStats::default().qps(100);
    }

    #[test]
    #[should_panic(expected = "dimension does not match")]
    fn dimension_mismatch_rejected() {
        let engine = engine(QueryBackend::Exact, 1);
        engine.top_k(&QueryBatch::new(3));
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn batch_rejects_wrong_width_rows() {
        let mut batch = QueryBatch::new(4);
        batch.push(&[0.0; 3]);
    }
}
