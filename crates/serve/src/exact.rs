//! Exact top-k: a chunked brute-force cosine scan.
//!
//! The scan visits every node, so its value is being *predictably* fast: the
//! node-major unit-vector matrix is walked in blocks of `SCAN_CHUNK` rows,
//! scores for a block are computed into a flat buffer first (a tight
//! dot-product loop the compiler auto-vectorizes, untangled from the heap's
//! branches), and only then offered to the bounded heap — which rejects
//! almost all of them with a single comparison once the heap is warm.
//!
//! This backend is the ground truth the LSH backend's `recall@k` is measured
//! against; its recall is 1.0 by construction.

use crate::index::{dot, EmbeddingIndex};
use crate::topk::{BoundedTopK, Neighbor, TopK};
use distger_graph::NodeId;

/// Rows scored per block before the heap sees them.
const SCAN_CHUNK: usize = 256;

/// Scans the whole index for the `k` nodes most cosine-similar to the
/// unit-normalized query.
pub(crate) fn scan_top_k(index: &EmbeddingIndex, query_unit: &[f32], k: usize) -> TopK {
    let dim = index.dim();
    let mut heap = BoundedTopK::new(k);
    let mut scores = [0.0f32; SCAN_CHUNK];
    let mut base: usize = 0;
    for block in index.unit_vectors().chunks(SCAN_CHUNK * dim) {
        let rows = block.len() / dim;
        for (r, score) in scores[..rows].iter_mut().enumerate() {
            *score = dot(&block[r * dim..(r + 1) * dim], query_unit);
        }
        for (r, &score) in scores[..rows].iter().enumerate() {
            heap.push(Neighbor {
                node: (base + r) as NodeId,
                score,
            });
        }
        base += rows;
    }
    heap.into_topk()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::normalized;
    use distger_embed::Embeddings;

    fn axis_embeddings(n: usize, dim: usize) -> Embeddings {
        // Node i points along axis i % dim with magnitude growing in i.
        let mut data = vec![0.0f32; n * dim];
        for i in 0..n {
            data[i * dim + i % dim] = 1.0 + i as f32;
        }
        Embeddings::from_node_major(data, dim)
    }

    #[test]
    fn finds_the_aligned_axis_nodes_first() {
        let e = axis_embeddings(600, 4); // > 2 chunks
        let index = EmbeddingIndex::build(&e);
        let mut q = vec![0.0f32; 4];
        q[2] = 1.0;
        let top = scan_top_k(&index, &q, 5);
        // Every node on axis 2 has cosine exactly 1; ties break by node id,
        // so the smallest axis-2 ids win in ascending order.
        assert_eq!(top.nodes().collect::<Vec<_>>(), vec![2, 6, 10, 14, 18]);
        for n in top.neighbors() {
            assert!((n.score - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn matches_naive_per_node_cosine() {
        let e = Embeddings::from_node_major(
            (0..7 * 3).map(|i| ((i * 37 % 11) as f32) - 5.0).collect(),
            3,
        );
        let index = EmbeddingIndex::build(&e);
        let q = normalized(e.vector(4));
        let top = scan_top_k(&index, &q, 7);
        let mut expected: Vec<(u32, f32)> = (0..7u32).map(|v| (v, e.cosine(4, v))).collect();
        expected.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for (got, want) in top.neighbors().iter().zip(&expected) {
            assert_eq!(got.node, want.0);
            assert!((got.score - want.1).abs() < 1e-5);
        }
    }

    #[test]
    fn k_larger_than_index_returns_all_nodes() {
        let e = axis_embeddings(3, 2);
        let index = EmbeddingIndex::build(&e);
        let top = scan_top_k(&index, &[1.0, 0.0], 10);
        assert_eq!(top.len(), 3);
    }
}
