//! Seeded synthetic embedding fixtures for tests and benchmarks.

use crate::normal::gaussian;
use distger_embed::Embeddings;
use rand::{rngs::StdRng, SeedableRng};

/// A Gaussian-cluster embedding fixture: `clusters` unit-norm centers drawn
/// from a seeded standard normal, node `i` assigned to cluster `i % clusters`
/// and placed at its center plus per-coordinate `N(0, sigma²)` noise.
///
/// With small `sigma` a node's nearest neighbors under cosine similarity are
/// overwhelmingly its cluster mates, which gives recall tests and the query
/// benchmark a ground truth with real structure (unlike uniform noise, where
/// "nearest" is arbitrary and every ANN backend looks equally bad).
///
/// # Panics
/// Panics if `clusters` is zero or `dim` is zero.
pub fn gaussian_clusters(
    n: usize,
    dim: usize,
    clusters: usize,
    sigma: f32,
    seed: u64,
) -> Embeddings {
    assert!(clusters > 0, "need at least one cluster");
    assert!(dim > 0, "need a positive dimension");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centers = vec![0.0f32; clusters * dim];
    for center in centers.chunks_mut(dim) {
        for x in center.iter_mut() {
            *x = gaussian(&mut rng);
        }
        let norm = center.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        for x in center.iter_mut() {
            *x /= norm;
        }
    }
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        let center = &centers[(i % clusters) * dim..(i % clusters + 1) * dim];
        for &c in center {
            data.push(c + sigma * gaussian(&mut rng));
        }
    }
    Embeddings::from_node_major(data, dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic_and_clustered() {
        let a = gaussian_clusters(120, 8, 6, 0.05, 3);
        let b = gaussian_clusters(120, 8, 6, 0.05, 3);
        assert_eq!(a, b);
        assert_eq!(a.num_nodes(), 120);
        assert_eq!(a.dim(), 8);
        // Cluster mates (i, i + clusters) are far more similar than nodes of
        // different clusters (i, i + 1).
        let mut same = 0.0;
        let mut other = 0.0;
        for i in 0..30u32 {
            same += a.cosine(i, i + 6);
            other += a.cosine(i, i + 1);
        }
        assert!(
            same / 30.0 > other / 30.0 + 0.3,
            "clusters not separated: same {same}, other {other}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            gaussian_clusters(40, 4, 2, 0.1, 1),
            gaussian_clusters(40, 4, 2, 0.1, 2)
        );
    }
}
