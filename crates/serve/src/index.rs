//! The read-optimized embedding index.
//!
//! Serving works on cosine similarity, and `cos(q, v) = q̂ · v̂` once both
//! sides are unit vectors — so the index pre-normalizes every embedding row
//! at build time. A query is then one dot product per visited node with no
//! per-step square roots or divisions, which is what keeps the exact scan's
//! inner loop a pure fused multiply-add chain.

use distger_embed::Embeddings;
use distger_graph::NodeId;

/// Node-major matrix of pre-normalized (unit-length) embedding rows.
///
/// Rows whose embedding is the zero vector stay zero (their cosine against
/// anything is 0, matching [`Embeddings::cosine`]); the original L2 norms are
/// retained for consumers that need un-normalized scores.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbeddingIndex {
    dim: usize,
    /// `num_nodes × dim` unit vectors, node-major.
    units: Vec<f32>,
    /// Original L2 norm per node.
    norms: Vec<f32>,
}

impl EmbeddingIndex {
    /// Builds the index by L2-normalizing every row of `embeddings`.
    pub fn build(embeddings: &Embeddings) -> Self {
        let dim = embeddings.dim();
        let n = embeddings.num_nodes();
        let mut units = Vec::with_capacity(n * dim);
        let mut norms = Vec::with_capacity(n);
        for node in 0..n {
            let row = embeddings.vector(node as NodeId);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            norms.push(norm);
            if norm > 0.0 {
                units.extend(row.iter().map(|x| x / norm));
            } else {
                units.extend_from_slice(row);
            }
        }
        Self { dim, units, norms }
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed nodes.
    pub fn num_nodes(&self) -> usize {
        self.norms.len()
    }

    /// The unit vector of `node` (all-zero if the embedding was zero).
    #[inline]
    pub fn unit_vector(&self, node: NodeId) -> &[f32] {
        let i = node as usize * self.dim;
        &self.units[i..i + self.dim]
    }

    /// The whole node-major unit-vector matrix (for chunked scans).
    pub fn unit_vectors(&self) -> &[f32] {
        &self.units
    }

    /// The original L2 norm of `node`'s embedding.
    pub fn norm(&self, node: NodeId) -> f32 {
        self.norms[node as usize]
    }

    /// Cosine similarity of a unit-normalized query against `node`.
    #[inline]
    pub fn cosine(&self, query_unit: &[f32], node: NodeId) -> f32 {
        dot(query_unit, self.unit_vector(node))
    }

    /// Resident memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.units.len() + self.norms.len()) * std::mem::size_of::<f32>()
            + std::mem::size_of::<Self>()
    }
}

/// Plain dot product; the slices must have equal length.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Returns `v` scaled to unit length (unchanged if it is the zero vector).
/// Test-only convenience; the serving hot path uses [`normalize_into`].
#[cfg(test)]
pub(crate) fn normalized(v: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; v.len()];
    normalize_into(v, &mut out);
    out
}

/// Writes `v` scaled to unit length into `out` (a copy if `v` is the zero
/// vector) — the allocation-free form for per-query hot loops.
pub(crate) fn normalize_into(v: &[f32], out: &mut [f32]) {
    debug_assert_eq!(v.len(), out.len());
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for (o, x) in out.iter_mut().zip(v) {
            *o = x / norm;
        }
    } else {
        out.copy_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_unit_length_and_norms_preserved() {
        let e = Embeddings::from_node_major(vec![3.0, 4.0, 0.0, 0.0, 1.0, 1.0], 2);
        let index = EmbeddingIndex::build(&e);
        assert_eq!(index.num_nodes(), 3);
        assert_eq!(index.dim(), 2);
        assert!((index.norm(0) - 5.0).abs() < 1e-6);
        assert_eq!(index.norm(1), 0.0);
        let row0 = index.unit_vector(0);
        assert!((row0[0] - 0.6).abs() < 1e-6 && (row0[1] - 0.8).abs() < 1e-6);
        // The zero row stays zero instead of becoming NaN.
        assert_eq!(index.unit_vector(1), &[0.0, 0.0]);
        let row2 = index.unit_vector(2);
        assert!((dot(row2, row2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_matches_embeddings_cosine() {
        let e = Embeddings::from_node_major(vec![1.0, 2.0, -3.0, 0.5, 2.0, 2.0], 2);
        let index = EmbeddingIndex::build(&e);
        for u in 0..3u32 {
            for v in 0..3u32 {
                let q = normalized(e.vector(u));
                assert!(
                    (index.cosine(&q, v) - e.cosine(u, v)).abs() < 1e-5,
                    "cosine mismatch at ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn memory_accounts_for_both_matrices() {
        let e = Embeddings::zeros(10, 4);
        let index = EmbeddingIndex::build(&e);
        assert!(index.memory_bytes() >= 10 * 4 * 4 + 10 * 4);
    }
}
