//! Query-serving layer for the DistGER reproduction.
//!
//! Training produces [`Embeddings`](distger_embed::Embeddings); this crate is
//! what makes them *servable* — the read side of the ROADMAP's "serves heavy
//! traffic" north star. The paper family evaluates embeddings through
//! similarity queries (DistGER §6.4; "A Broader Picture of Random-walk Based
//! Graph Embedding" frames quality entirely through nearest neighbors), so
//! the unit of serving here is the batched cosine **top-k query**:
//!
//! * [`EmbeddingIndex`] — the read-optimized store: node-major,
//!   pre-normalized unit vectors, so a cosine is one dot product
//!   ([`index`]). Built from in-memory embeddings or from the versioned
//!   binary store written by
//!   [`Embeddings::save_binary`](distger_embed::Embeddings::save_binary).
//! * [`QueryEngine`] — batched top-k with two [`QueryBackend`]s mirroring
//!   the workspace's optimized-default / reference pattern
//!   (`FreqBackend` / `SamplingBackend` / `ExecutionBackend`):
//!   [`QueryBackend::Exact`] is a chunked brute-force scan with a bounded
//!   heap ([`exact`]); [`QueryBackend::Lsh`] is seeded random-hyperplane
//!   signatures with multi-probe buckets and an exact re-rank ([`lsh`]).
//!   Batches fan out across threads on the same
//!   [`run_rounds`](distger_cluster::run_rounds) pool the sampler and
//!   trainer use.
//! * Determinism: every backend breaks score ties by ascending node id
//!   ([`topk`]), and the LSH hyperplanes are seeded — the same index and
//!   config always produce the same results.
//!
//! * [`Scheduler`] — the serving front door ([`schedule`]): independent
//!   callers submit single queries through cloneable [`RequestClient`]s; a
//!   dispatcher thread dynamically batches them under a [`BatchPolicy`]
//!   (size or deadline, whichever trips first), sheds load beyond
//!   `max_inflight`, serves hot queries from an LRU cache, and reports
//!   latency/batch/shed statistics ([`SchedulerStats`]). Time is injected
//!   through the [`Clock`] trait ([`clock`]) so deadline behavior is
//!   deterministically testable on a [`VirtualClock`]. The scheduler fronts
//!   any [`ServeEngine`] — the in-process [`QueryEngine`] or the sharded
//!   engine below.
//!
//! * [`ShardedQueryEngine`] — multi-machine serving ([`shard`]): the index
//!   is split by the same contiguous
//!   [`machine_split`](distger_cluster::machine_split) ranges the walk and
//!   train phases shard by, each endpoint of a
//!   [`ControlChannel`](distger_cluster::ControlChannel) builds a
//!   [`QueryEngine`] over only its rows, and the coordinator
//!   scatters each batch / gathers bounded per-shard heaps / k-way merges
//!   ([`merge_topk`]) into answers **bit-identical** to a single-process
//!   `top_k` over the whole index.
//!
//! `recall@k` of the LSH backend against the exact reference is evaluated by
//! `distger-eval`'s `recall` module and enforced (together with the LSH QPS
//! advantage) by the bench regression gate.

mod cache;
pub mod clock;
pub mod engine;
pub mod exact;
pub mod fixtures;
pub mod index;
pub mod lsh;
mod normal;
pub mod schedule;
pub mod shard;
pub mod topk;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use engine::{
    BatchResults, QueryBackend, QueryBatch, QueryEngine, QueryStats, ServeConfig, ServeEngine,
};
pub use fixtures::gaussian_clusters;
pub use index::EmbeddingIndex;
pub use lsh::{LshConfig, LshIndex, ProbeScratch};
pub use schedule::{
    BatchPolicy, Log2Histogram, PendingQuery, Rejected, RequestClient, Scheduler, SchedulerConfig,
    SchedulerStats,
};
pub use shard::{
    distribute_shards, merge_topk, receive_shard, serve_shard, EngineShard, ShardStats,
    ShardedQueryEngine,
};
pub use topk::{BoundedTopK, Neighbor, TopK};
