//! Approximate top-k: random-hyperplane LSH with multi-probe buckets.
//!
//! Sign-random-projection hashing (Charikar's SimHash) is the natural LSH
//! family for cosine similarity: a signature bit is the side of a random
//! hyperplane a vector falls on, and two vectors at angle `θ` agree on a bit
//! with probability `1 − θ/π`. The index keeps `tables` independent
//! signature tables; a query gathers the nodes in its own bucket of every
//! table, plus — **multi-probe** — the buckets at Hamming distance 1 reached
//! by flipping the query's *least confident* bits (smallest `|q · plane|`
//! margin first), which recovers most of the recall extra tables would buy
//! without their memory. Candidates are deduplicated and handed to the exact
//! scorer for re-ranking, so LSH results are always *true* cosine scores over
//! a candidate subset — the only approximation is which nodes get scored.

use crate::index::{dot, EmbeddingIndex};
use crate::normal::gaussian;
use distger_graph::NodeId;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;

/// Configuration of the LSH backend.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LshConfig {
    /// Signature width per table in bits (1..=24). More bits → smaller
    /// buckets → fewer candidates but lower recall.
    pub bits: u32,
    /// Number of independent hash tables. More tables → higher recall,
    /// linearly more memory and candidate-gathering work.
    pub tables: usize,
    /// Extra Hamming-distance-1 buckets probed per table, least-confident
    /// bits first (0 disables multi-probe).
    pub probes: usize,
    /// Seed of the random hyperplanes; a fixed seed makes the whole backend
    /// deterministic.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            bits: 16,
            tables: 8,
            probes: 8,
            seed: 0x15AC,
        }
    }
}

/// Built signature tables over an [`EmbeddingIndex`].
#[derive(Clone, Debug)]
pub struct LshIndex {
    dim: usize,
    bits: u32,
    probes: usize,
    /// `tables × bits` hyperplane normals, each of length `dim`, row-major.
    planes: Vec<f32>,
    /// Per table: signature → nodes, nodes in ascending id order (buckets are
    /// filled by one in-order pass over the index).
    buckets: Vec<HashMap<u32, Vec<NodeId>>>,
}

/// Per-thread scratch for candidate gathering: an epoch-stamped seen set (no
/// `O(n)` clearing between queries) and the per-bit margin buffer.
#[derive(Clone, Debug)]
pub struct ProbeScratch {
    stamps: Vec<u32>,
    epoch: u32,
    margins: Vec<f32>,
    flip_order: Vec<usize>,
}

impl ProbeScratch {
    /// Scratch sized for `index`.
    pub fn for_index(lsh: &LshIndex, index: &EmbeddingIndex) -> Self {
        Self {
            stamps: vec![0; index.num_nodes()],
            epoch: 0,
            margins: vec![0.0; lsh.bits as usize],
            flip_order: (0..lsh.bits as usize).collect(),
        }
    }
}

impl LshIndex {
    /// Draws the hyperplanes from `config.seed` and buckets every node of
    /// `index` in all tables.
    ///
    /// # Panics
    /// Panics if `bits` is outside `1..=24` or `tables` is zero.
    pub fn build(index: &EmbeddingIndex, config: &LshConfig) -> Self {
        assert!(
            (1..=24).contains(&config.bits),
            "signature width must be 1..=24 bits"
        );
        assert!(config.tables > 0, "need at least one hash table");
        let dim = index.dim();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let plane_count = config.tables * config.bits as usize;
        let mut planes = Vec::with_capacity(plane_count * dim);
        for _ in 0..plane_count * dim {
            planes.push(gaussian(&mut rng));
        }
        let mut lsh = Self {
            dim,
            bits: config.bits,
            probes: config.probes,
            planes,
            buckets: vec![HashMap::new(); config.tables],
        };
        for node in 0..index.num_nodes() as NodeId {
            let row = index.unit_vector(node);
            for table in 0..config.tables {
                let sig = lsh.signature(table, row);
                lsh.buckets[table].entry(sig).or_default().push(node);
            }
        }
        lsh
    }

    /// Number of hash tables.
    pub fn tables(&self) -> usize {
        self.buckets.len()
    }

    /// The signature of `v` in `table`: bit `b` is set when `v` lies on the
    /// positive side of hyperplane `b`.
    pub fn signature(&self, table: usize, v: &[f32]) -> u32 {
        let mut sig = 0u32;
        for b in 0..self.bits as usize {
            if dot(self.plane(table, b), v) > 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    /// Gathers the deduplicated candidate set for a unit-normalized query:
    /// the query's own bucket in every table plus `probes` Hamming-1 buckets
    /// per table, least-confident bits flipped first. Candidate order is
    /// deterministic (probe order, then ascending node id within a bucket).
    pub fn candidates(
        &self,
        query_unit: &[f32],
        scratch: &mut ProbeScratch,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        scratch.epoch += 1;
        if scratch.epoch == 0 {
            // Stamp wrap-around: reset the whole seen set once every 2^32
            // queries instead of branching per node.
            scratch.stamps.fill(0);
            scratch.epoch = 1;
        }
        let epoch = scratch.epoch;
        for table in 0..self.buckets.len() {
            let mut sig = 0u32;
            for b in 0..self.bits as usize {
                let margin = dot(self.plane(table, b), query_unit);
                scratch.margins[b] = margin;
                if margin > 0.0 {
                    sig |= 1 << b;
                }
            }
            self.collect_bucket(table, sig, epoch, scratch, out);
            if self.probes > 0 {
                // Flip the bits the query was least sure about, one at a
                // time (Hamming distance 1), smallest |margin| first; equal
                // margins break by bit index so probing is deterministic.
                scratch.flip_order.sort_unstable_by(|&a, &b| {
                    scratch.margins[a]
                        .abs()
                        .total_cmp(&scratch.margins[b].abs())
                        .then(a.cmp(&b))
                });
                for p in 0..self.probes.min(self.bits as usize) {
                    let bit = scratch.flip_order[p];
                    self.collect_bucket(table, sig ^ (1 << bit), epoch, scratch, out);
                }
            }
        }
    }

    /// Resident memory in bytes (hyperplanes plus bucket directories).
    pub fn memory_bytes(&self) -> usize {
        let bucket_bytes: usize = self
            .buckets
            .iter()
            .map(|table| {
                table
                    .values()
                    .map(|b| b.len() * std::mem::size_of::<NodeId>() + std::mem::size_of::<u64>())
                    .sum::<usize>()
            })
            .sum();
        self.planes.len() * std::mem::size_of::<f32>() + bucket_bytes + std::mem::size_of::<Self>()
    }

    #[inline]
    fn plane(&self, table: usize, bit: usize) -> &[f32] {
        let i = (table * self.bits as usize + bit) * self.dim;
        &self.planes[i..i + self.dim]
    }

    #[inline]
    fn collect_bucket(
        &self,
        table: usize,
        sig: u32,
        epoch: u32,
        scratch: &mut ProbeScratch,
        out: &mut Vec<NodeId>,
    ) {
        if let Some(bucket) = self.buckets[table].get(&sig) {
            for &node in bucket {
                let stamp = &mut scratch.stamps[node as usize];
                if *stamp != epoch {
                    *stamp = epoch;
                    out.push(node);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::gaussian_clusters;
    use crate::index::normalized;

    fn small_index() -> EmbeddingIndex {
        EmbeddingIndex::build(&gaussian_clusters(200, 16, 4, 0.05, 7))
    }

    #[test]
    fn every_node_is_its_own_candidate() {
        let index = small_index();
        let lsh = LshIndex::build(&index, &LshConfig::default());
        let mut scratch = ProbeScratch::for_index(&lsh, &index);
        let mut out = Vec::new();
        for node in 0..index.num_nodes() as NodeId {
            lsh.candidates(index.unit_vector(node), &mut scratch, &mut out);
            assert!(
                out.contains(&node),
                "node {node} missing from its own candidate set"
            );
        }
    }

    #[test]
    fn candidates_are_deduplicated_and_deterministic() {
        let index = small_index();
        let lsh = LshIndex::build(&index, &LshConfig::default());
        let mut scratch = ProbeScratch::for_index(&lsh, &index);
        let q = normalized(index.unit_vector(3));
        let mut a = Vec::new();
        lsh.candidates(&q, &mut scratch, &mut a);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "duplicate candidates");
        // Same query again through the same scratch: identical output.
        let mut b = Vec::new();
        lsh.candidates(&q, &mut scratch, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_same_tables_different_seed_different_planes() {
        let index = small_index();
        let config = LshConfig::default();
        let a = LshIndex::build(&index, &config);
        let b = LshIndex::build(&index, &config);
        assert_eq!(a.planes, b.planes);
        let c = LshIndex::build(&index, &LshConfig { seed: 99, ..config });
        assert_ne!(a.planes, c.planes);
    }

    #[test]
    fn multi_probe_only_grows_the_candidate_set() {
        let index = small_index();
        let base = LshConfig {
            probes: 0,
            ..LshConfig::default()
        };
        let probing = LshConfig {
            probes: 6,
            ..LshConfig::default()
        };
        let lsh0 = LshIndex::build(&index, &base);
        let lsh6 = LshIndex::build(&index, &probing);
        let mut s0 = ProbeScratch::for_index(&lsh0, &index);
        let mut s6 = ProbeScratch::for_index(&lsh6, &index);
        let (mut c0, mut c6) = (Vec::new(), Vec::new());
        let mut grew = false;
        for node in (0..200).step_by(17) {
            let q = index.unit_vector(node);
            lsh0.candidates(q, &mut s0, &mut c0);
            lsh6.candidates(q, &mut s6, &mut c6);
            let set0: std::collections::HashSet<_> = c0.iter().copied().collect();
            let set6: std::collections::HashSet<_> = c6.iter().copied().collect();
            assert!(set0.is_subset(&set6), "probing lost candidates");
            grew |= set6.len() > set0.len();
        }
        assert!(grew, "probing never added a candidate");
    }

    #[test]
    fn memory_counts_planes_and_buckets() {
        let index = small_index();
        let config = LshConfig::default();
        let lsh = LshIndex::build(&index, &config);
        let plane_bytes = config.tables * config.bits as usize * index.dim() * 4;
        assert!(lsh.memory_bytes() > plane_bytes);
        assert_eq!(lsh.tables(), config.tables);
    }

    #[test]
    #[should_panic(expected = "1..=24")]
    fn oversized_signature_rejected() {
        LshIndex::build(
            &small_index(),
            &LshConfig {
                bits: 25,
                ..LshConfig::default()
            },
        );
    }
}
