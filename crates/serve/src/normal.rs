//! Shared standard-normal sampling for the serve crate (LSH hyperplanes and
//! the Gaussian-cluster fixture draw from the same helper, so the two can
//! never drift apart numerically).

use rand::{rngs::StdRng, Rng};

/// One standard-normal draw via Box–Muller.
pub(crate) fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}
