//! The serving front door: a dynamic-batching request scheduler.
//!
//! [`QueryEngine`] is a library call — one caller hands it a pre-formed
//! [`QueryBatch`] and blocks. A serving deployment has the
//! opposite shape: many independent callers, each holding *one* query,
//! wanting an answer inside a latency budget. [`Scheduler`] bridges the two:
//! callers submit single queries through a cloneable [`RequestClient`]; a
//! dispatcher thread accumulates them into batches under a
//! [`BatchPolicy`] and flushes each batch onto the existing
//! `cluster::pool`-backed [`QueryEngine::top_k`] path, returning per-request
//! [`TopK`] results through completion channels ([`PendingQuery`]).
//!
//! # Flush conditions (the dispatcher state machine)
//!
//! The dispatcher loops over three states, all decisions made under one
//! state lock:
//!
//! * **idle** — queue empty: park on the [`Clock`] with no deadline
//!   ([`clock::IDLE`](crate::clock::IDLE)); a submit wakes it.
//! * **armed** — queue non-empty but below `max_batch`: the flush deadline
//!   is `oldest.submitted_at + max_delay`; park until that deadline (new
//!   submits wake it early to re-check the size trigger).
//! * **flush** — `queue.len() >= max_batch` *or* `now >= deadline`: drain up
//!   to `max_batch` requests, release the lock, run the engine, complete the
//!   requests, loop.
//!
//! Whichever trips first wins: a full batch flushes immediately regardless
//! of age, and a lone request flushes exactly at its deadline, never before
//! (property-tested on [`VirtualClock`](crate::VirtualClock)).
//!
//! # Admission, shedding, caching
//!
//! Submits are bounded by `max_inflight` (accepted-but-unanswered
//! requests): beyond it, [`submit`](RequestClient::submit) fails fast with
//! [`Rejected::Overloaded`] instead of growing an unbounded queue — counted
//! in [`SchedulerStats::shed`]. In front of admission sits a hot-query LRU
//! cache (`cache` module — key: exact bits of the *normalized*
//! query, so hits are bit-identical to engine answers by construction).
//!
//! # Shutdown and failure
//!
//! Dropping the [`Scheduler`] (or an engine panic — e.g. injected through
//! the [`FaultInjector`] seam) must never strand a caller: the dispatcher
//! errors every queued and in-flight request with [`Rejected::Shutdown`],
//! later submits fail fast, and [`PendingQuery::wait`] maps a dead channel
//! to the same error. The engine-panic payload is preserved in
//! [`Scheduler::failure`].

use crate::cache::QueryCache;
use crate::clock::{Clock, SystemClock, IDLE};
use crate::engine::{QueryBatch, QueryEngine, ServeEngine};
use crate::index::normalize_into;
use crate::topk::TopK;
use distger_cluster::{panic_message, FaultInjector};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// When a pending batch flushes: at `max_batch` queued requests or when the
/// oldest queued request turns `max_delay` old — whichever trips first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush when the oldest queued request has waited this long.
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 256,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Configuration of a [`Scheduler`].
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Batch accumulation policy.
    pub batch: BatchPolicy,
    /// Admission bound: accepted-but-unanswered requests beyond this are
    /// shed with [`Rejected::Overloaded`].
    pub max_inflight: usize,
    /// Hot-query LRU cache capacity in entries (0 = disabled, the default).
    pub cache_capacity: usize,
    /// Deterministic fault-injection seam (tests only): tripped once per
    /// batch as `(machine 0, round = batch index, superstep 0)` right before
    /// the engine call, so an injected panic exercises the shutdown path.
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            batch: BatchPolicy::default(),
            max_inflight: 1024,
            cache_capacity: 0,
            faults: None,
        }
    }
}

impl SchedulerConfig {
    /// Builder-style batch-policy override.
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Builder-style admission-bound override.
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    /// Builder-style cache-capacity override.
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }
}

/// Why a request was not answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// Admission control shed the request: `max_inflight` requests were
    /// already accepted and unanswered. Back off and retry.
    Overloaded,
    /// The scheduler is shutting down (dropped) or its dispatcher died on an
    /// engine panic; see [`Scheduler::failure`] for the payload.
    Shutdown,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded => write!(f, "request shed: scheduler at max_inflight"),
            Rejected::Shutdown => write!(f, "scheduler shut down before answering"),
        }
    }
}

impl std::error::Error for Rejected {}

/// The power-of-two latency/size histogram, now owned by the observability
/// layer (it grew up here; the metrics registry needed it, and a metrics type
/// belongs below the serving layer). Re-exported so existing
/// `distger_serve::Log2Histogram` imports keep working.
pub use distger_obs::Log2Histogram;

/// Counters and distributions of a [`Scheduler`]'s lifetime so far.
///
/// Counter identities (always true at a quiescent point — no submit racing
/// the read, no batch mid-flight):
/// `submitted == shed + cache_hits + cache_misses` and
/// `cache_misses == completed + shutdown_errors + still-pending`.
#[derive(Clone, Debug, Default)]
pub struct SchedulerStats {
    /// Submit calls that reached admission (everything except
    /// post-shutdown fast-fails).
    pub submitted: u64,
    /// Requests answered by the engine (excludes cache hits).
    pub completed: u64,
    /// Requests answered straight from the hot-query cache.
    pub cache_hits: u64,
    /// Requests that missed the cache and were enqueued.
    pub cache_misses: u64,
    /// Requests shed by admission control ([`Rejected::Overloaded`]).
    pub shed: u64,
    /// Queued or in-flight requests errored by shutdown or engine failure.
    pub shutdown_errors: u64,
    /// Batches flushed to the engine.
    pub batches: u64,
    /// Per-request latency in nanoseconds, submit → answer (cache hits
    /// record 0).
    pub latency: Log2Histogram,
    /// Flushed batch sizes.
    pub batch_sizes: Log2Histogram,
    /// Scheduler age at the time of the stats read, per its [`Clock`].
    pub elapsed: Duration,
}

impl SchedulerStats {
    /// Answered requests (engine + cache) per second of scheduler lifetime.
    /// Returns 0.0 at zero elapsed time — which a [`VirtualClock`] that was
    /// never advanced reports; wall-clock QPS gates must divide by a
    /// measured positive wall time instead (the bench asserts this).
    ///
    /// [`VirtualClock`]: crate::VirtualClock
    pub fn qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            (self.completed + self.cache_hits) as f64 / secs
        } else {
            0.0
        }
    }

    /// Cache hits over cache lookups (0.0 before any lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Mean flushed batch size (0.0 before any flush).
    pub fn avg_batch(&self) -> f64 {
        self.batch_sizes.mean()
    }

    /// Latency quantile as a [`Duration`] (see [`Log2Histogram::quantile`]
    /// for the bucket-upper-bound semantics).
    pub fn latency_quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.latency.quantile(q))
    }

    /// Aggregates another scheduler's lifetime stats into this one — for
    /// fleet-level reporting over several scheduler replicas. Counters add,
    /// histograms [`merge`](Log2Histogram::merge), and `elapsed` takes the
    /// maximum (replicas run concurrently; summing ages would deflate
    /// [`qps`](SchedulerStats::qps)).
    pub fn merge(&mut self, other: &SchedulerStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.shed += other.shed;
        self.shutdown_errors += other.shutdown_errors;
        self.batches += other.batches;
        self.latency.merge(&other.latency);
        self.batch_sizes.merge(&other.batch_sizes);
        self.elapsed = self.elapsed.max(other.elapsed);
    }
}

/// One queued request.
struct Request {
    /// The raw query, exactly as submitted. The *engine* normalizes it —
    /// passing the raw bits through the same `top_k` path a direct caller
    /// uses is what makes scheduler answers bit-identical by construction
    /// (renormalizing an already-normalized vector is not bit-stable).
    query: Vec<f32>,
    /// Cache key (present only when the cache is enabled).
    key: Option<Vec<u32>>,
    /// Completion channel back to the caller's [`PendingQuery`].
    tx: Sender<Result<TopK, Rejected>>,
    /// Clock time the request was accepted.
    submitted_at: Duration,
}

/// Dispatcher-owned mutable state, behind the one scheduler lock.
struct SchedState {
    queue: VecDeque<Request>,
    cache: QueryCache,
    /// Accepted-but-unanswered requests (queued + mid-batch).
    inflight: usize,
    shutdown: bool,
    /// Engine panic payload, if the dispatcher died on one.
    failure: Option<String>,
    stats: SchedulerStats,
}

struct Shared<C: Clock, E: ServeEngine> {
    state: Mutex<SchedState>,
    clock: C,
    engine: E,
    config: SchedulerConfig,
    /// Clock time at scheduler creation; `stats.elapsed` is measured from
    /// here.
    started: Duration,
}

impl<C: Clock, E: ServeEngine> Shared<C, E> {
    /// State lock, poison-recovering like `cluster::pool`: every field is
    /// valid in any state (counters, a queue, a cache), and the shutdown
    /// path *must* acquire this lock after a dispatcher panic to drain the
    /// queue — unwrapping would trade a panic for hung callers.
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Errors every request in `queue` with [`Rejected::Shutdown`].
fn drain_queue(state: &mut SchedState) {
    while let Some(request) = state.queue.pop_front() {
        state.inflight -= 1;
        state.stats.shutdown_errors += 1;
        // A receiver gone before its answer is just a dropped PendingQuery.
        let _ = request.tx.send(Err(Rejected::Shutdown));
    }
}

/// The dispatcher loop; see the module docs for the state machine.
fn dispatch<C: Clock, E: ServeEngine>(shared: &Shared<C, E>) {
    let policy = shared.config.batch;
    loop {
        let mut state = shared.lock();
        if state.shutdown {
            drain_queue(&mut state);
            return;
        }
        let Some(oldest) = state.queue.front() else {
            shared.clock.wait_until(state, IDLE);
            continue;
        };
        let deadline = oldest.submitted_at.saturating_add(policy.max_delay);
        let now = shared.clock.now();
        if state.queue.len() < policy.max_batch && now < deadline {
            shared.clock.wait_until(state, deadline);
            continue;
        }

        // Flush: drain up to max_batch requests, run the engine unlocked.
        let take = state.queue.len().min(policy.max_batch);
        let requests: Vec<Request> = state.queue.drain(..take).collect();
        let batch_index = state.stats.batches;
        state.stats.batches += 1;
        state.stats.batch_sizes.record(take as u64);
        drop(state);

        // The "batch" span covers flush → engine → answers delivered; the
        // queued→flushed wait is visible as the gap since "request_queued".
        let _batch_span = distger_obs::span!("batch", round = batch_index);
        let mut batch = QueryBatch::new(shared.engine.dim());
        for request in &requests {
            batch.push(&request.query);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(injector) = &shared.config.faults {
                injector.trip(0, batch_index, 0);
            }
            shared.engine.serve(&batch)
        }));

        match outcome {
            Ok(results) => {
                let done = shared.clock.now();
                let mut state = shared.lock();
                for (request, top) in requests.into_iter().zip(results.results) {
                    state.inflight -= 1;
                    state.stats.completed += 1;
                    let waited = done.saturating_sub(request.submitted_at);
                    state.stats.latency.record(waited.as_nanos() as u64);
                    if let Some(key) = request.key {
                        state.cache.insert(key, top.clone());
                    }
                    let _ = request.tx.send(Ok(top));
                }
            }
            Err(payload) => {
                // Engine panic: record it, fail this batch and everything
                // queued behind it, and stop dispatching — the scheduler is
                // permanently down (matching the pool's fail-stop barrier
                // semantics), but no caller hangs.
                let mut state = shared.lock();
                state.shutdown = true;
                state.failure = Some(panic_message(payload.as_ref()));
                for request in requests {
                    state.inflight -= 1;
                    state.stats.shutdown_errors += 1;
                    let _ = request.tx.send(Err(Rejected::Shutdown));
                }
                drain_queue(&mut state);
                return;
            }
        }
    }
}

/// The serving front door: owns the engine (any [`ServeEngine`] — the
/// single-process [`QueryEngine`] by default, or the sharded scatter-gather
/// engine, whose batches fan out per shard instead of per pool chunk) and
/// the dispatcher thread; hand out [`RequestClient`]s via
/// [`client`](Scheduler::client). Dropping it shuts the dispatcher down and
/// errors all in-flight requests with [`Rejected::Shutdown`].
pub struct Scheduler<C: Clock = SystemClock, E: ServeEngine = QueryEngine> {
    shared: Arc<Shared<C, E>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl<E: ServeEngine> Scheduler<SystemClock, E> {
    /// A scheduler on wall-clock time.
    pub fn new(engine: E, config: SchedulerConfig) -> Self {
        Self::with_clock(engine, config, SystemClock::default())
    }
}

impl<C: Clock, E: ServeEngine> Scheduler<C, E> {
    /// A scheduler on an injected clock ([`VirtualClock`](crate::VirtualClock)
    /// in tests).
    ///
    /// # Panics
    /// Panics if `config.batch.max_batch` or `config.max_inflight` is zero.
    pub fn with_clock(engine: E, config: SchedulerConfig, clock: C) -> Self {
        assert!(config.batch.max_batch > 0, "need max_batch >= 1");
        assert!(config.max_inflight > 0, "need max_inflight >= 1");
        let started = clock.now();
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                cache: QueryCache::new(config.cache_capacity),
                inflight: 0,
                shutdown: false,
                failure: None,
                stats: SchedulerStats::default(),
            }),
            clock,
            engine,
            config,
            started,
        });
        let worker = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("serve-dispatcher".into())
            .spawn(move || dispatch(worker.as_ref()))
            .expect("spawn dispatcher thread");
        Self {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// A handle for submitting queries; clone freely across caller threads.
    pub fn client(&self) -> RequestClient<C, E> {
        RequestClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The engine being fronted.
    pub fn engine(&self) -> &E {
        &self.shared.engine
    }

    /// Shuts the scheduler down (dispatcher joined, every queued request
    /// errored with [`Rejected::Shutdown`], exactly as on drop) and hands
    /// the engine back — the multi-process serve phase needs its
    /// [`ShardedQueryEngine`](crate::shard::ShardedQueryEngine) back to run
    /// the shutdown collective and recover the transport.
    ///
    /// # Panics
    /// Panics if a [`RequestClient`] is still alive: clients keep the engine
    /// reachable, so drop them all first.
    pub fn into_engine(mut self) -> E {
        self.shared.lock().shutdown = true;
        self.shared.clock.wake();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        let shared = Arc::clone(&self.shared);
        // Drop runs on an already-shut scheduler: dispatcher is None, the
        // shutdown flag is idempotent. This releases `self`'s Arc.
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(shared) => shared.engine,
            Err(_) => panic!("drop every RequestClient before into_engine"),
        }
    }

    /// A snapshot of the scheduler's counters and distributions.
    pub fn stats(&self) -> SchedulerStats {
        let mut stats = self.shared.lock().stats.clone();
        stats.elapsed = self.shared.clock.now().saturating_sub(self.shared.started);
        stats
    }

    /// The engine panic that killed the dispatcher, if one did.
    pub fn failure(&self) -> Option<String> {
        self.shared.lock().failure.clone()
    }
}

impl<C: Clock, E: ServeEngine> Drop for Scheduler<C, E> {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.clock.wake();
        if let Some(handle) = self.dispatcher.take() {
            // The dispatcher only panics if the engine panic *re-raises*
            // through drain — it doesn't (send errors are ignored) — but a
            // Drop must never double-panic regardless.
            let _ = handle.join();
        }
    }
}

/// A cloneable submit handle onto a [`Scheduler`]. Outliving the scheduler
/// is safe: submits after shutdown fail fast with [`Rejected::Shutdown`].
pub struct RequestClient<C: Clock = SystemClock, E: ServeEngine = QueryEngine> {
    shared: Arc<Shared<C, E>>,
}

impl<C: Clock, E: ServeEngine> Clone for RequestClient<C, E> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<C: Clock, E: ServeEngine> RequestClient<C, E> {
    /// Submits one query; returns a [`PendingQuery`] to wait on, or fails
    /// fast when overloaded or shut down. Never blocks on the engine.
    ///
    /// # Panics
    /// Panics if `query.len()` differs from the index dimension (the same
    /// contract as [`QueryEngine::top_k`]).
    pub fn submit(&self, query: &[f32]) -> Result<PendingQuery, Rejected> {
        let dim = self.shared.engine.dim();
        assert_eq!(query.len(), dim, "query dimension does not match the index");
        // The cache key is the bit image of the *normalized* query (see
        // `cache`); the raw query is what gets enqueued for the engine.
        let key_bits = if self.shared.config.cache_capacity > 0 {
            let mut unit_query = vec![0.0; dim];
            normalize_into(query, &mut unit_query);
            Some(QueryCache::key_of(&unit_query))
        } else {
            None
        };

        let (tx, rx) = channel();
        let mut state = self.shared.lock();
        if state.shutdown {
            return Err(Rejected::Shutdown);
        }
        state.stats.submitted += 1;
        let key = if let Some(key) = key_bits {
            if let Some(answer) = state.cache.get(&key) {
                state.stats.cache_hits += 1;
                state.stats.latency.record(0);
                drop(state);
                distger_obs::instant("cache_hit", -1, -1);
                let _ = tx.send(Ok(answer));
                return Ok(PendingQuery { rx });
            }
            Some(key)
        } else {
            None
        };
        if state.inflight >= self.shared.config.max_inflight {
            state.stats.shed += 1;
            drop(state);
            distger_obs::instant("request_shed", -1, -1);
            return Err(Rejected::Overloaded);
        }
        state.stats.cache_misses += 1;
        state.inflight += 1;
        state.queue.push_back(Request {
            query: query.to_vec(),
            key,
            tx,
            submitted_at: self.shared.clock.now(),
        });
        drop(state);
        distger_obs::instant("request_queued", -1, -1);
        // Wake after releasing the state lock (the clock protocol's lock
        // order is state → clock).
        self.shared.clock.wake();
        Ok(PendingQuery { rx })
    }

    /// Stats snapshot, same as [`Scheduler::stats`].
    pub fn stats(&self) -> SchedulerStats {
        let mut stats = self.shared.lock().stats.clone();
        stats.elapsed = self.shared.clock.now().saturating_sub(self.shared.started);
        stats
    }
}

/// A submitted request's completion handle.
#[derive(Debug)]
pub struct PendingQuery {
    rx: Receiver<Result<TopK, Rejected>>,
}

impl PendingQuery {
    /// Blocks until the answer (or rejection) arrives. A dispatcher that
    /// died without answering reads as [`Rejected::Shutdown`].
    pub fn wait(self) -> Result<TopK, Rejected> {
        self.rx.recv().unwrap_or(Err(Rejected::Shutdown))
    }

    /// Non-blocking poll: `None` while the answer is still pending.
    pub fn try_wait(&self) -> Option<Result<TopK, Rejected>> {
        match self.rx.try_recv() {
            Ok(answer) => Some(answer),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(Rejected::Shutdown)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::engine::{QueryBackend, ServeConfig};
    use crate::fixtures::gaussian_clusters;
    use crate::index::EmbeddingIndex;
    use distger_cluster::FaultPlan;

    fn engine(backend: QueryBackend) -> QueryEngine {
        let index = EmbeddingIndex::build(&gaussian_clusters(200, 8, 4, 0.05, 23));
        QueryEngine::new(
            index,
            ServeConfig {
                backend,
                k: 5,
                threads: 2,
                ..ServeConfig::default()
            },
        )
    }

    fn query_of(engine: &QueryEngine, node: u32) -> Vec<f32> {
        engine.index().unit_vector(node).to_vec()
    }

    #[test]
    fn answers_match_the_direct_engine_call() {
        let engine = engine(QueryBackend::Exact);
        let expected = engine.top_k_one(&query_of(&engine, 7));
        let scheduler = Scheduler::new(engine, SchedulerConfig::default());
        let client = scheduler.client();
        let query = query_of(scheduler.engine(), 7);
        let answer = client.submit(&query).unwrap().wait().unwrap();
        assert_eq!(answer, expected);
    }

    #[test]
    fn full_batch_flushes_without_time_moving() {
        // max_batch submissions must flush on size alone: the virtual clock
        // never advances, so the deadline can never trip.
        let clock = VirtualClock::new();
        let scheduler = Scheduler::with_clock(
            engine(QueryBackend::Exact),
            SchedulerConfig::default().with_batch(BatchPolicy {
                max_batch: 4,
                max_delay: Duration::from_secs(3600),
            }),
            clock.clone(),
        );
        let client = scheduler.client();
        let pending: Vec<PendingQuery> = (0..4)
            .map(|node| {
                let query = query_of(scheduler.engine(), node);
                client.submit(&query).unwrap()
            })
            .collect();
        for p in pending {
            assert!(p.wait().is_ok());
        }
        let stats = scheduler.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_sizes.max(), 4);
        assert_eq!(clock.now(), Duration::ZERO);
    }

    #[test]
    fn lone_request_flushes_exactly_at_the_deadline_never_before() {
        let clock = VirtualClock::new();
        let max_delay = Duration::from_millis(2);
        let scheduler = Scheduler::with_clock(
            engine(QueryBackend::Exact),
            SchedulerConfig::default().with_batch(BatchPolicy {
                max_batch: 256,
                max_delay,
            }),
            clock.clone(),
        );
        let client = scheduler.client();
        let query = query_of(scheduler.engine(), 3);
        let pending = client.submit(&query).unwrap();

        // Deterministic "not yet": the dispatcher is parked on exactly the
        // submit-time + max_delay deadline...
        assert_eq!(clock.wait_for_park_until(max_delay), max_delay);
        // ...and with time one nanosecond short of it, it is *provably*
        // still parked — no flush can have happened.
        clock.advance(max_delay - Duration::from_nanos(1));
        assert_eq!(clock.parked_deadline(), Some(max_delay));
        assert_eq!(pending.try_wait(), None, "flushed before the deadline");

        clock.advance(Duration::from_nanos(1));
        assert!(pending.wait().is_ok());
        let stats = scheduler.stats();
        assert_eq!(stats.batches, 1);
        // Latency is measured on the same virtual clock: exactly max_delay.
        assert_eq!(stats.latency.max(), max_delay.as_nanos() as u64);
    }

    #[test]
    fn overload_sheds_with_overloaded() {
        // max_inflight 2 and a dispatcher that can never flush (far
        // deadline, huge batch, frozen clock): the third submit must shed.
        let scheduler = Scheduler::with_clock(
            engine(QueryBackend::Exact),
            SchedulerConfig::default()
                .with_max_inflight(2)
                .with_batch(BatchPolicy {
                    max_batch: 256,
                    max_delay: Duration::from_secs(3600),
                }),
            VirtualClock::new(),
        );
        let client = scheduler.client();
        let query = query_of(scheduler.engine(), 0);
        let _a = client.submit(&query).unwrap();
        let _b = client.submit(&query).unwrap();
        assert_eq!(client.submit(&query).unwrap_err(), Rejected::Overloaded);
        let stats = scheduler.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.submitted, 3);
    }

    #[test]
    fn drop_errors_queued_requests_with_shutdown() {
        let clock = VirtualClock::new();
        let scheduler = Scheduler::with_clock(
            engine(QueryBackend::Exact),
            SchedulerConfig::default().with_batch(BatchPolicy {
                max_batch: 256,
                max_delay: Duration::from_secs(3600),
            }),
            clock,
        );
        let client = scheduler.client();
        let query = query_of(scheduler.engine(), 1);
        let pending = client.submit(&query).unwrap();
        drop(scheduler);
        assert_eq!(pending.wait(), Err(Rejected::Shutdown));
        assert_eq!(client.submit(&query).unwrap_err(), Rejected::Shutdown);
    }

    #[test]
    fn engine_panic_fails_all_requests_and_records_the_payload() {
        // Fault injected at (machine 0, round 0, superstep 0) = the first
        // batch: both its requests and the client must see Shutdown, and the
        // canonical panic message must be preserved.
        let faults = Arc::new(FaultPlan::new().panic_at(0, 0, 0).build());
        let clock = VirtualClock::new();
        let scheduler = Scheduler::with_clock(
            engine(QueryBackend::Exact),
            SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 2,
                    max_delay: Duration::from_secs(3600),
                },
                faults: Some(faults),
                ..SchedulerConfig::default()
            },
            clock,
        );
        let client = scheduler.client();
        let query = query_of(scheduler.engine(), 2);
        let a = client.submit(&query).unwrap();
        let b = client.submit(&query).unwrap();
        assert_eq!(a.wait(), Err(Rejected::Shutdown));
        assert_eq!(b.wait(), Err(Rejected::Shutdown));
        let failure = scheduler.failure().expect("panic payload recorded");
        assert!(
            failure.contains("injected fault"),
            "unexpected payload: {failure}"
        );
        assert_eq!(client.submit(&query).unwrap_err(), Rejected::Shutdown);
        let stats = scheduler.stats();
        assert_eq!(stats.shutdown_errors, 2);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn cache_hits_are_bit_identical_and_counted() {
        let engine = engine(QueryBackend::Lsh);
        let expected = engine.top_k_one(&query_of(&engine, 9));
        let scheduler = Scheduler::new(engine, SchedulerConfig::default().with_cache_capacity(8));
        let client = scheduler.client();
        let query = query_of(scheduler.engine(), 9);
        let first = client.submit(&query).unwrap().wait().unwrap();
        let second = client.submit(&query).unwrap().wait().unwrap();
        assert_eq!(first, expected);
        assert_eq!(second, expected);
        let stats = scheduler.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_identities_hold_after_a_mixed_run() {
        let scheduler = Scheduler::new(
            engine(QueryBackend::Exact),
            SchedulerConfig::default()
                .with_cache_capacity(4)
                .with_batch(BatchPolicy {
                    max_batch: 3,
                    max_delay: Duration::from_micros(200),
                }),
        );
        let client = scheduler.client();
        let pending: Vec<PendingQuery> = (0..20u32)
            .map(|i| {
                let query = query_of(scheduler.engine(), i % 5);
                client.submit(&query).unwrap()
            })
            .collect();
        for p in pending {
            assert!(p.wait().is_ok());
        }
        let stats = scheduler.stats();
        assert_eq!(stats.submitted, 20);
        assert_eq!(
            stats.submitted,
            stats.shed + stats.cache_hits + stats.cache_misses
        );
        // Everything waited on: nothing still pending.
        assert_eq!(stats.cache_misses, stats.completed + stats.shutdown_errors);
        assert_eq!(stats.batch_sizes.total(), stats.batches);
        assert_eq!(stats.batch_sizes.sum(), stats.completed);
        assert_eq!(stats.latency.total(), stats.completed + stats.cache_hits);
        assert!(stats.qps() > 0.0);
        assert!(stats.latency_quantile(0.99) >= stats.latency_quantile(0.50));
    }

    #[test]
    fn merged_stats_aggregate_replicas() {
        // Two schedulers answer disjoint traffic; the merged stats must look
        // like one fleet: counters summed, distributions merged, identities
        // preserved.
        let run = |nodes: std::ops::Range<u32>| {
            let scheduler = Scheduler::new(engine(QueryBackend::Exact), SchedulerConfig::default());
            let client = scheduler.client();
            let pending: Vec<PendingQuery> = nodes
                .map(|node| {
                    let query = query_of(scheduler.engine(), node);
                    client.submit(&query).unwrap()
                })
                .collect();
            for p in pending {
                assert!(p.wait().is_ok());
            }
            scheduler.stats()
        };
        let a = run(0..3);
        let b = run(3..8);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.submitted, 8);
        assert_eq!(merged.completed, a.completed + b.completed);
        assert_eq!(merged.batches, a.batches + b.batches);
        assert_eq!(
            merged.latency.total(),
            a.latency.total() + b.latency.total()
        );
        assert_eq!(merged.batch_sizes.sum(), merged.completed);
        assert_eq!(merged.elapsed, a.elapsed.max(b.elapsed));
        assert!(merged.latency.max() >= a.latency.max().max(b.latency.max()));
    }

    #[test]
    #[should_panic(expected = "dimension does not match")]
    fn submit_rejects_wrong_dimension() {
        let scheduler = Scheduler::new(engine(QueryBackend::Exact), SchedulerConfig::default());
        let _ = scheduler.client().submit(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "max_batch >= 1")]
    fn zero_max_batch_rejected() {
        Scheduler::new(
            engine(QueryBackend::Exact),
            SchedulerConfig::default().with_batch(BatchPolicy {
                max_batch: 0,
                max_delay: Duration::from_millis(1),
            }),
        );
    }
}
