//! Sharded serving over the transport layer: scatter-gather top-k.
//!
//! The single-process [`QueryEngine`] holds the whole [`EmbeddingIndex`] in
//! one address space. This module splits the index across the endpoints of a
//! [`ControlChannel`] — each endpoint builds a [`QueryEngine`] over only its
//! contiguous node range (the same [`machine_split`] assignment the walk and
//! train phases shard by) — and answers batches with a scatter-gather
//! protocol driven by the coordinator's [`ShardedQueryEngine`]:
//!
//! ```text
//! coordinator                         every endpoint e (coordinator included)
//! ---------------------------------   --------------------------------------
//! scatter(QUERY ∥ batch)        ──►   decode the full batch
//!                                     shard_scan: local top-k over the
//!                                       shard, ids mapped local → global
//! gather(per-query k-heaps)     ◄──   reply OK(results, stats) — or
//!                                       ERR(panic payload) on a fault
//! merge: k-way merge of the
//!   per-shard heaps, best first
//! ```
//!
//! ## The bit-identity argument
//!
//! The merged answers are **bit-identical** to a single-process
//! `QueryEngine::top_k` over the whole index, for both backends:
//!
//! * Index rows are normalized independently per row, so a shard built from
//!   its slice of the embedding matrix holds exactly the rows (same bits) the
//!   global index holds at those ids.
//! * Every global top-k member is, by restriction, in the local top-k of the
//!   shard that owns it — a bounded per-shard heap of the same `k` loses
//!   nothing.
//! * LSH hyperplanes are a pure function of `(seed, dim)`, a node's bucket
//!   signatures are a pure function of its own row, and the multi-probe
//!   order depends only on the query — so the union of the shard-local
//!   candidate sets *is* the global candidate set, and the exact re-rank
//!   scores each candidate identically.
//! * Per-shard heaps and the k-way [`merge_topk`] order neighbors with the
//!   one comparator of [`topk`](crate::topk): descending score by
//!   `f32::total_cmp`, ties by **ascending node id**. Global ids are unique
//!   across shards, so the order is strictly total and the merge of sorted
//!   per-shard lists reproduces the global sort exactly.
//!
//! `prop_shard.rs` soaks this equivalence over seeds × shard counts × k ×
//! backends × tied embeddings; the directed tests below pin the edge cases
//! randomized inputs can miss.
//!
//! ## Faults
//!
//! A shard that panics mid-batch (the [`FaultInjector`] seam, or a real bug)
//! replies `ERR(panic payload)` instead of a heap and **stays in the
//! protocol loop** — the collective never hangs. The coordinator re-raises
//! the payload as its own panic, which the request
//! [`Scheduler`](crate::schedule::Scheduler) already converts into
//! fail-stop: every pending request resolves and
//! [`Scheduler::failure`](crate::schedule::Scheduler::failure) surfaces the
//! shard's message.

use crate::engine::{BatchResults, QueryBackend, QueryBatch, QueryEngine, QueryStats, ServeConfig};
use crate::index::EmbeddingIndex;
use crate::lsh::LshConfig;
use crate::topk::{Neighbor, TopK};
use distger_cluster::wire::{put_bytes, put_u32, put_u64, put_u8};
use distger_cluster::{
    gather_trace_events, machine_split, panic_message, ControlChannel, FaultInjector, WireReader,
};
use distger_embed::Embeddings;
use distger_graph::NodeId;
use std::collections::BinaryHeap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Opcodes of the serve-phase scatter payloads.
mod op {
    /// Coordinator → endpoint: build your shard from the attached rows.
    pub const LOAD: u8 = 1;
    /// Coordinator → endpoint: answer the attached query batch.
    pub const QUERY: u8 = 2;
    /// Coordinator → endpoint: leave the serve loop (after shipping traces).
    pub const SHUTDOWN: u8 = 3;
}

/// Reply tags of the gathered heap payloads.
const REPLY_OK: u8 = 1;
const REPLY_ERR: u8 = 0;

fn invalid_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// One endpoint's slice of the index: a [`QueryEngine`] over a contiguous
/// node range, with results mapped back to **global** node ids.
pub struct EngineShard {
    engine: QueryEngine,
    base: NodeId,
}

impl EngineShard {
    /// Wraps an engine whose index holds the global nodes
    /// `base .. base + engine.index().num_nodes()`.
    pub fn new(engine: QueryEngine, base: NodeId) -> Self {
        Self { engine, base }
    }

    /// Builds the shard owning rows `range` of `embeddings` — the rows are
    /// copied bit-for-bit, and each row normalizes independently, so the
    /// shard's index is bit-identical to the same rows of a global index.
    pub fn from_rows(
        embeddings: &Embeddings,
        range: std::ops::Range<usize>,
        config: ServeConfig,
    ) -> Self {
        let dim = embeddings.dim();
        let mut data = Vec::with_capacity(range.len() * dim);
        for node in range.clone() {
            data.extend_from_slice(embeddings.vector(node as NodeId));
        }
        let local = Embeddings::from_node_major(data, dim);
        Self::new(
            QueryEngine::new(EmbeddingIndex::build(&local), config),
            range.start as NodeId,
        )
    }

    /// First global node id owned by this shard.
    pub fn base(&self) -> NodeId {
        self.base
    }

    /// Nodes in this shard (may be zero when there are more endpoints than
    /// nodes).
    pub fn num_nodes(&self) -> usize {
        self.engine.index().num_nodes()
    }

    /// The wrapped per-shard engine.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Local top-k with node ids mapped to the global id space. Adding the
    /// shard base is monotone, so the best-first order (ties by ascending
    /// node id) is preserved as is.
    pub fn top_k(&self, batch: &QueryBatch) -> BatchResults {
        let mut out = self.engine.top_k(batch);
        if self.base != 0 {
            for top in &mut out.results {
                *top = TopK::from_sorted(
                    top.neighbors()
                        .iter()
                        .map(|n| Neighbor {
                            node: n.node + self.base,
                            score: n.score,
                        })
                        .collect(),
                );
            }
        }
        out
    }
}

/// K-way merge of per-shard top-k lists into the global top-k.
///
/// Every element of `parts` must be best-first sorted (as [`TopK`] always
/// is); the merge pops the globally best head `k` times, so it is
/// `O(s + k·log s)` for `s` shards instead of the `O(s·k·log(s·k))` of
/// concatenate-and-resort. Ties (equal scores under `f32::total_cmp`) break
/// by ascending node id — the same comparator every per-shard heap used, so
/// merging commutes with sorting.
pub fn merge_topk(parts: &[&TopK], k: usize) -> TopK {
    assert!(k > 0, "top-k needs k >= 1");
    // Max-heap of (head neighbor, shard, position); `Neighbor`'s `Ord` is
    // the quality order and global node ids are unique across shards, so the
    // shard/position components never decide between live heads.
    let mut heads: BinaryHeap<(Neighbor, usize, usize)> = parts
        .iter()
        .enumerate()
        .filter_map(|(shard, top)| top.neighbors().first().map(|&n| (n, shard, 0)))
        .collect();
    let mut merged = Vec::with_capacity(k.min(parts.iter().map(|t| t.len()).sum()));
    while merged.len() < k {
        let Some((best, shard, pos)) = heads.pop() else {
            break;
        };
        merged.push(best);
        if let Some(&next) = parts[shard].neighbors().get(pos + 1) {
            heads.push((next, shard, pos + 1));
        }
    }
    TopK::from_sorted(merged)
}

/// Cumulative accounting of one shard across every batch the coordinator
/// scattered, as decoded from its gathered replies.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Nodes owned by the shard.
    pub nodes: u64,
    /// Batches the shard answered.
    pub batches: u64,
    /// Candidate-generation CPU seconds (summed across the shard's workers).
    pub candidate_secs: f64,
    /// Exact re-rank CPU seconds (LSH backend only).
    pub rerank_secs: f64,
    /// Shard-local batch wall seconds, summed over batches.
    pub scan_secs: f64,
    /// Candidates the shard scored.
    pub candidates_scored: u64,
    /// Bytes of the shard's gathered heap replies — the per-shard share of
    /// the serve phase's wire traffic.
    pub reply_bytes: u64,
}

fn encode_config(out: &mut Vec<u8>, config: &ServeConfig) {
    put_u8(
        out,
        match config.backend {
            QueryBackend::Exact => 0,
            QueryBackend::Lsh => 1,
        },
    );
    put_u32(out, config.k as u32);
    put_u32(out, config.threads as u32);
    put_u32(out, config.lsh.bits);
    put_u32(out, config.lsh.tables as u32);
    put_u32(out, config.lsh.probes as u32);
    put_u64(out, config.lsh.seed);
}

fn decode_config(r: &mut WireReader) -> io::Result<ServeConfig> {
    let backend = match r.u8()? {
        0 => QueryBackend::Exact,
        1 => QueryBackend::Lsh,
        other => return Err(invalid_data(format!("bad backend byte {other}"))),
    };
    let k = r.u32()? as usize;
    let threads = r.u32()? as usize;
    let lsh = LshConfig {
        bits: r.u32()?,
        tables: r.u32()? as usize,
        probes: r.u32()? as usize,
        seed: r.u64()?,
    };
    if k == 0 || threads == 0 {
        return Err(invalid_data("zero k or threads in shard config".into()));
    }
    Ok(ServeConfig {
        backend,
        k,
        threads,
        lsh,
    })
}

fn encode_load(
    embeddings: &Embeddings,
    range: std::ops::Range<usize>,
    config: &ServeConfig,
) -> Vec<u8> {
    let dim = embeddings.dim();
    let mut out = Vec::with_capacity(32 + range.len() * dim * 4);
    put_u8(&mut out, op::LOAD);
    encode_config(&mut out, config);
    put_u64(&mut out, range.start as u64);
    put_u64(&mut out, range.len() as u64);
    put_u32(&mut out, dim as u32);
    for node in range {
        for &v in embeddings.vector(node as NodeId) {
            put_u32(&mut out, v.to_bits());
        }
    }
    out
}

fn decode_load(mut r: WireReader) -> io::Result<EngineShard> {
    let config = decode_config(&mut r)?;
    let base = r.u64()?;
    let rows = r.u64()? as usize;
    let dim = r.u32()? as usize;
    if dim == 0 {
        return Err(invalid_data("zero-dimensional shard rows".into()));
    }
    let base = NodeId::try_from(base).map_err(|_| invalid_data(format!("shard base {base}")))?;
    let mut data = Vec::with_capacity(rows * dim);
    for _ in 0..rows * dim {
        data.push(f32::from_bits(r.u32()?));
    }
    r.finish()?;
    let local = Embeddings::from_node_major(data, dim);
    Ok(EngineShard::new(
        QueryEngine::new(EmbeddingIndex::build(&local), config),
        base,
    ))
}

fn encode_query(batch: &QueryBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + batch.len() * batch.dim() * 4);
    put_u8(&mut out, op::QUERY);
    put_u32(&mut out, batch.dim() as u32);
    put_u64(&mut out, batch.len() as u64);
    for q in 0..batch.len() {
        for &v in batch.query(q) {
            put_u32(&mut out, v.to_bits());
        }
    }
    out
}

fn decode_query(mut r: WireReader) -> io::Result<QueryBatch> {
    let dim = r.u32()? as usize;
    let queries = r.u64()? as usize;
    if dim == 0 {
        return Err(invalid_data("zero-dimensional query batch".into()));
    }
    let mut batch = QueryBatch::new(dim);
    let mut row = vec![0.0f32; dim];
    for _ in 0..queries {
        for slot in row.iter_mut() {
            *slot = f32::from_bits(r.u32()?);
        }
        batch.push(&row);
    }
    r.finish()?;
    Ok(batch)
}

fn encode_reply(scan: &Result<BatchResults, String>) -> Vec<u8> {
    let mut out = Vec::new();
    match scan {
        Err(msg) => {
            put_u8(&mut out, REPLY_ERR);
            put_bytes(&mut out, msg.as_bytes());
        }
        Ok(results) => {
            put_u8(&mut out, REPLY_OK);
            put_u64(&mut out, results.results.len() as u64);
            for top in &results.results {
                put_u32(&mut out, top.len() as u32);
                for n in top.neighbors() {
                    put_u32(&mut out, n.node);
                    put_u32(&mut out, n.score.to_bits());
                }
            }
            let s = results.stats;
            distger_cluster::wire::put_f64(&mut out, s.candidate_secs);
            distger_cluster::wire::put_f64(&mut out, s.rerank_secs);
            distger_cluster::wire::put_f64(&mut out, s.wall_secs);
            put_u64(&mut out, s.candidates_scored);
        }
    }
    out
}

fn decode_reply(payload: &[u8]) -> io::Result<Result<(Vec<TopK>, QueryStats), String>> {
    let mut r = WireReader::new(payload);
    match r.u8()? {
        REPLY_ERR => {
            let msg = String::from_utf8_lossy(r.bytes()?).into_owned();
            r.finish()?;
            Ok(Err(msg))
        }
        REPLY_OK => {
            let queries = r.u64()? as usize;
            let mut results = Vec::with_capacity(queries);
            for _ in 0..queries {
                let len = r.u32()? as usize;
                let mut neighbors = Vec::with_capacity(len);
                for _ in 0..len {
                    let node = r.u32()?;
                    let score = f32::from_bits(r.u32()?);
                    neighbors.push(Neighbor { node, score });
                }
                results.push(TopK::from_sorted(neighbors));
            }
            let stats = QueryStats {
                candidate_secs: r.f64()?,
                rerank_secs: r.f64()?,
                wall_secs: r.f64()?,
                candidates_scored: r.u64()?,
            };
            r.finish()?;
            Ok(Ok((results, stats)))
        }
        other => Err(invalid_data(format!("bad shard reply tag {other}"))),
    }
}

/// Coordinator side of the LOAD collective: ships each endpoint its
/// [`machine_split`] node range of `embeddings` (f32 bit patterns, so shard
/// indexes are bit-identical to the global index's rows) and returns the
/// coordinator's own shard. Every worker must be in [`receive_shard`].
pub fn distribute_shards<C: ControlChannel>(
    channel: &mut C,
    embeddings: &Embeddings,
    config: &ServeConfig,
) -> io::Result<EngineShard> {
    assert!(
        channel.is_coordinator(),
        "workers receive shards, only the coordinator distributes them"
    );
    let endpoints = channel.endpoints();
    let num_nodes = embeddings.num_nodes();
    let payloads: Vec<Vec<u8>> = (0..endpoints)
        .map(|e| encode_load(embeddings, machine_split(num_nodes, endpoints, e), config))
        .collect();
    let own = channel.scatter(&payloads)?;
    let mut r = WireReader::new(&own);
    match r.u8()? {
        op::LOAD => decode_load(r),
        other => Err(invalid_data(format!("expected LOAD, got opcode {other}"))),
    }
}

/// Worker side of the LOAD collective: receives this endpoint's rows and
/// builds the shard engine. Pairs with [`distribute_shards`].
pub fn receive_shard<C: ControlChannel>(channel: &mut C) -> io::Result<EngineShard> {
    assert!(
        !channel.is_coordinator(),
        "the coordinator distributes shards, it does not receive one"
    );
    let payload = channel.scatter(&[])?;
    let mut r = WireReader::new(&payload);
    match r.u8()? {
        op::LOAD => decode_load(r),
        other => Err(invalid_data(format!("expected LOAD, got opcode {other}"))),
    }
}

/// Worker serve loop: answers scattered query batches over `shard` until the
/// coordinator scatters SHUTDOWN (at which point buffered trace events ship
/// via [`gather_trace_events`] and the loop returns).
///
/// A panic inside the local scan — `faults` is the deterministic
/// [`FaultInjector`] seam, tripped as `(endpoint, batch_index, 0)` — is
/// caught and replied as an ERR payload; the loop then **keeps serving**, so
/// the collective protocol stays aligned and a faulted batch can never hang
/// the job.
pub fn serve_shard<C: ControlChannel>(
    channel: &mut C,
    shard: &EngineShard,
    faults: Option<&FaultInjector>,
) -> io::Result<()> {
    assert!(
        !channel.is_coordinator(),
        "the coordinator serves through ShardedQueryEngine"
    );
    let endpoint = channel.endpoint();
    let mut batch_index: u64 = 0;
    loop {
        let payload = channel.scatter(&[])?;
        let mut r = WireReader::new(&payload);
        match r.u8()? {
            op::QUERY => {
                let batch = decode_query(r)?;
                let scan = {
                    let _span =
                        distger_obs::span!("shard_scan", machine = endpoint, round = batch_index);
                    catch_unwind(AssertUnwindSafe(|| {
                        if let Some(injector) = faults {
                            injector.trip(endpoint, batch_index, 0);
                        }
                        shard.top_k(&batch)
                    }))
                };
                let reply = match scan {
                    Ok(results) => encode_reply(&Ok(results)),
                    Err(payload) => encode_reply(&Err(panic_message(payload.as_ref()))),
                };
                channel.gather(&reply)?;
                batch_index += 1;
            }
            op::SHUTDOWN => {
                gather_trace_events(channel)?;
                return Ok(());
            }
            other => return Err(invalid_data(format!("unknown serve opcode {other}"))),
        }
    }
}

struct ShardedInner<C> {
    /// Taken by [`ShardedQueryEngine::shutdown`]; `None` afterwards.
    channel: Option<C>,
    batch_index: u64,
    shards: Vec<ShardStats>,
}

/// The coordinator's distributed query engine: scatter the batch, scan the
/// local shard, gather every shard's bounded heaps, k-way merge.
///
/// Answers are bit-identical to a single-process [`QueryEngine::top_k`] over
/// the whole index (see the module docs for the argument). Transport
/// failures and shard panics surface as panics from [`Self::top_k`] — the
/// fail-stop contract the request [`Scheduler`](crate::schedule::Scheduler)
/// converts into resolved-with-`Shutdown` requests plus a recorded
/// [`failure`](crate::schedule::Scheduler::failure) payload.
pub struct ShardedQueryEngine<C: ControlChannel> {
    shard: EngineShard,
    dim: usize,
    num_nodes: usize,
    k: usize,
    faults: Option<Arc<FaultInjector>>,
    inner: Mutex<ShardedInner<C>>,
}

impl<C: ControlChannel> ShardedQueryEngine<C> {
    /// Runs the LOAD collective over `channel` (must be the coordinator
    /// endpoint; every worker must be in [`receive_shard`]) and wraps the
    /// coordinator's own shard.
    pub fn new(mut channel: C, embeddings: &Embeddings, config: ServeConfig) -> io::Result<Self> {
        let shard = distribute_shards(&mut channel, embeddings, &config)?;
        let endpoints = channel.endpoints();
        let num_nodes = embeddings.num_nodes();
        let shards = (0..endpoints)
            .map(|e| ShardStats {
                nodes: machine_split(num_nodes, endpoints, e).len() as u64,
                ..ShardStats::default()
            })
            .collect();
        Ok(Self {
            shard,
            dim: embeddings.dim(),
            num_nodes,
            k: config.k,
            faults: None,
            inner: Mutex::new(ShardedInner {
                channel: Some(channel),
                batch_index: 0,
                shards,
            }),
        })
    }

    /// Arms the coordinator-local shard with a deterministic fault seam,
    /// tripped as `(0, batch_index, 0)` before each local scan.
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Number of shards (= transport endpoints, coordinator included).
    pub fn shards(&self) -> usize {
        self.lock().shards.len()
    }

    /// Total nodes across all shards.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Results per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The coordinator's own shard.
    pub fn local_shard(&self) -> &EngineShard {
        &self.shard
    }

    /// Per-shard cumulative accounting, indexed by endpoint.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.lock().shards.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardedInner<C>> {
        // The inner state is plain accounting plus the channel; a panic that
        // unwound through `top_k` (shard fault, transport failure) leaves
        // both in a consistent state, so recover rather than re-panic — the
        // engine must still shut the workers down cleanly from `Drop`.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Scatter-gather top-k over every shard.
    ///
    /// # Panics
    /// Panics on a query-dimension mismatch, on transport failure, or when a
    /// shard's scan panicked — carrying that shard's panic payload so the
    /// scheduler's `failure` surfaces the original message.
    pub fn top_k(&self, batch: &QueryBatch) -> BatchResults {
        assert_eq!(
            batch.dim(),
            self.dim,
            "query dimension does not match the index"
        );
        if batch.is_empty() {
            return BatchResults {
                results: Vec::new(),
                stats: QueryStats::default(),
            };
        }
        let mut inner = self.lock();
        let inner = &mut *inner;
        let channel = inner
            .channel
            .as_mut()
            .expect("sharded engine already shut down");
        let batch_index = inner.batch_index;
        inner.batch_index += 1;

        let wall = Instant::now();
        {
            let _span = distger_obs::span!("scatter", round = batch_index);
            let payload = encode_query(batch);
            let payloads = vec![payload; channel.endpoints()];
            channel.scatter(&payloads).expect("scatter query batch");
        }
        // The coordinator is shard 0: scan under the same catch_unwind as
        // the workers so a local fault still completes the gather collective
        // (alignment first, then re-raise).
        let local = {
            let _span = distger_obs::span!("shard_scan", machine = 0, round = batch_index);
            catch_unwind(AssertUnwindSafe(|| {
                if let Some(injector) = &self.faults {
                    injector.trip(0, batch_index, 0);
                }
                self.shard.top_k(batch)
            }))
        };
        let local_reply = match local {
            Ok(results) => encode_reply(&Ok(results)),
            Err(payload) => encode_reply(&Err(panic_message(payload.as_ref()))),
        };
        let gathered = channel.gather(&local_reply).expect("gather shard heaps");

        let mut per_shard: Vec<(Vec<TopK>, QueryStats)> = Vec::with_capacity(gathered.len());
        for (endpoint, bytes) in gathered.iter().enumerate() {
            inner.shards[endpoint].reply_bytes += bytes.len() as u64;
            match decode_reply(bytes).expect("decode shard reply") {
                Ok((results, stats)) => {
                    assert_eq!(
                        results.len(),
                        batch.len(),
                        "shard {endpoint} answered the wrong number of queries"
                    );
                    per_shard.push((results, stats));
                }
                Err(msg) => panic!("shard {endpoint} failed a batch: {msg}"),
            }
        }

        let mut stats = QueryStats::default();
        for (endpoint, (_, s)) in per_shard.iter().enumerate() {
            let slot = &mut inner.shards[endpoint];
            slot.batches += 1;
            slot.candidate_secs += s.candidate_secs;
            slot.rerank_secs += s.rerank_secs;
            slot.scan_secs += s.wall_secs;
            slot.candidates_scored += s.candidates_scored;
            stats.candidate_secs += s.candidate_secs;
            stats.rerank_secs += s.rerank_secs;
            stats.candidates_scored += s.candidates_scored;
        }

        let results = {
            let _span = distger_obs::span!("merge", round = batch_index);
            let mut parts: Vec<&TopK> = Vec::with_capacity(per_shard.len());
            let mut results = Vec::with_capacity(batch.len());
            for q in 0..batch.len() {
                parts.clear();
                parts.extend(per_shard.iter().map(|(tops, _)| &tops[q]));
                results.push(merge_topk(&parts, self.k));
            }
            results
        };
        stats.wall_secs = wall.elapsed().as_secs_f64();
        BatchResults { results, stats }
    }

    fn shutdown_channel(mut channel: C) -> io::Result<C> {
        let mut payload = Vec::new();
        put_u8(&mut payload, op::SHUTDOWN);
        let payloads = vec![payload; channel.endpoints()];
        channel.scatter(&payloads)?;
        gather_trace_events(&mut channel)?;
        Ok(channel)
    }

    /// Releases every worker from its serve loop (they ship their buffered
    /// trace spans on the way out) and returns the transport, so the caller
    /// can read whole-run [`wire_stats`](ControlChannel::wire_stats) or
    /// reuse the channel for a later phase.
    pub fn shutdown(mut self) -> io::Result<C> {
        let channel = self
            .inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .channel
            .take()
            .expect("sharded engine already shut down");
        Self::shutdown_channel(channel)
    }
}

impl<C: ControlChannel + Send + 'static> crate::engine::ServeEngine for ShardedQueryEngine<C> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn serve(&self, batch: &QueryBatch) -> BatchResults {
        self.top_k(batch)
    }
}

impl<C: ControlChannel> Drop for ShardedQueryEngine<C> {
    fn drop(&mut self) {
        // Best effort: without this, dropping the engine (e.g. through a
        // failed Scheduler) would leave workers parked in `serve_shard`
        // forever. Errors are ignored — the workers' own transport errors
        // will unpark them if the coordinator is gone.
        if let Some(channel) = self
            .inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .channel
            .take()
        {
            let _ = Self::shutdown_channel(channel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::gaussian_clusters;
    use crate::schedule::{BatchPolicy, Rejected, Scheduler, SchedulerConfig};
    use distger_cluster::{FaultPlan, InMemoryTransport, SocketTransport};
    use std::net::TcpListener;
    use std::time::Duration;

    fn config(backend: QueryBackend, k: usize) -> ServeConfig {
        ServeConfig {
            backend,
            k,
            threads: 2,
            ..ServeConfig::default()
        }
    }

    fn oracle(embeddings: &Embeddings, config: ServeConfig) -> QueryEngine {
        QueryEngine::new(EmbeddingIndex::build(embeddings), config)
    }

    /// Loopback harness: `shards - 1` worker endpoints on scoped threads,
    /// the coordinator's sharded engine handed to `run` (which must consume
    /// it — dropping or shutting it down releases the workers).
    fn sharded<R>(
        embeddings: &Embeddings,
        config: ServeConfig,
        shards: usize,
        run: impl FnOnce(ShardedQueryEngine<SocketTransport>) -> R,
    ) -> R {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("loopback addr");
        std::thread::scope(|scope| {
            for _ in 1..shards {
                scope.spawn(move || {
                    let mut channel =
                        SocketTransport::worker(addr, Duration::from_secs(10)).expect("connect");
                    let shard = receive_shard(&mut channel).expect("receive shard");
                    serve_shard(&mut channel, &shard, None).expect("serve loop");
                });
            }
            let channel =
                SocketTransport::coordinator(&listener, shards, shards).expect("coordinator");
            let engine = ShardedQueryEngine::new(channel, embeddings, config).expect("load shards");
            run(engine)
        })
    }

    fn assert_bit_identical(got: &[TopK], expected: &[TopK]) {
        assert_eq!(got.len(), expected.len(), "result count");
        for (q, (g, e)) in got.iter().zip(expected).enumerate() {
            let gs: Vec<(NodeId, u32)> = g
                .neighbors()
                .iter()
                .map(|n| (n.node, n.score.to_bits()))
                .collect();
            let es: Vec<(NodeId, u32)> = e
                .neighbors()
                .iter()
                .map(|n| (n.node, n.score.to_bits()))
                .collect();
            assert_eq!(gs, es, "query {q} diverged");
        }
    }

    fn top(entries: &[(u32, f32)]) -> TopK {
        TopK::from_sorted(
            entries
                .iter()
                .map(|&(node, score)| Neighbor { node, score })
                .collect(),
        )
    }

    #[test]
    fn merge_takes_everything_when_k_exceeds_the_population() {
        let a = top(&[(0, 0.9), (2, 0.5)]);
        let b = top(&[(1, 0.7)]);
        let merged = merge_topk(&[&a, &b], 10);
        assert_eq!(merged.nodes().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn merge_skips_empty_shards() {
        let empty = top(&[]);
        let a = top(&[(3, 0.4), (9, 0.1)]);
        let merged = merge_topk(&[&empty, &a, &empty], 2);
        assert_eq!(merged.nodes().collect::<Vec<_>>(), vec![3, 9]);
        assert!(merge_topk(&[&empty, &empty], 4).is_empty());
        assert!(merge_topk(&[], 4).is_empty());
    }

    #[test]
    fn merge_breaks_ties_by_ascending_node_id_across_shards() {
        let a = top(&[(0, 0.5), (4, 0.5)]);
        let b = top(&[(1, 0.5), (3, 0.5)]);
        let c = top(&[(2, 0.5)]);
        let merged = merge_topk(&[&a, &b, &c], 4);
        assert_eq!(merged.nodes().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn merge_handles_a_shard_with_fewer_than_k_rows() {
        // Shard b ran dry after one row (an LSH shard can return fewer than
        // k candidates): the merge keeps pulling from a.
        let a = top(&[(0, 0.9), (2, 0.7), (4, 0.6), (6, 0.5)]);
        let b = top(&[(1, 0.8)]);
        let merged = merge_topk(&[&a, &b], 4);
        assert_eq!(merged.nodes().collect::<Vec<_>>(), vec![0, 1, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn merge_rejects_zero_k() {
        merge_topk(&[], 0);
    }

    #[test]
    fn sharded_matches_single_process_on_both_backends() {
        let embeddings = gaussian_clusters(120, 16, 5, 0.05, 9);
        for backend in [QueryBackend::Exact, QueryBackend::Lsh] {
            let config = config(backend, 7);
            let single = oracle(&embeddings, config);
            let batch = QueryBatch::from_nodes(single.index(), &[0, 7, 55, 119]);
            let expected = single.top_k(&batch);
            let got = sharded(&embeddings, config, 4, |engine| {
                assert_eq!(engine.shards(), 4);
                assert_eq!(engine.num_nodes(), 120);
                let out = engine.top_k(&batch);
                let channel = engine.shutdown().expect("shutdown collective");
                assert!(channel.wire_stats().frames_sent > 0, "wire was measured");
                out
            });
            assert_bit_identical(&got.results, &expected.results);
            // Shard-local candidate sets partition (exact) or union to (LSH)
            // the single-process candidate set.
            assert_eq!(
                got.stats.candidates_scored,
                expected.stats.candidates_scored,
                "{} backend scored a different candidate set",
                backend.name()
            );
        }
    }

    #[test]
    fn k_larger_than_any_shard_population() {
        let embeddings = gaussian_clusters(10, 4, 2, 0.1, 3);
        let config = config(QueryBackend::Exact, 10);
        let single = oracle(&embeddings, config);
        let batch = QueryBatch::from_nodes(single.index(), &[0, 9]);
        let expected = single.top_k(&batch);
        // 4 shards of 2-3 nodes each: every shard returns fewer than k.
        let got = sharded(&embeddings, config, 4, |engine| engine.top_k(&batch));
        assert_bit_identical(&got.results, &expected.results);
        assert_eq!(got.results[0].len(), 10, "all nodes returned");
    }

    #[test]
    fn more_shards_than_nodes_leaves_some_shards_empty() {
        let embeddings = gaussian_clusters(3, 4, 1, 0.1, 8);
        let config = config(QueryBackend::Exact, 3);
        let single = oracle(&embeddings, config);
        let batch = QueryBatch::from_nodes(single.index(), &[0, 1, 2]);
        let expected = single.top_k(&batch);
        let got = sharded(&embeddings, config, 5, |engine| {
            let stats = engine.shard_stats();
            assert_eq!(
                stats.iter().map(|s| s.nodes).collect::<Vec<_>>(),
                vec![1, 1, 1, 0, 0],
                "3 nodes over 5 endpoints"
            );
            engine.top_k(&batch)
        });
        assert_bit_identical(&got.results, &expected.results);
    }

    #[test]
    fn all_ties_batch_breaks_by_ascending_global_id() {
        // Every node has the identical embedding: all scores are exactly
        // equal, so the merged top-k must be the k smallest *global* ids on
        // both backends — the cross-shard tie-break rule in one test.
        let embeddings = Embeddings::from_node_major(vec![1.0f32; 24 * 4], 4);
        for backend in [QueryBackend::Exact, QueryBackend::Lsh] {
            let config = config(backend, 5);
            let mut batch = QueryBatch::new(4);
            batch.push(&[1.0, 1.0, 1.0, 1.0]);
            batch.push(&[-1.0, 2.0, 0.5, 0.0]);
            let got = sharded(&embeddings, config, 3, |engine| engine.top_k(&batch));
            assert_eq!(
                got.results[0].nodes().collect::<Vec<_>>(),
                vec![0, 1, 2, 3, 4],
                "{} backend broke cross-shard ties wrong",
                backend.name()
            );
        }
    }

    #[test]
    fn single_shard_over_the_in_memory_transport_matches_direct() {
        let embeddings = gaussian_clusters(50, 8, 3, 0.05, 2);
        let config = config(QueryBackend::Lsh, 5);
        let single = oracle(&embeddings, config);
        let batch = QueryBatch::from_nodes(single.index(), &[1, 25, 49]);
        let expected = single.top_k(&batch);
        let engine = ShardedQueryEngine::new(InMemoryTransport::new(1), &embeddings, config)
            .expect("in-memory load");
        let got = engine.top_k(&batch);
        assert_bit_identical(&got.results, &expected.results);
        engine.shutdown().expect("in-memory shutdown");
    }

    #[test]
    fn shard_stats_accumulate_per_endpoint() {
        let embeddings = gaussian_clusters(40, 8, 2, 0.05, 4);
        let config = config(QueryBackend::Exact, 3);
        let index = EmbeddingIndex::build(&embeddings);
        let batch = QueryBatch::from_nodes(&index, &[0, 1, 2]);
        sharded(&embeddings, config, 4, |engine| {
            engine.top_k(&batch);
            engine.top_k(&batch);
            let stats = engine.shard_stats();
            assert_eq!(stats.len(), 4);
            assert_eq!(stats.iter().map(|s| s.nodes).sum::<u64>(), 40);
            for (endpoint, s) in stats.iter().enumerate() {
                assert_eq!(s.batches, 2, "endpoint {endpoint}");
                assert!(s.reply_bytes > 0, "endpoint {endpoint} reply bytes");
                // Exact backend: every batch scores the whole shard.
                assert_eq!(s.candidates_scored, 2 * 3 * s.nodes, "endpoint {endpoint}");
            }
        });
    }

    #[test]
    fn empty_batch_returns_without_touching_the_transport() {
        let embeddings = gaussian_clusters(12, 4, 2, 0.1, 6);
        let engine = ShardedQueryEngine::new(
            InMemoryTransport::new(1),
            &embeddings,
            config(QueryBackend::Exact, 2),
        )
        .expect("load");
        let out = engine.top_k(&QueryBatch::new(4));
        assert!(out.results.is_empty());
        assert_eq!(engine.shard_stats()[0].batches, 0);
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let embeddings = gaussian_clusters(8, 4, 2, 0.1, 1);
        let index = EmbeddingIndex::build(&embeddings);
        let batch = QueryBatch::from_nodes(&index, &[0, 5]);

        let query = encode_query(&batch);
        for len in 0..query.len() {
            let mut r = WireReader::new(&query[..len]);
            let failed = match r.u8() {
                Err(_) => true,
                Ok(opcode) => {
                    assert_eq!(opcode, op::QUERY);
                    decode_query(r).is_err()
                }
            };
            assert!(failed, "query truncated to {len} decoded");
        }

        let results = oracle(&embeddings, config(QueryBackend::Exact, 3)).top_k(&batch);
        let reply = encode_reply(&Ok(results));
        for len in 0..reply.len() {
            assert!(
                decode_reply(&reply[..len]).is_err(),
                "reply truncated to {len} decoded"
            );
        }
        assert!(decode_reply(&[7]).is_err(), "bad reply tag accepted");

        let err = encode_reply(&Err("shard exploded".into()));
        let decoded = decode_reply(&err).expect("error replies decode");
        assert_eq!(decoded.unwrap_err(), "shard exploded");
    }

    #[test]
    fn worker_shard_panic_fails_requests_and_surfaces_through_scheduler_failure() {
        // A shard endpoint panicking mid-batch must (a) fail the whole batch
        // with the payload in Scheduler::failure, (b) resolve every
        // outstanding request — never hang a PendingQuery — and (c) leave
        // the protocol aligned so shutdown still releases every worker
        // (the scope join below would deadlock otherwise).
        let embeddings = gaussian_clusters(60, 8, 4, 0.05, 5);
        let config = config(QueryBackend::Exact, 3);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("loopback addr");
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // Endpoint 1 panics on its first batch (the injector trips
                // as (endpoint, batch_index, superstep 0)).
                let mut channel =
                    SocketTransport::worker(addr, Duration::from_secs(10)).expect("connect");
                let shard = receive_shard(&mut channel).expect("receive shard");
                let faults = FaultPlan::new().panic_at(1, 0, 0).build();
                serve_shard(&mut channel, &shard, Some(&faults)).expect("serve loop");
            });
            scope.spawn(move || {
                let mut channel =
                    SocketTransport::worker(addr, Duration::from_secs(10)).expect("connect");
                let shard = receive_shard(&mut channel).expect("receive shard");
                serve_shard(&mut channel, &shard, None).expect("serve loop");
            });
            let channel = SocketTransport::coordinator(&listener, 3, 3).expect("coordinator");
            let engine = ShardedQueryEngine::new(channel, &embeddings, config).expect("load");
            let scheduler = Scheduler::new(
                engine,
                SchedulerConfig::default().with_batch(BatchPolicy {
                    max_batch: 2,
                    max_delay: Duration::from_secs(3600),
                }),
            );
            let client = scheduler.client();
            let q0 = embeddings.vector(0).to_vec();
            let q1 = embeddings.vector(1).to_vec();
            let a = client.submit(&q0).expect("submit");
            let b = client.submit(&q1).expect("submit");
            assert_eq!(a.wait(), Err(Rejected::Shutdown));
            assert_eq!(b.wait(), Err(Rejected::Shutdown));
            let failure = scheduler.failure().expect("panic payload recorded");
            assert!(
                failure.contains("injected fault") && failure.contains("shard 1"),
                "unexpected payload: {failure}"
            );
            assert_eq!(client.submit(&q0).unwrap_err(), Rejected::Shutdown);
            let stats = scheduler.stats();
            assert_eq!(stats.shutdown_errors, 2);
            assert_eq!(stats.completed, 0);
            drop(client);
            // Dropping the scheduler drops the engine, whose Drop runs the
            // shutdown collective — both workers return and the scope joins.
            drop(scheduler);
        });
    }

    #[test]
    fn coordinator_shard_panic_fails_cleanly_and_does_not_kill_the_engine() {
        let embeddings = gaussian_clusters(30, 8, 2, 0.05, 7);
        let config = config(QueryBackend::Exact, 3);
        let single = oracle(&embeddings, config);
        let batch = QueryBatch::from_nodes(single.index(), &[0, 29]);
        let expected = single.top_k(&batch);
        sharded(&embeddings, config, 2, |engine| {
            let faults = Arc::new(FaultPlan::new().panic_at(0, 0, 0).build());
            let engine = engine.with_faults(faults);
            // Batch 0: the coordinator's own shard panics. The gather still
            // completes (workers replied), then top_k re-raises.
            let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| engine.top_k(&batch)));
            let msg = panic_message(panicked.expect_err("batch 0 must fail").as_ref());
            assert!(
                msg.contains("shard 0") && msg.contains("injected fault"),
                "unexpected payload: {msg}"
            );
            // The fault was one-shot and the protocol stayed aligned: the
            // next batch serves bit-identically.
            let got = engine.top_k(&batch);
            assert_bit_identical(&got.results, &expected.results);
        });
    }
}
