//! Top-k result types and the bounded heap that collects them.
//!
//! Every query engine in this crate — the exact scan and the LSH re-rank —
//! funnels its scored candidates through [`BoundedTopK`], so the ordering
//! contract lives in exactly one place: results are sorted by **descending
//! cosine score**, and equal scores are broken by **ascending node id**. The
//! tie-break makes every backend fully deterministic (two runs, or the exact
//! and LSH backends on the same candidate set, can never disagree on equal
//! scores), which is what lets `recall@k` compare backends without slack for
//! tie shuffling.

use distger_graph::NodeId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One scored query result.
#[derive(Clone, Copy, Debug)]
pub struct Neighbor {
    /// The matched node.
    pub node: NodeId,
    /// Cosine similarity between the query and the node embedding.
    pub score: f32,
}

impl Neighbor {
    /// Total order: a *greater* neighbor is a *better* result — higher score,
    /// or equal score (by `f32::total_cmp`) and smaller node id.
    fn cmp_quality(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialEq for Neighbor {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_quality(other) == Ordering::Equal
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_quality(other)
    }
}

/// The top-k results of one query, best first (descending score, ties by
/// ascending node id).
#[derive(Clone, Debug, PartialEq)]
pub struct TopK {
    neighbors: Vec<Neighbor>,
}

impl TopK {
    /// Builds a result list from neighbors already in best-first order
    /// (descending score, ties by ascending node id) — the shard merge and
    /// the reply decoder produce rows in exactly that order, so re-sorting
    /// here would only obscure the invariant they are proven to keep.
    pub(crate) fn from_sorted(neighbors: Vec<Neighbor>) -> Self {
        debug_assert!(
            neighbors.windows(2).all(|w| w[0] >= w[1]),
            "neighbors must arrive best-first"
        );
        Self { neighbors }
    }

    /// The results, best first.
    pub fn neighbors(&self) -> &[Neighbor] {
        &self.neighbors
    }

    /// Number of results (may be below k when the index holds fewer nodes or
    /// an approximate backend found fewer candidates).
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether no result was found.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The matched node ids, best first.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors.iter().map(|n| n.node)
    }
}

/// A bounded min-heap keeping the best `k` neighbors seen so far.
///
/// `push` is `O(log k)` and only allocates up to `k` slots, so a brute-force
/// scan over millions of nodes stays `O(n log k)` with constant memory.
#[derive(Clone, Debug)]
pub struct BoundedTopK {
    k: usize,
    /// Min-heap (via `Reverse`): the root is the current *worst* kept result.
    heap: BinaryHeap<Reverse<Neighbor>>,
}

impl BoundedTopK {
    /// An empty collector for the best `k` results.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k needs k >= 1");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one candidate; kept only while it beats the current worst.
    #[inline]
    pub fn push(&mut self, candidate: Neighbor) {
        if self.heap.len() < self.k {
            self.heap.push(Reverse(candidate));
        } else if let Some(Reverse(worst)) = self.heap.peek() {
            if candidate > *worst {
                self.heap.pop();
                self.heap.push(Reverse(candidate));
            }
        }
    }

    /// Finalizes into a best-first [`TopK`].
    pub fn into_topk(self) -> TopK {
        let mut neighbors: Vec<Neighbor> = self.heap.into_iter().map(|Reverse(n)| n).collect();
        neighbors.sort_unstable_by(|a, b| b.cmp(a));
        TopK { neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(node: NodeId, score: f32) -> Neighbor {
        Neighbor { node, score }
    }

    #[test]
    fn keeps_the_best_k_sorted() {
        let mut heap = BoundedTopK::new(3);
        for (node, score) in [(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.7), (4, 0.2)] {
            heap.push(n(node, score));
        }
        let top = heap.into_topk();
        assert_eq!(top.nodes().collect::<Vec<_>>(), vec![1, 3, 2]);
        assert_eq!(top.len(), 3);
        assert!(!top.is_empty());
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut heap = BoundedTopK::new(10);
        heap.push(n(7, 0.3));
        let top = heap.into_topk();
        assert_eq!(top.len(), 1);
        assert_eq!(top.neighbors()[0].node, 7);
    }

    #[test]
    fn equal_scores_break_ties_by_ascending_node_id() {
        let mut heap = BoundedTopK::new(2);
        for node in [9, 3, 6, 1] {
            heap.push(n(node, 0.5));
        }
        let top = heap.into_topk();
        // All scores equal: the *smallest* ids win, in ascending order.
        assert_eq!(top.nodes().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn ordering_is_total_even_for_nan_scores() {
        // total_cmp puts NaN above +inf; the point is no panic and a stable
        // order, not a meaningful rank for NaN.
        let mut heap = BoundedTopK::new(2);
        heap.push(n(0, f32::NAN));
        heap.push(n(1, 1.0));
        heap.push(n(2, 0.5));
        assert_eq!(heap.into_topk().len(), 2);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        BoundedTopK::new(0);
    }
}
