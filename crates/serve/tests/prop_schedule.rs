//! Property-based tests for the request scheduler.
//!
//! The scheduler's headline contract is **transparency**: batching,
//! caching, shedding and clock injection may change *when* a query is
//! answered, but never *what* the answer is — every completed request must
//! be bit-identical to a direct `QueryEngine::top_k` call on the same
//! query. The suite checks that over randomized (callers × queries ×
//! max_batch × max_delay × k) shapes including the degenerate max_batch=1
//! and single-caller cases, then pins the deadline state machine on a
//! [`VirtualClock`] (flush exactly at the deadline, never before — zero
//! sleep-based assertions), and stresses the two ways a scheduler dies:
//! dropping it and an engine panic through the `FaultInjector` seam. Both
//! must error every in-flight request with [`Rejected::Shutdown`] rather
//! than hang a caller. The LRU cache is checked against a serial-replay
//! oracle and under concurrent repeated queries.

use distger_cluster::FaultPlan;
use distger_serve::{
    gaussian_clusters, BatchPolicy, Clock, EmbeddingIndex, PendingQuery, QueryBackend, QueryEngine,
    Rejected, Scheduler, SchedulerConfig, ServeConfig, TopK, VirtualClock,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn engine(nodes: usize, backend: QueryBackend, k: usize, seed: u64) -> QueryEngine {
    let index = EmbeddingIndex::build(&gaussian_clusters(nodes, 8, 4, 0.1, seed));
    QueryEngine::new(
        index,
        ServeConfig {
            backend,
            k,
            threads: 2,
            ..ServeConfig::default()
        },
    )
}

fn query_of(engine: &QueryEngine, node: u32) -> Vec<f32> {
    engine.index().unit_vector(node).to_vec()
}

/// A caller's deterministic query schedule: node `(caller·31 + i·7) % nodes`.
fn caller_node(nodes: usize, caller: usize, i: usize) -> u32 {
    ((caller * 31 + i * 7) % nodes) as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Transparency: every answer the scheduler returns — across caller
    /// counts, batch sizes (down to max_batch=1), delays and k — is
    /// bit-identical to a direct `top_k` call for that query.
    #[test]
    fn scheduler_answers_are_bit_identical_to_direct_top_k(
        callers in 1usize..5,          // includes the single-caller case
        queries_per_caller in 1usize..12,
        max_batch in 1usize..40,       // includes the no-batching case
        max_delay_us in 0u64..800,     // includes flush-immediately
        k in 1usize..8,
        use_lsh in 0u8..2,
        seed in 0u64..64,
    ) {
        let backend = if use_lsh == 1 { QueryBackend::Lsh } else { QueryBackend::Exact };
        let nodes = 80;
        let engine = engine(nodes, backend, k, seed);
        // Ground truth before the engine moves into the scheduler.
        let expected: Vec<TopK> = (0..nodes as u32)
            .map(|node| engine.top_k_one(&query_of(&engine, node)))
            .collect();
        let scheduler = Scheduler::new(
            engine,
            SchedulerConfig::default().with_batch(BatchPolicy {
                max_batch,
                max_delay: Duration::from_micros(max_delay_us),
            }),
        );
        std::thread::scope(|scope| {
            for caller in 0..callers {
                let client = scheduler.client();
                let engine = scheduler.engine();
                let expected = &expected;
                scope.spawn(move || {
                    for i in 0..queries_per_caller {
                        let node = caller_node(nodes, caller, i);
                        let query = query_of(engine, node);
                        let answer = client
                            .submit(&query)
                            .expect("admission bound not reached")
                            .wait()
                            .expect("scheduler alive");
                        assert_eq!(
                            answer, expected[node as usize],
                            "caller {caller} query {i} (node {node}) diverged"
                        );
                    }
                });
            }
        });
        let stats = scheduler.stats();
        prop_assert_eq!(stats.completed, (callers * queries_per_caller) as u64);
        prop_assert_eq!(stats.shed, 0);
        prop_assert_eq!(stats.batch_sizes.sum(), stats.completed);
        prop_assert!(stats.batch_sizes.max() <= max_batch as u64);
    }

    /// Deadline exactness on a virtual clock: a lone request below
    /// max_batch flushes exactly when the oldest request turns max_delay
    /// old — provably never before (the dispatcher is still parked one
    /// nanosecond short of the deadline), and its recorded latency is
    /// exactly max_delay. No sleeps anywhere.
    #[test]
    fn lone_request_flushes_exactly_at_the_deadline(
        max_delay_us in 1u64..5_000,
        pre_advance_us in 0u64..5_000,
        k in 1usize..6,
        seed in 0u64..64,
    ) {
        let clock = VirtualClock::new();
        let max_delay = Duration::from_micros(max_delay_us);
        // Time already elapsed before the submit: the deadline must be
        // relative to the submit, not the scheduler's start.
        clock.advance(Duration::from_micros(pre_advance_us));
        let scheduler = Scheduler::with_clock(
            engine(40, QueryBackend::Exact, k, seed),
            SchedulerConfig::default().with_batch(BatchPolicy { max_batch: 64, max_delay }),
            clock.clone(),
        );
        let client = scheduler.client();
        let query = query_of(scheduler.engine(), 7);
        let submitted_at = clock.now();
        let pending = client.submit(&query).unwrap();
        let deadline = submitted_at + max_delay;

        prop_assert_eq!(clock.wait_for_park_until(deadline), deadline);
        clock.advance(max_delay - Duration::from_nanos(1));
        // One nanosecond short: the dispatcher is *still parked* on the
        // deadline, so the flush cannot have happened.
        prop_assert_eq!(clock.parked_deadline(), Some(deadline));
        prop_assert!(pending.try_wait().is_none(), "flushed before the deadline");

        clock.advance(Duration::from_nanos(1));
        prop_assert!(pending.wait().is_ok());
        let stats = scheduler.stats();
        prop_assert_eq!(stats.batches, 1);
        prop_assert_eq!(stats.latency.max(), max_delay.as_nanos() as u64);
    }

    /// Dropping the scheduler with requests still queued (frozen virtual
    /// clock, unreachable deadline: nothing can flush) errors every one of
    /// them with `Rejected::Shutdown` — no hang, no lost caller — and
    /// later submits fail fast.
    #[test]
    fn drop_errors_every_queued_request_with_shutdown(
        queued in 1usize..30,
        k in 1usize..6,
        seed in 0u64..64,
    ) {
        let scheduler = Scheduler::with_clock(
            engine(40, QueryBackend::Exact, k, seed),
            SchedulerConfig::default().with_batch(BatchPolicy {
                max_batch: 1024,
                max_delay: Duration::from_secs(3600),
            }),
            VirtualClock::new(),
        );
        let client = scheduler.client();
        let pending: Vec<PendingQuery> = (0..queued)
            .map(|i| {
                let query = query_of(scheduler.engine(), (i % 40) as u32);
                client.submit(&query).unwrap()
            })
            .collect();
        drop(scheduler);
        for p in pending {
            prop_assert_eq!(p.wait(), Err(Rejected::Shutdown));
        }
        prop_assert_eq!(client.submit(&[1.0; 8]).unwrap_err(), Rejected::Shutdown);
        prop_assert_eq!(client.stats().shutdown_errors, queued as u64);
    }

    /// An engine panic injected through the `FaultInjector` seam at a
    /// random batch index kills the dispatcher mid-stream: every submitted
    /// request still resolves (bit-identical answer before the fault,
    /// `Rejected::Shutdown` from the faulted batch on), the canonical
    /// panic payload is recorded, and the counters account for every
    /// request.
    #[test]
    fn injected_engine_panic_resolves_every_request_with_shutdown(
        requests in 1usize..25,
        fault_batch in 0u64..25,
        k in 1usize..6,
        seed in 0u64..64,
    ) {
        let nodes = 40;
        let engine = engine(nodes, QueryBackend::Exact, k, seed);
        let expected: Vec<TopK> = (0..nodes as u32)
            .map(|node| engine.top_k_one(&query_of(&engine, node)))
            .collect();
        let faults = Arc::new(FaultPlan::new().panic_at(0, fault_batch, 0).build());
        let scheduler = Scheduler::new(
            engine,
            SchedulerConfig {
                // max_batch 1: batch index == request index, so the fault
                // lands on a deterministic request.
                batch: BatchPolicy { max_batch: 1, max_delay: Duration::ZERO },
                faults: Some(faults),
                ..SchedulerConfig::default()
            },
        );
        let client = scheduler.client();
        let mut outcomes = Vec::new();
        for i in 0..requests {
            let node = (i % nodes) as u32;
            let query = query_of(scheduler.engine(), node);
            match client.submit(&query) {
                Ok(pending) => outcomes.push((node, pending.wait())),
                Err(rejected) => {
                    // Submit raced the dispatcher's death: fail-fast path.
                    prop_assert_eq!(rejected, Rejected::Shutdown);
                }
            }
        }
        for (node, outcome) in outcomes {
            match outcome {
                Ok(answer) => prop_assert_eq!(answer, expected[node as usize].clone()),
                Err(rejected) => prop_assert_eq!(rejected, Rejected::Shutdown),
            }
        }
        if (fault_batch as usize) < requests {
            let failure = scheduler.failure().expect("fault fired, payload recorded");
            prop_assert!(failure.contains("injected fault"), "payload: {}", failure);
            prop_assert!(scheduler.stats().shutdown_errors >= 1);
        }
        let stats = scheduler.stats();
        prop_assert_eq!(
            stats.cache_misses,
            stats.completed + stats.shutdown_errors,
            "every accepted request resolved exactly once"
        );
    }

    /// LRU cache vs a serial-replay oracle: a single caller replays a
    /// random repeated-query sequence; every answer (cached or not) is
    /// bit-identical to the direct engine call, and the hit counter and
    /// eviction behavior match a reference LRU model replaying the same
    /// sequence.
    #[test]
    fn cache_matches_a_serial_replay_oracle(
        capacity in 1usize..6,
        sequence in proptest::collection::vec(0u32..8, 1..40),
        k in 1usize..6,
        seed in 0u64..64,
    ) {
        let engine = engine(40, QueryBackend::Lsh, k, seed);
        let expected: Vec<TopK> = (0..8u32)
            .map(|node| engine.top_k_one(&query_of(&engine, node)))
            .collect();
        let scheduler = Scheduler::new(
            engine,
            SchedulerConfig::default()
                .with_cache_capacity(capacity)
                // max_batch 1 + zero delay: each miss flushes (and caches)
                // before the next submit, so the serial oracle is exact.
                .with_batch(BatchPolicy { max_batch: 1, max_delay: Duration::ZERO }),
        );
        let client = scheduler.client();
        // Reference LRU model: most-recently-used at the back.
        let mut model: Vec<u32> = Vec::new();
        let mut model_hits = 0u64;
        for &node in &sequence {
            let query = query_of(scheduler.engine(), node);
            let answer = client.submit(&query).unwrap().wait().unwrap();
            prop_assert_eq!(&answer, &expected[node as usize], "node {} diverged", node);
            if let Some(pos) = model.iter().position(|&n| n == node) {
                model.remove(pos);
                model_hits += 1;
            } else if model.len() == capacity {
                model.remove(0);
            }
            model.push(node);
        }
        let stats = scheduler.stats();
        prop_assert_eq!(stats.cache_hits, model_hits, "hit counter diverged from the oracle");
        prop_assert_eq!(stats.cache_hits + stats.cache_misses, sequence.len() as u64);
    }

    /// Cache under concurrency: many callers hammer a small key set with
    /// the cache on; every response — served from cache or not — is
    /// bit-identical to the direct engine call, and the counters still
    /// account for every submission.
    #[test]
    fn concurrent_cached_responses_stay_bit_identical(
        callers in 2usize..5,
        queries_per_caller in 2usize..15,
        capacity in 1usize..10,
        k in 1usize..6,
        seed in 0u64..64,
    ) {
        let nodes = 40;
        let engine = engine(nodes, QueryBackend::Lsh, k, seed);
        let expected: Vec<TopK> = (0..8u32)
            .map(|node| engine.top_k_one(&query_of(&engine, node)))
            .collect();
        let scheduler = Scheduler::new(
            engine,
            SchedulerConfig::default()
                .with_cache_capacity(capacity)
                .with_batch(BatchPolicy {
                    max_batch: 4,
                    max_delay: Duration::from_micros(100),
                }),
        );
        std::thread::scope(|scope| {
            for caller in 0..callers {
                let client = scheduler.client();
                let engine = scheduler.engine();
                let expected = &expected;
                scope.spawn(move || {
                    for i in 0..queries_per_caller {
                        let node = caller_node(8, caller, i);
                        let query = query_of(engine, node);
                        let answer = client.submit(&query).unwrap().wait().unwrap();
                        assert_eq!(
                            answer, expected[node as usize],
                            "caller {caller} query {i} (node {node}) diverged"
                        );
                    }
                });
            }
        });
        let stats = scheduler.stats();
        let total = (callers * queries_per_caller) as u64;
        prop_assert_eq!(stats.submitted, total);
        prop_assert_eq!(stats.cache_hits + stats.cache_misses, total);
        prop_assert_eq!(stats.completed, stats.cache_misses);
        prop_assert_eq!(stats.latency.total(), total);
    }
}

/// Overload shedding beyond `max_inflight`: not a proptest because the
/// scenario needs a frozen clock and exact counts. With the dispatcher
/// unable to flush, submits beyond the bound must shed with
/// `Rejected::Overloaded`, and the shed counter must match.
#[test]
fn overload_sheds_exactly_beyond_max_inflight() {
    let max_inflight = 7;
    let scheduler = Scheduler::with_clock(
        engine(40, QueryBackend::Exact, 3, 5),
        SchedulerConfig::default()
            .with_max_inflight(max_inflight)
            .with_batch(BatchPolicy {
                max_batch: 1024,
                max_delay: Duration::from_secs(3600),
            }),
        VirtualClock::new(),
    );
    let client = scheduler.client();
    let mut accepted = Vec::new();
    for i in 0..max_inflight + 5 {
        let query = query_of(scheduler.engine(), (i % 40) as u32);
        match client.submit(&query) {
            Ok(pending) => accepted.push(pending),
            Err(rejected) => assert_eq!(rejected, Rejected::Overloaded),
        }
    }
    assert_eq!(accepted.len(), max_inflight);
    let stats = scheduler.stats();
    assert_eq!(stats.shed, 5);
    assert_eq!(stats.submitted, (max_inflight + 5) as u64);
}
