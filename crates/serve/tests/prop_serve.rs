//! Property-based tests for the serving layer.
//!
//! Two contracts carry the whole crate: **determinism** — the same index and
//! config must answer the same batch identically across runs, fresh engine
//! builds and thread counts (the tie-break by ascending node id is what
//! makes that possible at all), and **normalization** — every
//! [`EmbeddingIndex`] row is a unit vector (or stays exactly zero) whose
//! original L2 norm is preserved. Both are checked over randomized
//! embeddings, not just the fixtures the unit tests use.

use distger_embed::Embeddings;
use distger_serve::{
    gaussian_clusters, EmbeddingIndex, QueryBackend, QueryBatch, QueryEngine, ServeConfig,
};
use proptest::prelude::*;

fn engine(index: &EmbeddingIndex, backend: QueryBackend, k: usize, threads: usize) -> QueryEngine {
    QueryEngine::new(
        index.clone(),
        ServeConfig {
            backend,
            k,
            threads,
            ..ServeConfig::default()
        },
    )
}

/// Node-major matrix of `distinct` deterministic base vectors, each repeated
/// `copies` times — every similarity hit ties with `copies − 1` exact
/// duplicates, so stable results *require* the node-id tie-break.
fn tied_embeddings(distinct: usize, copies: usize, dim: usize, seed: u64) -> Embeddings {
    let mut data = Vec::with_capacity(distinct * copies * dim);
    for d in 0..distinct {
        let base: Vec<f32> = (0..dim)
            .map(|j| (seed as f32 * 0.013 + (d * dim + j) as f32 * 0.73).sin() + 0.1)
            .collect();
        for _ in 0..copies {
            data.extend_from_slice(&base);
        }
    }
    Embeddings::from_node_major(data, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Exact ≡ re-run Exact: the same engine run twice, a freshly built
    /// engine, and a different thread count all return byte-identical
    /// results on random Gaussian-cluster embeddings.
    #[test]
    fn exact_backend_is_deterministic_across_runs_builds_and_threads(
        nodes in 40usize..160,
        dim in 4usize..24,
        clusters in 2usize..6,
        k in 1usize..12,
        threads in 2usize..5,
        seed in 0u64..64,
    ) {
        let index = EmbeddingIndex::build(&gaussian_clusters(nodes, dim, clusters, 0.2, seed));
        let query_nodes: Vec<u32> = (0..nodes as u32).step_by(3).collect();
        let batch = QueryBatch::from_nodes(&index, &query_nodes);
        let first_engine = engine(&index, QueryBackend::Exact, k, threads);
        let rerun = first_engine.top_k(&batch);
        let first = first_engine.top_k(&batch);
        let fresh = engine(&index, QueryBackend::Exact, k, threads).top_k(&batch);
        let single = engine(&index, QueryBackend::Exact, k, 1).top_k(&batch);
        prop_assert_eq!(&first.results, &rerun.results);
        prop_assert_eq!(&first.results, &fresh.results);
        prop_assert_eq!(&first.results, &single.results);
        for top in &first.results {
            prop_assert_eq!(top.len(), k.min(nodes), "exact always fills k");
        }
    }

    /// LSH determinism and tie-break stability: on an index full of exact
    /// duplicates the signature tables, probing order and the final ranking
    /// must all be reproducible — across re-runs, fresh engine builds (the
    /// hyperplanes are seeded) and thread counts — and every result list
    /// must obey the descending-score / ascending-node-id contract.
    #[test]
    fn lsh_backend_is_deterministic_and_breaks_ties_by_node_id(
        distinct in 2usize..6,
        copies in 4usize..16,
        dim in 4usize..16,
        k in 1usize..10,
        threads in 2usize..5,
        seed in 0u64..64,
    ) {
        let index = EmbeddingIndex::build(&tied_embeddings(distinct, copies, dim, seed));
        let query_nodes: Vec<u32> = (0..(distinct * copies) as u32).step_by(copies).collect();
        let batch = QueryBatch::from_nodes(&index, &query_nodes);
        let first_engine = engine(&index, QueryBackend::Lsh, k, threads);
        let first = first_engine.top_k(&batch);
        let rerun = first_engine.top_k(&batch);
        let fresh = engine(&index, QueryBackend::Lsh, k, threads).top_k(&batch);
        let single = engine(&index, QueryBackend::Lsh, k, 1).top_k(&batch);
        prop_assert_eq!(&first.results, &rerun.results);
        prop_assert_eq!(&first.results, &fresh.results);
        prop_assert_eq!(&first.results, &single.results);
        for top in &first.results {
            prop_assert!(!top.is_empty(), "a self-query always finds its own bucket");
            for pair in top.neighbors().windows(2) {
                let ordered = pair[1].score < pair[0].score
                    || (pair[1].score == pair[0].score && pair[0].node < pair[1].node);
                prop_assert!(
                    ordered,
                    "ordering contract violated: ({}, {}) then ({}, {})",
                    pair[0].node, pair[0].score, pair[1].node, pair[1].score
                );
            }
        }
    }

    /// `EmbeddingIndex` normalization invariants on arbitrary embeddings
    /// (including all-zero rows): unit rows, preserved norms, exact
    /// reconstruction `unit × norm ≈ row`, and self-cosine 1.
    #[test]
    fn index_normalization_invariants_hold_on_random_embeddings(
        nodes in 1usize..80,
        dim in 1usize..24,
        seed in 0u64..256,
        zero_every in 2usize..8,
    ) {
        let mut state = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1234_5678);
        let mut next = move || -> f32 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let mut data = vec![0.0f32; nodes * dim];
        for (i, value) in data.iter_mut().enumerate() {
            if (i / dim) % zero_every != 0 {
                *value = next();
            }
        }
        let index = EmbeddingIndex::build(&Embeddings::from_node_major(data.clone(), dim));
        prop_assert_eq!(index.num_nodes(), nodes);
        prop_assert_eq!(index.dim(), dim);
        for node in 0..nodes {
            let row = &data[node * dim..(node + 1) * dim];
            let norm = row.iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>().sqrt();
            let stored_norm = index.norm(node as u32) as f64;
            let unit = index.unit_vector(node as u32);
            prop_assert!(
                (stored_norm - norm).abs() <= 1e-4 * norm.max(1.0),
                "norm of row {node} drifted: stored {stored_norm}, expected {norm}"
            );
            if norm == 0.0 {
                prop_assert!(unit.iter().all(|&x| x == 0.0), "zero rows must stay zero");
            } else {
                let unit_norm = unit
                    .iter()
                    .map(|x| (*x as f64) * (*x as f64))
                    .sum::<f64>()
                    .sqrt();
                prop_assert!(
                    (unit_norm - 1.0).abs() < 1e-4,
                    "row {node} is not unit length: {unit_norm}"
                );
                for (u, x) in unit.iter().zip(row) {
                    prop_assert!(
                        (u * index.norm(node as u32) - x).abs() <= 1e-3 * norm as f32,
                        "row {node} does not reconstruct"
                    );
                }
                prop_assert!((index.cosine(unit, node as u32) - 1.0).abs() < 1e-4);
            }
        }
    }
}
