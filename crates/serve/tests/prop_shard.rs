//! Property-based tests for sharded serving: the scatter-gather engine must
//! be *indistinguishable* from a single-process [`QueryEngine`] — bit-identical
//! node ids AND scores — across random embeddings, shard counts, k, both
//! backends, and adversarial tie/duplicate structure.
//!
//! Two layers are exercised independently:
//!
//! * the **merge oracle**: [`merge_topk`] over per-shard bounded heaps must
//!   equal a global bounded top-k over the concatenated candidates — the
//!   correctness lemma that makes scatter-gather sound at all;
//! * the **end-to-end engine**: a loopback-TCP [`ShardedQueryEngine`] over
//!   1–8 shards answers exactly like the in-process engine, and a shard
//!   panic at a random endpoint fails that batch loudly while leaving the
//!   protocol aligned for the next one.

use distger_cluster::{panic_message, FaultPlan, SocketTransport};
use distger_embed::Embeddings;
use distger_serve::{
    gaussian_clusters, merge_topk, receive_shard, serve_shard, BoundedTopK, EmbeddingIndex,
    Neighbor, QueryBackend, QueryBatch, QueryEngine, ServeConfig, ShardedQueryEngine, TopK,
};
use proptest::prelude::*;
use std::net::TcpListener;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Duration;

fn config(backend: QueryBackend, k: usize) -> ServeConfig {
    ServeConfig {
        backend,
        k,
        threads: 2,
        ..ServeConfig::default()
    }
}

fn backend_of(choice: usize) -> QueryBackend {
    if choice == 0 {
        QueryBackend::Exact
    } else {
        QueryBackend::Lsh
    }
}

/// Loopback harness mirroring `launch`: `shards - 1` workers on scoped
/// threads, the coordinator's engine handed to `run` (consuming it shuts the
/// workers down).
fn sharded<R>(
    embeddings: &Embeddings,
    config: ServeConfig,
    shards: usize,
    faulted_endpoint: Option<usize>,
    run: impl FnOnce(ShardedQueryEngine<SocketTransport>) -> R,
) -> R {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("loopback addr");
    std::thread::scope(|scope| {
        for endpoint in 1..shards {
            scope.spawn(move || {
                let mut channel =
                    SocketTransport::worker(addr, Duration::from_secs(30)).expect("connect");
                let shard = receive_shard(&mut channel).expect("receive shard");
                let faults = (faulted_endpoint == Some(endpoint))
                    .then(|| FaultPlan::new().panic_at(endpoint, 0, 0).build());
                serve_shard(&mut channel, &shard, faults.as_ref()).expect("serve loop");
            });
        }
        let channel = SocketTransport::coordinator(&listener, shards, shards).expect("coordinator");
        let mut engine = ShardedQueryEngine::new(channel, embeddings, config).expect("load shards");
        if faulted_endpoint == Some(0) {
            engine = engine.with_faults(Arc::new(FaultPlan::new().panic_at(0, 0, 0).build()));
        }
        run(engine)
    })
}

/// Bit-exact comparison: node ids and the raw score bits must both match.
fn bit_identical(got: &[TopK], expected: &[TopK]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), expected.len(), "result count");
    for (q, (g, e)) in got.iter().zip(expected).enumerate() {
        let gs: Vec<(u32, u32)> = g
            .neighbors()
            .iter()
            .map(|n| (n.node, n.score.to_bits()))
            .collect();
        let es: Vec<(u32, u32)> = e
            .neighbors()
            .iter()
            .map(|n| (n.node, n.score.to_bits()))
            .collect();
        prop_assert_eq!(gs, es, "query {} diverged", q);
    }
    Ok(())
}

/// Deterministic embeddings where every distinct vector appears `copies`
/// times — scores tie in exact duplicates, so sharded and single-process
/// agreement *requires* the ascending-global-id tie-break to survive the
/// local-to-global id mapping and the cross-shard merge.
fn tied_embeddings(distinct: usize, copies: usize, dim: usize, seed: u64) -> Embeddings {
    let mut data = Vec::with_capacity(distinct * copies * dim);
    for d in 0..distinct {
        let base: Vec<f32> = (0..dim)
            .map(|j| (seed as f32 * 0.013 + (d * dim + j) as f32 * 0.73).sin() + 0.1)
            .collect();
        for _ in 0..copies {
            data.extend_from_slice(&base);
        }
    }
    Embeddings::from_node_major(data, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merge oracle: splitting scored candidates across shards, bounding each
    /// shard's list to k, and k-way merging equals one global bounded top-k
    /// over all candidates. Scores come from a coarse grid so ties across
    /// shards are common, and node ids are globally unique — exactly the
    /// situation the sharded engine is in.
    #[test]
    fn merge_of_bounded_shard_heaps_equals_the_global_bounded_topk(
        scores in prop::collection::vec(0u8..12, 1usize..120),
        shards in 1usize..9,
        k in 1usize..16,
        rotate in 0usize..7,
    ) {
        let candidates: Vec<Neighbor> = scores
            .iter()
            .enumerate()
            .map(|(node, &s)| Neighbor {
                node: node as u32,
                score: f32::from(s) * 0.125 - 0.5,
            })
            .collect();
        // Round-robin assignment (offset by `rotate`) so shard populations
        // are uneven and some shards may be empty when shards > candidates.
        let mut per_shard: Vec<BoundedTopK> = (0..shards).map(|_| BoundedTopK::new(k)).collect();
        let mut global = BoundedTopK::new(k);
        for (i, &candidate) in candidates.iter().enumerate() {
            per_shard[(i + rotate) % shards].push(candidate);
            global.push(candidate);
        }
        let parts: Vec<TopK> = per_shard.into_iter().map(BoundedTopK::into_topk).collect();
        let part_refs: Vec<&TopK> = parts.iter().collect();
        let merged = merge_topk(&part_refs, k);
        let expected = global.into_topk();
        let m: Vec<(u32, u32)> = merged
            .neighbors()
            .iter()
            .map(|n| (n.node, n.score.to_bits()))
            .collect();
        let e: Vec<(u32, u32)> = expected
            .neighbors()
            .iter()
            .map(|n| (n.node, n.score.to_bits()))
            .collect();
        prop_assert_eq!(m, e);
    }

    /// End-to-end bit-identity on random Gaussian clusters: any shard count
    /// from 1 (degenerate, coordinator-only) to 8, either backend, any k —
    /// the sharded answers are byte-for-byte the single-process answers, and
    /// the union of shard-local candidate sets is the single-process one.
    #[test]
    fn sharded_engine_matches_single_process_bit_for_bit(
        nodes in 20usize..120,
        dim in 4usize..20,
        clusters in 2usize..5,
        k in 1usize..12,
        shards in 1usize..9,
        choice in 0usize..2,
        seed in 0u64..64,
    ) {
        let embeddings = gaussian_clusters(nodes, dim, clusters, 0.1, seed);
        let config = config(backend_of(choice), k);
        let single = QueryEngine::new(EmbeddingIndex::build(&embeddings), config);
        let query_nodes: Vec<u32> = (0..nodes as u32).step_by(7).collect();
        let batch = QueryBatch::from_nodes(single.index(), &query_nodes);
        let expected = single.top_k(&batch);
        let got = sharded(&embeddings, config, shards, None, |engine| {
            let out = engine.top_k(&batch);
            engine.shutdown().expect("shutdown collective");
            out
        });
        bit_identical(&got.results, &expected.results)?;
        prop_assert_eq!(got.stats.candidates_scored, expected.stats.candidates_scored);
    }

    /// Same equivalence on an index made *entirely* of duplicates: every
    /// score ties, so the result is determined solely by the tie-break rule —
    /// any drift in the global-id mapping or the merge comparator shows up
    /// immediately.
    #[test]
    fn sharded_engine_matches_single_process_on_tied_and_duplicate_rows(
        distinct in 2usize..5,
        copies in 3usize..10,
        dim in 4usize..12,
        k in 1usize..10,
        shards in 1usize..9,
        choice in 0usize..2,
        seed in 0u64..64,
    ) {
        let embeddings = tied_embeddings(distinct, copies, dim, seed);
        let config = config(backend_of(choice), k);
        let single = QueryEngine::new(EmbeddingIndex::build(&embeddings), config);
        let query_nodes: Vec<u32> =
            (0..(distinct * copies) as u32).step_by(copies).collect();
        let batch = QueryBatch::from_nodes(single.index(), &query_nodes);
        let expected = single.top_k(&batch);
        let got = sharded(&embeddings, config, shards, None, |engine| engine.top_k(&batch));
        bit_identical(&got.results, &expected.results)?;
    }

    /// Fault property: a panic at a random shard (including the
    /// coordinator's own shard 0) fails the first batch with the injected
    /// payload surfaced, and — because the fault is one-shot and every
    /// endpoint stays in the collective — the *next* batch over the same
    /// engine is already bit-identical to the single-process answer again.
    #[test]
    fn a_random_shard_panic_fails_one_batch_and_the_engine_recovers(
        nodes in 24usize..80,
        dim in 4usize..12,
        k in 1usize..8,
        shards in 2usize..7,
        faulted in 0usize..7,
        choice in 0usize..2,
        seed in 0u64..64,
    ) {
        let faulted = faulted % shards;
        let embeddings = gaussian_clusters(nodes, dim, 3, 0.1, seed);
        let config = config(backend_of(choice), k);
        let single = QueryEngine::new(EmbeddingIndex::build(&embeddings), config);
        let batch = QueryBatch::from_nodes(single.index(), &[0, nodes as u32 / 2]);
        let expected = single.top_k(&batch);
        let outcome = sharded(&embeddings, config, shards, Some(faulted), |engine| {
            let panicked =
                std::panic::catch_unwind(AssertUnwindSafe(|| engine.top_k(&batch)));
            let message = panic_message(panicked.expect_err("faulted batch succeeded").as_ref());
            let retry = engine.top_k(&batch);
            (message, retry)
        });
        let (message, retry) = outcome;
        prop_assert!(
            message.contains("injected fault") && message.contains(&format!("shard {faulted}")),
            "unexpected panic payload: {}",
            message
        );
        bit_identical(&retry.results, &expected.results)?;
    }
}
