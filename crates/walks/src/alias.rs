//! O(1) alias-table transition sampling.
//!
//! PR 1 removed the per-step frequency-store overhead of InCoM, which left
//! the neighbour draw itself as the walk engine's dominant per-step cost on
//! weighted graphs: [`crate::models::propose_next`] drew a weighted neighbour
//! by summing and then linearly scanning the adjacency weights — `O(deg)`
//! per step, twice over. On hub-heavy graphs walkers visit high-degree nodes
//! in proportion to their degree, so the *expected* scan length is
//! `E[deg²]/E[deg]`, which power-law degree distributions make brutal.
//!
//! [`TransitionTables`] is the standard fix (KnightKing uses the same
//! construction for its static per-vertex distributions): one **alias table**
//! per node, built once from the CSR in `O(|arcs|)` total time with Vose's
//! method, after which a weighted neighbour draw costs exactly two random
//! numbers and two array reads — `O(1)` regardless of degree.
//!
//! # Memory layout
//!
//! The tables piggyback on the graph's CSR offsets: `prob` and `alias` are
//! two flat arrays with **one slot per CSR arc**, addressed by the same
//! [`CsrGraph::arc_range`] that addresses the adjacency and weight slices.
//! The whole structure is therefore two contiguous allocations totalling
//! 8 bytes per arc — no per-node `Vec`s, no pointer chasing, and building it
//! never touches a hash map.
//!
//! # Role in the walk models
//!
//! * **First order** (DeepWalk): the alias draw *is* the transition.
//! * **Second order** (node2vec, HuGE): both models already sample by
//!   rejection — node2vec against the `max(1/p, 1, 1/q)` envelope, HuGE by
//!   walking-backtracking (§2.1). The alias table serves as their **proposal
//!   distribution**, making every proposal `O(1)` instead of `O(deg)`; the
//!   acceptance logic is untouched, so the sampled distribution is exactly
//!   the one the paper specifies.
//!
//! # Choosing a backend
//!
//! [`SamplingBackend`] mirrors PR 1's `FreqBackend` pattern: the optimized
//! path is the default and the original implementation is retained as a
//! reference ([`SamplingBackend::LinearScan`]) for equivalence tests and
//! benchmarks. On **unweighted** graphs both backends intentionally consume
//! the same single bounded draw per step, so they produce byte-identical
//! corpora (a property test asserts this); on weighted graphs they agree in
//! distribution (a chi-squared test asserts that) but not per-sample, since
//! the alias draw consumes randomness differently.

use crate::rng::SplitMix64;
use distger_graph::{CsrGraph, NodeId};
use std::time::Instant;

/// Which neighbour-sampling implementation backs the walk engine's
/// transition draws (first-order draws and second-order proposals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplingBackend {
    /// Per-node alias tables built once per run: `O(1)` per draw.
    #[default]
    Alias,
    /// The seed's `O(deg)` sum-then-scan over the adjacency weights,
    /// retained as the reference path for equivalence tests and benchmarks.
    LinearScan,
}

/// Per-node alias tables for every node of one graph, stored as two flat
/// arc-aligned arrays (see the [module docs](self) for the layout).
///
/// For **unweighted** graphs no table is materialized at all: a uniform
/// neighbour draw is already `O(1)`, and skipping the table keeps the draw
/// bit-compatible with [`SamplingBackend::LinearScan`].
#[derive(Clone, Debug)]
pub struct TransitionTables {
    /// Probability of keeping the rolled slot, aligned with the CSR arcs.
    /// Empty for unweighted graphs.
    prob: Vec<f32>,
    /// Fallback neighbour (as a *local* adjacency index) when the roll is
    /// rejected, aligned with `prob`.
    alias: Vec<u32>,
    /// Wall-clock seconds spent building the tables.
    build_secs: f64,
}

impl TransitionTables {
    /// Builds the tables for `graph` with Vose's method: `O(deg)` per node,
    /// `O(|arcs|)` overall, two contiguous allocations.
    ///
    /// Nodes whose weights sum to zero (all-zero adjacency weights) get a
    /// uniform table, matching the linear scan's documented fallback.
    /// Negative or non-finite weights cannot occur: `GraphBuilder` and
    /// `CsrGraph::from_parts` reject them at construction time.
    pub fn build(graph: &CsrGraph) -> Self {
        let start_time = Instant::now();
        let (prob, alias) = match graph.arc_weights() {
            None => (Vec::new(), Vec::new()),
            Some(weights) => Self::build_weighted(graph, weights),
        };
        // Report exactly 0 when nothing was materialized, so "build_secs ==
        // 0" reliably means "no table" to downstream accounting.
        let build_secs = if prob.is_empty() {
            0.0
        } else {
            start_time.elapsed().as_secs_f64()
        };
        Self {
            prob,
            alias,
            build_secs,
        }
    }

    fn build_weighted(graph: &CsrGraph, weights: &[f32]) -> (Vec<f32>, Vec<u32>) {
        let mut prob = vec![0.0f32; weights.len()];
        let mut alias = vec![0u32; weights.len()];
        // Scratch buffers reused across nodes, sized to the worst degree.
        let max_deg = graph.max_degree();
        let mut scaled: Vec<f64> = Vec::with_capacity(max_deg);
        let mut small: Vec<u32> = Vec::with_capacity(max_deg);
        let mut large: Vec<u32> = Vec::with_capacity(max_deg);

        for u in 0..graph.num_nodes() as NodeId {
            let range = graph.arc_range(u);
            let deg = range.len();
            if deg == 0 {
                continue;
            }
            let node_prob = &mut prob[range.clone()];
            let node_alias = &mut alias[range.clone()];
            let ws = &weights[range];
            let total: f64 = ws.iter().map(|&w| w as f64).sum();
            if total <= 0.0 {
                // All-zero weights: uniform fallback (same as the scan).
                for (i, (p, a)) in node_prob.iter_mut().zip(node_alias.iter_mut()).enumerate() {
                    *p = 1.0;
                    *a = i as u32;
                }
                continue;
            }

            // Vose's method over weights scaled so the mean bucket is 1.0.
            scaled.clear();
            small.clear();
            large.clear();
            let norm = deg as f64 / total;
            for (i, &w) in ws.iter().enumerate() {
                let s = w as f64 * norm;
                scaled.push(s);
                if s < 1.0 {
                    small.push(i as u32);
                } else {
                    large.push(i as u32);
                }
            }
            while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
                small.pop();
                let (s, l) = (s as usize, l as usize);
                node_prob[s] = scaled[s] as f32;
                node_alias[s] = l as u32;
                // Donate the slack of bucket `s` from bucket `l`.
                scaled[l] -= 1.0 - scaled[s];
                if scaled[l] < 1.0 {
                    large.pop();
                    small.push(l as u32);
                }
            }
            // Leftovers (in either stack, from floating-point slack) fill a
            // whole bucket on their own.
            for &i in large.iter().chain(small.iter()) {
                node_prob[i as usize] = 1.0;
                node_alias[i as usize] = i;
            }
        }
        (prob, alias)
    }

    /// Whether the graph required materialized tables (it was weighted).
    pub fn is_materialized(&self) -> bool {
        !self.prob.is_empty()
    }

    /// Wall-clock seconds the construction took.
    pub fn build_secs(&self) -> f64 {
        self.build_secs
    }

    /// Resident bytes of the two flat arrays (8 bytes per arc when
    /// materialized, 0 for unweighted graphs).
    pub fn memory_bytes(&self) -> usize {
        self.prob.len() * std::mem::size_of::<f32>() + self.alias.len() * std::mem::size_of::<u32>()
    }

    /// Draws a neighbour of `u` in `O(1)`: roll a slot uniformly, then keep
    /// it or take its alias. Returns `None` when `u` has no out-neighbours.
    #[inline]
    pub fn sample(&self, graph: &CsrGraph, u: NodeId, rng: &mut SplitMix64) -> Option<NodeId> {
        let neighbors = graph.neighbors(u);
        if neighbors.is_empty() {
            return None;
        }
        let k = rng.next_bounded(neighbors.len());
        if self.prob.is_empty() {
            // Unweighted: the uniform roll is already the answer (and is
            // bit-identical to the linear-scan backend's draw).
            return Some(neighbors[k]);
        }
        let slot = graph.arc_range(u).start + k;
        if rng.next_f64() < self.prob[slot] as f64 {
            Some(neighbors[k])
        } else {
            Some(neighbors[self.alias[slot] as usize])
        }
    }
}

/// The neighbour sampler handed to [`crate::models::propose_next`]: either a
/// borrowed set of alias tables or the reference linear scan. `Copy`, so the
/// engine can pass it freely into the per-machine BSP closures.
#[derive(Clone, Copy, Debug)]
pub enum NeighborSampler<'a> {
    /// `O(1)` draws through prebuilt [`TransitionTables`].
    Alias(&'a TransitionTables),
    /// The seed's `O(deg)` sum-then-scan reference path.
    LinearScan,
}

impl NeighborSampler<'_> {
    /// Samples a neighbour of `u` uniformly, or edge-weight-proportionally
    /// when the graph is weighted. Returns `None` for nodes without
    /// out-neighbours.
    #[inline]
    pub fn sample(&self, graph: &CsrGraph, u: NodeId, rng: &mut SplitMix64) -> Option<NodeId> {
        match self {
            NeighborSampler::Alias(tables) => tables.sample(graph, u, rng),
            NeighborSampler::LinearScan => linear_scan_sample(graph, u, rng),
        }
    }
}

/// The reference `O(deg)` draw: sum the weights, then scan to the roll.
/// Falls back to a uniform draw when every weight of `u` is zero (negative
/// weights are rejected at graph-construction time, so `total <= 0` can only
/// mean all-zero).
fn linear_scan_sample(graph: &CsrGraph, u: NodeId, rng: &mut SplitMix64) -> Option<NodeId> {
    let neighbors = graph.neighbors(u);
    if neighbors.is_empty() {
        return None;
    }
    match graph.neighbor_weights(u) {
        None => Some(neighbors[rng.next_bounded(neighbors.len())]),
        Some(weights) => {
            let total: f32 = weights.iter().sum();
            if total <= 0.0 {
                return Some(neighbors[rng.next_bounded(neighbors.len())]);
            }
            let mut target = rng.next_f64() * total as f64;
            for (i, &w) in weights.iter().enumerate() {
                target -= w as f64;
                if target <= 0.0 {
                    return Some(neighbors[i]);
                }
            }
            Some(*neighbors.last().unwrap())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distger_graph::{barabasi_albert, GraphBuilder};

    fn rng() -> SplitMix64 {
        SplitMix64::new(99)
    }

    /// Draws `n` samples from `sampler` at `u` and returns per-neighbour
    /// counts indexed like the adjacency list.
    fn histogram(graph: &CsrGraph, sampler: NeighborSampler<'_>, u: NodeId, n: usize) -> Vec<u64> {
        let neighbors = graph.neighbors(u);
        let mut counts = vec![0u64; neighbors.len()];
        let mut r = rng();
        for _ in 0..n {
            let v = sampler.sample(graph, u, &mut r).unwrap();
            let idx = neighbors.binary_search(&v).unwrap();
            counts[idx] += 1;
        }
        counts
    }

    /// Pearson chi-squared statistic of `observed` against the distribution
    /// implied by `weights`.
    fn chi_squared(observed: &[u64], weights: &[f32]) -> f64 {
        let n: u64 = observed.iter().sum();
        let total: f64 = weights.iter().map(|&w| w as f64).sum();
        observed
            .iter()
            .zip(weights)
            .map(|(&obs, &w)| {
                let expected = n as f64 * w as f64 / total;
                (obs as f64 - expected).powi(2) / expected
            })
            .sum()
    }

    #[test]
    fn single_neighbor_node_always_returns_it() {
        let mut b = GraphBuilder::new_undirected();
        b.add_weighted_edge(0, 1, 3.5);
        b.add_weighted_edge(1, 2, 1.0);
        let g = b.build();
        let tables = TransitionTables::build(&g);
        let sampler = NeighborSampler::Alias(&tables);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(sampler.sample(&g, 0, &mut r), Some(1));
            assert_eq!(sampler.sample(&g, 2, &mut r), Some(1));
        }
    }

    #[test]
    fn isolated_node_returns_none() {
        let mut b = GraphBuilder::new_undirected();
        b.add_weighted_edge(0, 1, 2.0);
        b.reserve_nodes(3);
        let g = b.build();
        let tables = TransitionTables::build(&g);
        let mut r = rng();
        assert_eq!(NeighborSampler::Alias(&tables).sample(&g, 2, &mut r), None);
        assert_eq!(NeighborSampler::LinearScan.sample(&g, 2, &mut r), None);
    }

    #[test]
    fn all_equal_weights_give_full_buckets_and_uniform_draws() {
        // A 6-spoke star with every weight equal: each bucket must be whole
        // (prob 1.0 never consults the alias) and draws must look uniform.
        let mut b = GraphBuilder::new_undirected();
        for v in 1..=6u32 {
            b.add_weighted_edge(0, v, 2.5);
        }
        let g = b.build();
        let tables = TransitionTables::build(&g);
        assert!(tables.is_materialized());
        let counts = histogram(&g, NeighborSampler::Alias(&tables), 0, 60_000);
        let weights = g.neighbor_weights(0).unwrap();
        // 5 degrees of freedom; chi² < 20.5 keeps a false-failure rate ~1e-3,
        // and the fixed seed makes the test deterministic anyway.
        assert!(
            chi_squared(&counts, weights) < 20.5,
            "equal-weight draws not uniform: {counts:?}"
        );
    }

    #[test]
    fn one_dominant_weight_is_sampled_dominantly() {
        // One edge carries 95% of the mass.
        let mut b = GraphBuilder::new_undirected();
        b.add_weighted_edge(0, 1, 95.0);
        for v in 2..=6u32 {
            b.add_weighted_edge(0, v, 1.0);
        }
        let g = b.build();
        let tables = TransitionTables::build(&g);
        let n = 50_000;
        let counts = histogram(&g, NeighborSampler::Alias(&tables), 0, n);
        let dominant = counts[0] as f64 / n as f64;
        assert!(
            (dominant - 0.95).abs() < 0.01,
            "dominant edge drawn {dominant}, expected ≈0.95"
        );
        let weights = g.neighbor_weights(0).unwrap();
        assert!(chi_squared(&counts, weights) < 20.5);
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        let mut b = GraphBuilder::new_undirected();
        for v in 1..=4u32 {
            b.add_weighted_edge(0, v, 0.0);
        }
        // Give the spokes a real edge so the graph stays weighted overall.
        b.add_weighted_edge(1, 2, 3.0);
        let g = b.build();
        let tables = TransitionTables::build(&g);
        let counts = histogram(&g, NeighborSampler::Alias(&tables), 0, 40_000);
        let uniform = vec![1.0f32; counts.len()];
        assert!(
            chi_squared(&counts, &uniform) < 16.3, // df = 3
            "zero-weight node should sample uniformly: {counts:?}"
        );
    }

    #[test]
    fn alias_matches_linear_scan_distribution_chi_squared() {
        // The headline equivalence check: on a skewed-weight hub, the alias
        // empirical distribution must match both the exact weights and the
        // linear scan's empirical distribution.
        let g = barabasi_albert(300, 4, 11).with_skewed_weights(1.5, 7);
        let tables = TransitionTables::build(&g);
        let hub = g.nodes_by_degree_desc()[0];
        let deg = g.degree(hub);
        assert!(deg >= 10, "hub should be high-degree, got {deg}");
        let n = 3_000 * deg;
        let alias_counts = histogram(&g, NeighborSampler::Alias(&tables), hub, n);
        let scan_counts = histogram(&g, NeighborSampler::LinearScan, hub, n);
        let weights = g.neighbor_weights(hub).unwrap();
        // Generous df-scaled bound: E[chi²] = df, Var = 2·df; df + 6·sqrt(2·df)
        // is far beyond any plausible statistical fluctuation at fixed seed.
        let bound = |df: f64| df + 6.0 * (2.0 * df).sqrt();
        let df = (deg - 1) as f64;
        let chi_alias = chi_squared(&alias_counts, weights);
        let chi_scan = chi_squared(&scan_counts, weights);
        assert!(chi_alias < bound(df), "alias chi² {chi_alias} vs df {df}");
        assert!(chi_scan < bound(df), "scan chi² {chi_scan} vs df {df}");
    }

    #[test]
    fn unweighted_graphs_materialize_nothing_and_match_scan_bitwise() {
        let g = barabasi_albert(200, 3, 5);
        let tables = TransitionTables::build(&g);
        assert!(!tables.is_materialized());
        assert_eq!(tables.memory_bytes(), 0);
        assert_eq!(tables.build_secs(), 0.0, "no table, no reported build time");
        let alias = NeighborSampler::Alias(&tables);
        let scan = NeighborSampler::LinearScan;
        let mut ra = rng();
        let mut rs = rng();
        for u in 0..200u32 {
            assert_eq!(alias.sample(&g, u, &mut ra), scan.sample(&g, u, &mut rs));
        }
    }

    #[test]
    fn build_accounting_is_sane() {
        let g = barabasi_albert(500, 5, 2).with_random_weights(1.0, 5.0, 3);
        let tables = TransitionTables::build(&g);
        assert!(tables.is_materialized());
        assert_eq!(tables.memory_bytes(), g.num_arcs() * 8);
        assert!(tables.build_secs() >= 0.0);
    }

    #[test]
    fn vose_buckets_are_a_valid_distribution() {
        // Per node: sum over buckets of (prob + donated alias mass) must
        // reconstruct the original weight distribution exactly.
        let g = barabasi_albert(120, 4, 9).with_skewed_weights(2.0, 4);
        let tables = TransitionTables::build(&g);
        for u in 0..g.num_nodes() as NodeId {
            let deg = g.degree(u);
            if deg == 0 {
                continue;
            }
            let range = g.arc_range(u);
            let ws = g.neighbor_weights(u).unwrap();
            let total: f64 = ws.iter().map(|&w| w as f64).sum();
            // Reconstruct each neighbour's sampling mass from the buckets.
            let mut mass = vec![0.0f64; deg];
            for i in 0..deg {
                let slot = range.start + i;
                let p = tables.prob[slot] as f64;
                assert!((0.0..=1.0 + 1e-6).contains(&p), "prob {p} out of range");
                mass[i] += p;
                mass[tables.alias[slot] as usize] += 1.0 - p;
            }
            for (i, (&m, &w)) in mass.iter().zip(ws).enumerate() {
                let expected = w as f64 / total * deg as f64;
                assert!(
                    (m - expected).abs() < 1e-4,
                    "node {u} neighbour {i}: mass {m} vs expected {expected}"
                );
            }
        }
    }
}
